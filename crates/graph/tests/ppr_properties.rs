//! Property-based tests for the PPR solvers on random graphs.

use proptest::prelude::*;
use tcss_graph::{bookmark_coloring, personalized_pagerank, PprConfig, SocialGraph};

fn graph_strategy() -> impl Strategy<Value = SocialGraph> {
    (3usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..24)
            .prop_map(move |edges| SocialGraph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PPR is a probability distribution from any source on any graph.
    #[test]
    fn ppr_is_a_distribution(g in graph_strategy(), src_raw in 0usize..12) {
        let src = src_raw % g.len();
        let p = personalized_pagerank(&g, src, &PprConfig::default());
        prop_assert!(p.iter().all(|&v| v >= -1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    /// Bookmark colouring agrees with power iteration on any graph.
    #[test]
    fn bca_agrees_with_power_iteration(g in graph_strategy(), src_raw in 0usize..12) {
        let src = src_raw % g.len();
        let cfg = PprConfig { tol: 1e-11, ..Default::default() };
        let exact = personalized_pagerank(&g, src, &cfg);
        let approx = bookmark_coloring(&g, src, &cfg);
        for (a, b) in exact.iter().zip(approx.iter()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// Mass at the source is at least α (the walk restarts there).
    #[test]
    fn source_keeps_at_least_alpha(g in graph_strategy(), src_raw in 0usize..12) {
        let src = src_raw % g.len();
        let cfg = PprConfig::default();
        let p = personalized_pagerank(&g, src, &cfg);
        prop_assert!(p[src] >= cfg.alpha - 1e-9, "p[src] = {}", p[src]);
    }

    /// Unreachable nodes receive zero mass.
    #[test]
    fn unreachable_nodes_get_nothing(edges in proptest::collection::vec((0usize..4, 0usize..4), 0..8)) {
        // Nodes 0..4 may connect among themselves; nodes 4..6 are isolated.
        let g = SocialGraph::from_edges(6, edges);
        let p = personalized_pagerank(&g, 0, &PprConfig::default());
        prop_assert_eq!(p[4], 0.0);
        prop_assert_eq!(p[5], 0.0);
    }

    /// Graph invariants: degree sums equal twice the edge count; BFS
    /// distances respect the triangle inequality along edges.
    #[test]
    fn graph_invariants(g in graph_strategy()) {
        let degree_sum: usize = (0..g.len()).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        let d = g.bfs_distances(0);
        for (a, b) in g.edges() {
            if let (Some(da), Some(db)) = (d[a], d[b]) {
                prop_assert!(da.abs_diff(db) <= 1, "edge ({a},{b}): {da} vs {db}");
            }
        }
    }
}
