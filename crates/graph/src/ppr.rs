//! Personalized PageRank and bookmark colouring.
//!
//! The LFBCA baseline (Wang et al., SIGSPATIAL 2013) ranks POIs for a user
//! by running a *bookmark-colouring* random walk over an augmented user
//! graph that mixes friendship edges with check-in-similarity edges, then
//! scoring each POI by the walk probabilities of the users who visited it.
//! Bookmark colouring (Berkhin 2006) is the classic residual-propagation
//! approximation of personalized PageRank; both are provided here and tested
//! against each other.

use crate::social::SocialGraph;

/// Configuration shared by the PPR solvers.
#[derive(Debug, Clone)]
pub struct PprConfig {
    /// Teleport (restart) probability `α` — the walk returns to the source
    /// with this probability each step. Typical: 0.15–0.2.
    pub alpha: f64,
    /// Convergence tolerance (L1 change for power iteration; residual mass
    /// threshold for bookmark colouring).
    pub tol: f64,
    /// Iteration / push budget.
    pub max_iters: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            alpha: 0.15,
            tol: 1e-10,
            max_iters: 10_000,
        }
    }
}

/// Personalized PageRank by dense power iteration.
///
/// Returns the stationary distribution of the `α`-restart random walk from
/// `src`. Dangling nodes (degree 0) teleport all their mass back to `src`,
/// so the result is a proper distribution summing to 1.
pub fn personalized_pagerank(g: &SocialGraph, src: usize, cfg: &PprConfig) -> Vec<f64> {
    let n = g.len();
    let mut p = vec![0.0; n];
    if n == 0 || src >= n {
        return p;
    }
    p[src] = 1.0;
    let mut next = vec![0.0; n];
    for _ in 0..cfg.max_iters {
        next.iter_mut().for_each(|v| *v = 0.0);
        let mut dangling = 0.0;
        for u in 0..n {
            let pu = p[u];
            if pu == 0.0 {
                continue;
            }
            let deg = g.degree(u);
            if deg == 0 {
                dangling += pu;
                continue;
            }
            let share = (1.0 - cfg.alpha) * pu / deg as f64;
            for &v in g.neighbors(u) {
                next[v] += share;
            }
        }
        // Teleport mass: α from every node, plus all dangling mass.
        let teleport: f64 = cfg.alpha * (1.0 - dangling) + dangling;
        next[src] += teleport;
        let delta: f64 = p.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut p, &mut next);
        if delta < cfg.tol {
            break;
        }
    }
    p
}

/// Personalized PageRank by bookmark colouring (residual push).
///
/// Maintains a colour vector `π` and residual `r`; repeatedly "pushes" the
/// largest residuals: node keeps `α · r_u` as colour and spreads
/// `(1−α) · r_u` to neighbours. Converges to the same distribution as
/// [`personalized_pagerank`] as the residual threshold goes to 0.
pub fn bookmark_coloring(g: &SocialGraph, src: usize, cfg: &PprConfig) -> Vec<f64> {
    let n = g.len();
    let mut pi = vec![0.0; n];
    if n == 0 || src >= n {
        return pi;
    }
    let mut r = vec![0.0; n];
    r[src] = 1.0;
    // FIFO queue of nodes whose residual exceeds the threshold. FIFO order
    // sweeps residuals breadth-first, which keeps the total residual decaying
    // geometrically (a LIFO stack can spend its whole budget on tiny
    // freshly-pushed residuals while large ones wait at the bottom).
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::from([src]);
    let mut in_queue = vec![false; n];
    in_queue[src] = true;
    let mut pushes = 0usize;
    while let Some(u) = queue.pop_front() {
        in_queue[u] = false;
        let ru = r[u];
        if ru <= 0.0 {
            continue;
        }
        r[u] = 0.0;
        pi[u] += cfg.alpha * ru;
        let spread = (1.0 - cfg.alpha) * ru;
        let deg = g.degree(u);
        if deg == 0 {
            // Dangling: return the mass to the source.
            r[src] += spread;
            if !in_queue[src] && r[src] > cfg.tol {
                queue.push_back(src);
                in_queue[src] = true;
            }
        } else {
            let share = spread / deg as f64;
            for &v in g.neighbors(u) {
                r[v] += share;
                if !in_queue[v] && r[v] > cfg.tol {
                    queue.push_back(v);
                    in_queue[v] = true;
                }
            }
        }
        pushes += 1;
        if pushes >= cfg.max_iters.saturating_mul(n.max(1)) {
            break;
        }
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> SocialGraph {
        SocialGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn ppr_sums_to_one() {
        let g = path_graph(5);
        let p = personalized_pagerank(&g, 2, &PprConfig::default());
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ppr_mass_concentrates_at_source() {
        let g = path_graph(7);
        let p = personalized_pagerank(&g, 3, &PprConfig::default());
        let max = p.iter().cloned().fold(0.0, f64::max);
        assert_eq!(p[3], max);
        // Decays with distance from the source.
        assert!(p[3] > p[2] && p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn ppr_symmetric_graph_symmetric_result() {
        // Star: source at the centre spreads equally to leaves.
        let g = SocialGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3)]);
        let p = personalized_pagerank(&g, 0, &PprConfig::default());
        assert!((p[1] - p[2]).abs() < 1e-10);
        assert!((p[2] - p[3]).abs() < 1e-10);
    }

    #[test]
    fn ppr_isolated_source_keeps_all_mass() {
        let g = SocialGraph::new(3);
        let p = personalized_pagerank(&g, 1, &PprConfig::default());
        assert!((p[1] - 1.0).abs() < 1e-9);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn bca_matches_power_iteration() {
        let g = SocialGraph::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
        );
        let cfg = PprConfig {
            tol: 1e-12,
            ..Default::default()
        };
        for src in 0..6 {
            let exact = personalized_pagerank(&g, src, &cfg);
            let approx = bookmark_coloring(&g, src, &cfg);
            for u in 0..6 {
                assert!(
                    (exact[u] - approx[u]).abs() < 1e-6,
                    "src {src} node {u}: {} vs {}",
                    exact[u],
                    approx[u]
                );
            }
        }
    }

    #[test]
    fn bca_out_of_range_source_is_zero() {
        let g = path_graph(3);
        let p = bookmark_coloring(&g, 10, &PprConfig::default());
        assert!(p.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn higher_alpha_concentrates_more_mass_at_source() {
        let g = path_graph(5);
        let lo = personalized_pagerank(
            &g,
            0,
            &PprConfig {
                alpha: 0.1,
                ..Default::default()
            },
        );
        let hi = personalized_pagerank(
            &g,
            0,
            &PprConfig {
                alpha: 0.5,
                ..Default::default()
            },
        );
        assert!(hi[0] > lo[0]);
    }
}
