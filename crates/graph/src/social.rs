//! Undirected social (friendship) graph.

use std::collections::VecDeque;

/// An undirected graph over users `0..n`, stored as sorted adjacency lists.
///
/// Self-loops are rejected and duplicate edges are deduplicated — friendship
/// in an LBSN is irreflexive and unweighted.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    adj: Vec<Vec<usize>>,
    n_edges: usize,
}

impl SocialGraph {
    /// An edgeless graph over `n` users.
    pub fn new(n: usize) -> Self {
        SocialGraph {
            adj: vec![Vec::new(); n],
            n_edges: 0,
        }
    }

    /// Build from an edge list; out-of-range endpoints and self-loops are
    /// ignored, duplicates collapse to one edge.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = SocialGraph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of users (nodes).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of (undirected) friendship edges.
    pub fn edge_count(&self) -> usize {
        self.n_edges
    }

    /// Add an undirected edge; returns `true` if the edge was new.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        if a == b || a >= self.adj.len() || b >= self.adj.len() {
            return false;
        }
        match self.adj[a].binary_search(&b) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adj[a].insert(pos_a, b);
                let pos_b = self.adj[b].binary_search(&a).unwrap_err();
                self.adj[b].insert(pos_b, a);
                self.n_edges += 1;
                true
            }
        }
    }

    /// Whether `a` and `b` are friends.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.adj.len() && self.adj[a].binary_search(&b).is_ok()
    }

    /// Sorted friends of user `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree (number of friends) of user `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// All edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// BFS distances from `src`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.adj.len()];
        if src >= self.adj.len() {
            return dist;
        }
        dist[src] = Some(0);
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in &self.adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Connected-component label per node (labels are arbitrary but dense
    /// from 0).
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.adj.len();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            label[start] = next;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if label[v] == usize::MAX {
                        label[v] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        label
    }

    /// Users with at least one friend (the paper keeps only such users).
    pub fn users_with_friends(&self) -> Vec<usize> {
        (0..self.adj.len())
            .filter(|&u| !self.adj[u].is_empty())
            .collect()
    }

    /// Restrict the graph to a subset of users (given by a sorted mapping
    /// `old → new` encoded as `keep[old] = Some(new)`), dropping all other
    /// nodes and incident edges. Used by dataset preprocessing filters.
    pub fn remap(&self, keep: &[Option<usize>], new_n: usize) -> SocialGraph {
        let mut g = SocialGraph::new(new_n);
        for (a, b) in self.edges() {
            if let (Some(na), Some(nb)) = (keep[a], keep[b]) {
                g.add_edge(na, nb);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = SocialGraph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate
        assert!(!g.add_edge(2, 2)); // self-loop
        assert!(!g.add_edge(0, 9)); // out of range
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = SocialGraph::from_edges(4, vec![(2, 1), (0, 3), (1, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn bfs_on_path_graph() {
        let g = SocialGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = SocialGraph::from_edges(4, vec![(0, 1)]);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn components_partition() {
        let g = SocialGraph::from_edges(5, vec![(0, 1), (2, 3)]);
        let c = g.connected_components();
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[4], c[0]);
        assert_ne!(c[4], c[2]);
    }

    #[test]
    fn users_with_friends_filters_isolates() {
        let g = SocialGraph::from_edges(4, vec![(1, 3)]);
        assert_eq!(g.users_with_friends(), vec![1, 3]);
    }

    #[test]
    fn remap_drops_and_renumbers() {
        let g = SocialGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        // Keep users 1, 2, 3 as 0, 1, 2.
        let keep = vec![None, Some(0), Some(1), Some(2)];
        let h = g.remap(&keep, 3);
        assert_eq!(h.len(), 3);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(1, 2));
        assert!(!h.has_edge(0, 2));
        assert_eq!(h.edge_count(), 2);
    }
}
