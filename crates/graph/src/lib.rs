//! # tcss-graph
//!
//! Social-graph substrate for the TCSS reproduction.
//!
//! The LBSN friendship graph `G = (V, E)` drives the paper's social-spatial
//! regularizer (each user's friend-visited POI set `N(vᵢ)` comes from the
//! graph neighbourhood) and the LFBCA baseline (bookmark-colouring /
//! personalized PageRank over a user–user similarity graph).
//!
//! * [`SocialGraph`] — undirected adjacency-list graph with neighbour
//!   queries, BFS and connected components.
//! * [`ppr`] — personalized PageRank by power iteration and the
//!   bookmark-colouring approximation (BCA), the engine of LFBCA.

// Index-based loops are used deliberately throughout this crate: the
// numeric kernels mirror the paper's subscripted equations, and iterator
// chains over multiple parallel buffers obscure rather than clarify them.
#![allow(clippy::needless_range_loop)]

pub mod ppr;
pub mod social;

pub use ppr::{bookmark_coloring, personalized_pagerank, PprConfig};
pub use social::SocialGraph;
