//! Contract tests every baseline must satisfy: fit without panicking on a
//! shared dataset, produce finite scores for all (i, j, k), and beat a
//! constant scorer under the paper's protocol. This is the safety net that
//! keeps Table I comparisons meaningful.

use tcss_baselines::{
    cp::CpConfig, lfbca::LfbcaConfig, mcco::MccoConfig, ncf::NeuralConfig, ptucker::PTuckerConfig,
    CoStCo, CpModel, Lfbca, Mcco, Ncf, Ntm, PTucker, PureSvd, Stan, Stgn, Strnn, TuckerModel,
};
use tcss_data::{
    preprocess, train_test_split, Dataset, Granularity, PreprocessConfig, Split, SynthPreset,
};
use tcss_eval::{evaluate_ranking, EvalConfig};

fn shared() -> (Dataset, Split) {
    let raw = SynthPreset::Gmu5k.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 11);
    (data, split)
}

/// Fast-training configs for contract testing.
fn fast_neural() -> NeuralConfig {
    NeuralConfig {
        epochs: 4,
        dim: 6,
        ..Default::default()
    }
}

fn fast_cp() -> CpConfig {
    CpConfig {
        epochs: 25,
        ..Default::default()
    }
}

fn check_contract(
    name: &str,
    data: &Dataset,
    split: &Split,
    score: impl Fn(usize, usize, usize) -> f64,
) {
    // Finite everywhere (sampled).
    for i in (0..data.n_users).step_by(13) {
        for j in (0..data.n_pois()).step_by(17) {
            for k in [0usize, 6, 11] {
                let s = score(i, j, k);
                assert!(s.is_finite(), "{name}: non-finite score at ({i},{j},{k})");
            }
        }
    }
    // Better than constant (which scores 0 hits under pessimistic ties).
    let m = evaluate_ranking(&split.test, data.n_pois(), &EvalConfig::default(), &score);
    assert!(
        m.hit_at_k > 0.12,
        "{name}: Hit@10 {} not clearly above chance",
        m.hit_at_k
    );
}

#[test]
fn contract_matrix_completion_models() {
    let (data, split) = shared();
    let svd = PureSvd::fit(&data, &split.train, 10);
    check_contract("PureSVD", &data, &split, |i, j, k| svd.score(i, j, k));
    let mcco = Mcco::fit(
        &data,
        &split.train,
        &MccoConfig {
            iters: 6,
            ..Default::default()
        },
    );
    check_contract("MCCO", &data, &split, |i, j, k| mcco.score(i, j, k));
}

#[test]
fn contract_multilinear_models() {
    let (data, split) = shared();
    let cp = CpModel::fit(&data, &split.train, Granularity::Month, &fast_cp());
    check_contract("CP", &data, &split, |i, j, k| cp.score(i, j, k));
    let tucker = TuckerModel::fit(&data, &split.train, Granularity::Month, &fast_cp());
    check_contract("Tucker", &data, &split, |i, j, k| tucker.score(i, j, k));
    let pt = PTucker::fit(
        &data,
        &split.train,
        Granularity::Month,
        &PTuckerConfig {
            sweeps: 4,
            ..Default::default()
        },
    );
    check_contract("P-Tucker", &data, &split, |i, j, k| pt.score(i, j, k));
}

#[test]
fn contract_neural_models() {
    let (data, split) = shared();
    let ncf = Ncf::fit(&data, &split.train, Granularity::Month, &fast_neural());
    check_contract("NCF", &data, &split, |i, j, k| ncf.score(i, j, k));
    let ntm = Ntm::fit(&data, &split.train, Granularity::Month, &fast_neural());
    check_contract("NTM", &data, &split, |i, j, k| ntm.score(i, j, k));
    let costco = CoStCo::fit(&data, &split.train, Granularity::Month, &fast_neural());
    check_contract("CoSTCo", &data, &split, |i, j, k| costco.score(i, j, k));
}

#[test]
fn contract_sequence_models() {
    let (data, split) = shared();
    let cfg = NeuralConfig {
        epochs: 2,
        dim: 6,
        ..Default::default()
    };
    let strnn = Strnn::fit(&data, &split.train, Granularity::Month, &cfg);
    check_contract("STRNN", &data, &split, |i, j, k| strnn.score(i, j, k));
    let stgn = Stgn::fit(&data, &split.train, Granularity::Month, &cfg);
    check_contract("STGN", &data, &split, |i, j, k| stgn.score(i, j, k));
    let stan = Stan::fit(&data, &split.train, Granularity::Month, &cfg);
    check_contract("STAN", &data, &split, |i, j, k| stan.score(i, j, k));
}

#[test]
fn contract_graph_model() {
    let (data, split) = shared();
    let lfbca = Lfbca::fit(&data, &split.train, &LfbcaConfig::default());
    check_contract("LFBCA", &data, &split, |i, j, k| lfbca.score(i, j, k));
}

#[test]
fn matrix_models_ignore_time_sequence_models_use_it() {
    let (data, split) = shared();
    let svd = PureSvd::fit(&data, &split.train, 8);
    assert_eq!(svd.score(0, 1, 0), svd.score(0, 1, 7));
    let lfbca = Lfbca::fit(&data, &split.train, &LfbcaConfig::default());
    assert_eq!(lfbca.score(0, 1, 0), lfbca.score(0, 1, 7));
    // Tensor models differentiate time units for at least some cells.
    let cp = CpModel::fit(&data, &split.train, Granularity::Month, &fast_cp());
    let differs =
        (0..data.n_users.min(20)).any(|i| (cp.score(i, 0, 0) - cp.score(i, 0, 6)).abs() > 1e-9);
    assert!(differs, "CP never differentiates time units");
}
