//! P-Tucker (Oh et al., ICDE 2018) — scalable Tucker factorization for
//! sparse tensors via fully-parallelizable **row-wise ALS** updates.
//!
//! Faithful pieces: the row-wise update rule — each factor row solves its
//! own `r × r` normal-equation system with the other factors and the core
//! fixed — and the memory profile (no materialized intermediates).
//!
//! Adaptation for implicit feedback: the observed tensor is all ones, so
//! pure observed-only ALS has the degenerate constant solution. We use the
//! standard implicit-feedback weighting (Hu et al. 2008): every unobserved
//! cell participates with a small weight `w₀` and target 0, folded in via
//! the Gram trick so each row update stays `O(nnz_row·r² + r³)` after a
//! per-sweep `O(r⁶)` precomputation — the same asymptotics P-Tucker reports.
//! The core stays at its CP-like superdiagonal initialization plus a few
//! gradient refinements per sweep. Recorded in `DESIGN.md` §2.

use crate::common::sample_negative;
use crate::cp::FlatAdam;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_linalg::{solve_linear_system, Matrix};
use tcss_sparse::{Mode, SparseTensor3};

/// Configuration for P-Tucker.
#[derive(Debug, Clone)]
pub struct PTuckerConfig {
    /// Tucker rank (same along all modes).
    pub rank: usize,
    /// ALS sweeps.
    pub sweeps: usize,
    /// Weight of unobserved cells (implicit-feedback `w₀`).
    pub w0: f64,
    /// Ridge regularization added to every normal-equation system.
    pub reg: f64,
    /// Core gradient-refinement steps per sweep.
    pub core_steps: usize,
    /// RNG seed (core refinement negatives).
    pub seed: u64,
}

impl Default for PTuckerConfig {
    fn default() -> Self {
        PTuckerConfig {
            rank: 10,
            sweeps: 8,
            // Minimal implicit stabilization: pure observed-only ALS (w0=0,
            // the original P-Tucker) is degenerate on an all-ones binary
            // tensor; w0 = 0.01 is the smallest weight that keeps the
            // normal equations informative. See DESIGN.md section 2.
            w0: 0.01,
            reg: 0.05,
            core_steps: 4,
            seed: 13,
        }
    }
}

/// A fitted P-Tucker model.
pub struct PTucker {
    u1: Matrix,
    u2: Matrix,
    u3: Matrix,
    core: Vec<f64>,
    r: usize,
}

impl PTucker {
    /// Fit on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &PTuckerConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &PTuckerConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let r = cfg.rank.min(i_dim).min(j_dim).min(k_dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s = 1.0 / (r as f64).sqrt();
        let mut model = PTucker {
            u1: Matrix::random_uniform(i_dim, r, s, &mut rng),
            u2: Matrix::random_uniform(j_dim, r, s, &mut rng),
            u3: Matrix::random_uniform(k_dim, r, s, &mut rng),
            core: {
                let mut c = vec![0.0; r * r * r];
                for t in 0..r {
                    c[t * r * r + t * r + t] = 1.0;
                }
                c
            },
            r,
        };
        let mut core_adam = FlatAdam::new(r * r * r);
        for _sweep in 0..cfg.sweeps {
            for mode in Mode::ALL {
                model.update_mode(tensor, mode, cfg);
            }
            model.refine_core(tensor, cfg, &mut core_adam, &mut rng);
        }
        model
    }

    /// The design vector `m_{jk}[a] = Σ_{bc} G_{abc} U²_{jb} U³_{kc}` (and
    /// its cyclic analogues for the other modes).
    fn design_vector(&self, mode: Mode, x: usize, y: usize) -> Vec<f64> {
        let r = self.r;
        let mut m = vec![0.0; r];
        match mode {
            Mode::One => {
                let (b_row, c_row) = (self.u2.row(x), self.u3.row(y));
                for a in 0..r {
                    let mut acc = 0.0;
                    for b in 0..r {
                        for c in 0..r {
                            acc += self.core[a * r * r + b * r + c] * b_row[b] * c_row[c];
                        }
                    }
                    m[a] = acc;
                }
            }
            Mode::Two => {
                let (a_row, c_row) = (self.u1.row(x), self.u3.row(y));
                for b in 0..r {
                    let mut acc = 0.0;
                    for a in 0..r {
                        for c in 0..r {
                            acc += self.core[a * r * r + b * r + c] * a_row[a] * c_row[c];
                        }
                    }
                    m[b] = acc;
                }
            }
            Mode::Three => {
                let (a_row, b_row) = (self.u1.row(x), self.u2.row(y));
                for c in 0..r {
                    let mut acc = 0.0;
                    for a in 0..r {
                        for b in 0..r {
                            acc += self.core[a * r * r + b * r + c] * a_row[a] * b_row[b];
                        }
                    }
                    m[c] = acc;
                }
            }
        }
        m
    }

    /// Gram of all design vectors for a mode:
    /// `S[a,a'] = Σ_{x,y} m_{xy}[a] m_{xy}[a']`, computed through the factor
    /// Grams in `O(r⁶)` instead of `O(J·K·r²)` (the iALS trick).
    fn design_gram(&self, mode: Mode) -> Matrix {
        let r = self.r;
        let (gb, gc) = match mode {
            Mode::One => (self.u2.gram(), self.u3.gram()),
            Mode::Two => (self.u1.gram(), self.u3.gram()),
            Mode::Three => (self.u1.gram(), self.u2.gram()),
        };
        // Index helper: core entry with the mode's own axis first.
        let core_at = |own: usize, b: usize, c: usize| -> f64 {
            match mode {
                Mode::One => self.core[own * r * r + b * r + c],
                Mode::Two => self.core[b * r * r + own * r + c],
                Mode::Three => self.core[b * r * r + c * r + own],
            }
        };
        let mut s_mat = Matrix::zeros(r, r);
        for a in 0..r {
            for ap in a..r {
                let mut acc = 0.0;
                for b in 0..r {
                    for bp in 0..r {
                        let gbb = gb.get(b, bp);
                        if gbb == 0.0 {
                            continue;
                        }
                        for c in 0..r {
                            for cp in 0..r {
                                acc += core_at(a, b, c) * core_at(ap, bp, cp) * gbb * gc.get(c, cp);
                            }
                        }
                    }
                }
                s_mat.set(a, ap, acc);
                s_mat.set(ap, a, acc);
            }
        }
        s_mat
    }

    /// Row-wise ALS update of one factor matrix.
    fn update_mode(&mut self, tensor: &SparseTensor3, mode: Mode, cfg: &PTuckerConfig) {
        let r = self.r;
        let s_gram = self.design_gram(mode);
        let n_rows = match mode {
            Mode::One => self.u1.rows(),
            Mode::Two => self.u2.rows(),
            Mode::Three => self.u3.rows(),
        };
        let mut new_rows: Vec<Option<Vec<f64>>> = vec![None; n_rows];
        for row in 0..n_rows {
            // A = w₀·S + (1−w₀)·Σ_pos m mᵀ + reg·I ;  b = Σ_pos m.
            let mut a_mat = s_gram.scaled(cfg.w0);
            for t in 0..r {
                *a_mat.get_mut(t, t) += cfg.reg;
            }
            let mut b_vec = vec![0.0; r];
            let mut any = false;
            for e in tensor.slice(mode, row) {
                any = true;
                let (x, y) = match mode {
                    Mode::One => (e.j, e.k),
                    Mode::Two => (e.i, e.k),
                    Mode::Three => (e.i, e.j),
                };
                let m = self.design_vector(mode, x, y);
                for a in 0..r {
                    b_vec[a] += e.value * m[a];
                    for ap in 0..r {
                        *a_mat.get_mut(a, ap) += (1.0 - cfg.w0) * m[a] * m[ap];
                    }
                }
            }
            if !any {
                continue; // empty row: keep current (regularized to zero later)
            }
            if let Ok(x) = solve_linear_system(&a_mat, &b_vec) {
                new_rows[row] = Some(x);
            }
        }
        let target = match mode {
            Mode::One => &mut self.u1,
            Mode::Two => &mut self.u2,
            Mode::Three => &mut self.u3,
        };
        for (row, maybe) in new_rows.into_iter().enumerate() {
            if let Some(x) = maybe {
                target.row_mut(row).copy_from_slice(&x);
            }
        }
    }

    /// A few Adam steps on the core over positives + sampled negatives.
    fn refine_core(
        &mut self,
        tensor: &SparseTensor3,
        cfg: &PTuckerConfig,
        adam: &mut FlatAdam,
        rng: &mut StdRng,
    ) {
        let r = self.r;
        for _ in 0..cfg.core_steps {
            let mut gc = vec![0.0; r * r * r];
            let accumulate = |i: usize, j: usize, k: usize, target: f64, gc: &mut [f64]| {
                let (a, b, c) = (self.u1.row(i), self.u2.row(j), self.u3.row(k));
                let mut pred = 0.0;
                for ai in 0..r {
                    for bi in 0..r {
                        let ab = a[ai] * b[bi];
                        for ci in 0..r {
                            pred += self.core[ai * r * r + bi * r + ci] * ab * c[ci];
                        }
                    }
                }
                let e = 2.0 * (pred - target);
                for ai in 0..r {
                    for bi in 0..r {
                        let ab = a[ai] * b[bi];
                        for ci in 0..r {
                            gc[ai * r * r + bi * r + ci] += e * ab * c[ci];
                        }
                    }
                }
            };
            for e in tensor.entries() {
                accumulate(e.i, e.j, e.k, e.value, &mut gc);
                let (ni, nj, nk) = sample_negative(tensor, rng);
                accumulate(ni, nj, nk, 0.0, &mut gc);
            }
            let core = &mut self.core;
            adam.step(core, &gc, 0.01);
        }
    }

    /// Predicted score.
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let r = self.r;
        let (a, b, c) = (self.u1.row(i), self.u2.row(j), self.u3.row(k));
        let mut pred = 0.0;
        for ai in 0..r {
            for bi in 0..r {
                let ab = a[ai] * b[bi];
                if ab == 0.0 {
                    continue;
                }
                for ci in 0..r {
                    pred += self.core[ai * r * r + bi * r + ci] * ab * c[ci];
                }
            }
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_tensor() -> SparseTensor3 {
        let mut entries = Vec::new();
        for i in 0..8usize {
            for j in 0..8usize {
                for k in 0..4usize {
                    let block_a = i < 4 && j < 4 && k < 2;
                    let block_b = i >= 4 && j >= 4 && k >= 2;
                    if block_a || block_b {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        SparseTensor3::from_entries((8, 8, 4), entries).unwrap()
    }

    #[test]
    fn als_learns_block_pattern() {
        let t = planted_tensor();
        let cfg = PTuckerConfig {
            rank: 3,
            sweeps: 6,
            ..Default::default()
        };
        let m = PTucker::fit_tensor(&t, &cfg);
        let on = m.score(0, 0, 0);
        let off = m.score(0, 5, 3);
        assert!(on > 0.5, "on-pattern score {on}");
        assert!(on > off + 0.3, "on {on} vs off {off}");
    }

    #[test]
    fn design_gram_matches_explicit_sum() {
        let t = planted_tensor();
        let cfg = PTuckerConfig {
            rank: 2,
            sweeps: 1,
            ..Default::default()
        };
        let m = PTucker::fit_tensor(&t, &cfg);
        // Explicit Σ_{j,k} m mᵀ for mode 1 vs the Gram-trick version.
        let (_, j_dim, k_dim) = t.dims();
        let mut explicit = Matrix::zeros(2, 2);
        for j in 0..j_dim {
            for k in 0..k_dim {
                let v = m.design_vector(Mode::One, j, k);
                for a in 0..2 {
                    for b in 0..2 {
                        *explicit.get_mut(a, b) += v[a] * v[b];
                    }
                }
            }
        }
        let fast = m.design_gram(Mode::One);
        assert!(
            fast.approx_eq(&explicit, 1e-8),
            "gram trick mismatch:\n{fast}\nvs\n{explicit}"
        );
    }

    #[test]
    fn handles_empty_rows() {
        // User 3 has no check-ins at all.
        let t = SparseTensor3::from_entries(
            (4, 3, 2),
            vec![(0, 0, 0, 1.0), (1, 1, 1, 1.0), (2, 2, 0, 1.0)],
        )
        .unwrap();
        let cfg = PTuckerConfig {
            rank: 2,
            sweeps: 2,
            ..Default::default()
        };
        let m = PTucker::fit_tensor(&t, &cfg);
        assert!(m.score(3, 0, 0).is_finite());
    }
}
