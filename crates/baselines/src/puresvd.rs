//! PureSVD (Cremonesi et al., RecSys 2010) — matrix-completion baseline.
//!
//! Treat all missing values of the user–POI interaction matrix as zeros and
//! take a rank-`r` truncated SVD; the reconstruction scores candidates.
//! Time is ignored entirely, which is exactly the point of this baseline in
//! the paper: it quantifies what the time dimension adds.

use tcss_data::{CheckIn, Dataset};
use tcss_linalg::eigen::OrthIterConfig;
use tcss_linalg::{truncated_svd, Matrix, Svd};

/// A fitted PureSVD model.
pub struct PureSvd {
    svd: Svd,
}

impl PureSvd {
    /// Fit a rank-`r` PureSVD on the training check-ins (binary user–POI
    /// matrix; repeat visits collapse to 1 as in the paper's tensors).
    pub fn fit(data: &Dataset, train: &[CheckIn], rank: usize) -> Self {
        let mut m = Matrix::zeros(data.n_users, data.n_pois());
        for c in train {
            m.set(c.user, c.poi, 1.0);
        }
        let r = rank.min(data.n_users.min(data.n_pois()));
        let svd = truncated_svd(&m, r, &OrthIterConfig::default())
            .expect("rank clamped to matrix dimensions");
        PureSvd { svd }
    }

    /// Predicted affinity of `user` for `poi` (`_time` ignored).
    pub fn score(&self, user: usize, poi: usize, _time: usize) -> f64 {
        self.svd.predict(user, poi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, Granularity, SynthPreset};
    use tcss_eval::{evaluate_ranking, EvalConfig};

    #[test]
    fn reconstructs_block_structure() {
        // Users 0–1 visit POIs 0–1; users 2–3 visit POIs 2–3. PureSVD must
        // score within-block pairs above cross-block pairs, including the
        // held-out (1, 1) cell.
        let data = block_dataset();
        let train: Vec<CheckIn> = data
            .checkins
            .iter()
            .copied()
            .filter(|c| !(c.user == 1 && c.poi == 1))
            .collect();
        let m = PureSvd::fit(&data, &train, 2);
        assert!(m.score(1, 1, 0) > m.score(1, 2, 0));
        assert!(m.score(1, 1, 0) > m.score(1, 3, 0));
    }

    fn block_dataset() -> Dataset {
        use tcss_data::{Category, Poi};
        use tcss_geo::GeoPoint;
        use tcss_graph::SocialGraph;
        let pois = (0..4)
            .map(|j| Poi {
                location: GeoPoint::new(j as f64, 0.0),
                category: Category::Food,
            })
            .collect();
        let mut checkins = Vec::new();
        for u in 0..4usize {
            for j in 0..4usize {
                if (u < 2) == (j < 2) {
                    checkins.push(CheckIn {
                        user: u,
                        poi: j,
                        month: ((u + j) % 12) as u8,
                        week: 0,
                        hour: 0,
                    });
                }
            }
        }
        Dataset {
            name: "block".into(),
            n_users: 4,
            pois,
            checkins,
            social: SocialGraph::new(4),
        }
    }

    #[test]
    fn beats_chance_on_synthetic_data() {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 3);
        let m = PureSvd::fit(&data, &split.train, 10);
        let metrics = evaluate_ranking(
            &split.test,
            data.n_pois(),
            &EvalConfig {
                granularity: Granularity::Month,
                ..Default::default()
            },
            |i, j, k| m.score(i, j, k),
        );
        assert!(
            metrics.hit_at_k > 0.2,
            "PureSVD hit@10 {} too weak",
            metrics.hit_at_k
        );
    }

    #[test]
    fn rank_clamped_to_dims() {
        let data = block_dataset();
        // rank 10 > min(4,4): must not panic.
        let m = PureSvd::fit(&data, &data.checkins, 10);
        assert!(m.score(0, 0, 0).is_finite());
    }
}
