//! STRNN — Spatial-Temporal Recurrent Neural Network (Liu et al., AAAI
//! 2016).
//!
//! STRNN's contribution is replacing the RNN's fixed input transform with
//! *distance- and time-gap-interpolated* transition matrices: the input
//! projection at step `t` is a linear interpolation between "near"/"far"
//! spatial matrices (by the geographic distance from the previous check-in)
//! plus "short"/"long" temporal matrices (by the elapsed time). We
//! reproduce exactly that cell at reduced width:
//!
//! `h_t = tanh([(1−a)W_near + a·W_far] e_t + [(1−b)T_short + b·T_long] e_t + C h_{t−1})`
//!
//! Training: next-POI prediction along each user's chronological train
//! sequence, BCE on the positive target vs a sampled negative POI.
//! Scoring: `score(i,j,k) = (h_i + u_i)·q_j + t_k·q_j` with `h_i` the final
//! state after replaying the user's train sequence.

use crate::common::{sigmoid, time_of, user_sequences};
use crate::ncf::NeuralConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_autodiff::layers::Embedding;
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamId, ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_geo::DistanceMatrix;

/// A fitted STRNN model.
pub struct Strnn {
    params: ParamSet,
    poi_emb: Embedding,
    poi_out: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    w_near: ParamId,
    w_far: ParamId,
    t_short: ParamId,
    t_long: ParamId,
    c_rec: ParamId,
    /// Final hidden state per user after replaying the train sequence.
    user_state: Vec<Vec<f64>>,
    granularity: Granularity,
}

/// Maximum replayed sequence length (long histories are truncated to the
/// most recent events, as the original does with session windows).
const MAX_SEQ: usize = 40;

impl Strnn {
    /// Fit on training check-ins.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let d = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let poi_emb = Embedding::new(&mut params, "poi_in", data.n_pois(), d, 0.1, &mut rng);
        let poi_out = Embedding::new(&mut params, "poi_out", data.n_pois(), d, 0.1, &mut rng);
        let time_emb = Embedding::new(&mut params, "time", g.len(), d, 0.1, &mut rng);
        let user_emb = Embedding::new(&mut params, "user", data.n_users, d, 0.1, &mut rng);
        let w_near = params.add("w_near", Tensor::xavier(d, d, &mut rng));
        let w_far = params.add("w_far", Tensor::xavier(d, d, &mut rng));
        let t_short = params.add("t_short", Tensor::xavier(d, d, &mut rng));
        let t_long = params.add("t_long", Tensor::xavier(d, d, &mut rng));
        let c_rec = params.add("c_rec", Tensor::xavier(d, d, &mut rng));
        let mut model = Strnn {
            params,
            poi_emb,
            poi_out,
            time_emb,
            user_emb,
            w_near,
            w_far,
            t_short,
            t_long,
            c_rec,
            user_state: vec![vec![0.0; d]; data.n_users],
            granularity: g,
        };
        let dist = data.distance_matrix();
        let seqs = user_sequences(train, data.n_users);
        let mut opt = Adam::new(cfg.learning_rate);
        let max_gap = 53.0 * 7.0 * 24.0; // hours in a year
        for _epoch in 0..cfg.epochs {
            for (user, seq) in seqs.iter().enumerate() {
                if seq.len() < 2 {
                    continue;
                }
                let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
                let tape = Tape::new();
                let mut h = model.replay(&tape, user, seq, &dist, max_gap, |t, htape| {
                    // At each step t we predict event t+1.
                    let _ = (t, htape);
                });
                // Build per-step logits: positive target vs one negative.
                let mut logits: Option<Var> = None;
                let mut targets = Vec::new();
                let u_vec = model.user_emb.forward(&tape, &model.params, &[user]);
                h = tape.add(h, u_vec);
                // Predict the last event from the state before it.
                let last = seq[seq.len() - 1];
                let k_idx = model.granularity.index(&last);
                for (target_poi, label) in [(last.poi, 1.0), (rng.gen_range(0..data.n_pois()), 0.0)]
                {
                    let q = model.poi_out.forward(&tape, &model.params, &[target_poi]);
                    let tq = model.time_emb.forward(&tape, &model.params, &[k_idx]);
                    let pred = tape.add(h, tq);
                    let dot = tape.sum(tape.mul(pred, q));
                    let dot2 = tape.reshape(dot, &[1, 1]);
                    logits = Some(match logits {
                        None => dot2,
                        Some(prev) => tape.concat_cols(prev, dot2),
                    });
                    targets.push(label);
                }
                let loss = tape.bce_with_logits(
                    logits.expect("at least one step"),
                    &Tensor::from_vec(&[1, targets.len()], targets),
                );
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        // Final states: replay each full train sequence.
        for (user, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
            let tape = Tape::new();
            let h = model.replay(&tape, user, seq, &dist, max_gap, |_, _| {});
            model.user_state[user] = tape.value(h).data().to_vec();
        }
        model
    }

    /// Run the STRNN cell over a sequence; returns the state *before* the
    /// final event (so the final event can serve as the prediction target),
    /// or the initial state for length-1 sequences.
    fn replay(
        &self,
        tape: &Tape,
        _user: usize,
        seq: &[CheckIn],
        dist: &DistanceMatrix,
        max_gap: f64,
        mut hook: impl FnMut(usize, Var),
    ) -> Var {
        let d = self.poi_emb.dim;
        let wn = tape.param(&self.params, self.w_near);
        let wf = tape.param(&self.params, self.w_far);
        let ts = tape.param(&self.params, self.t_short);
        let tl = tape.param(&self.params, self.t_long);
        let c = tape.param(&self.params, self.c_rec);
        let mut h = tape.constant(Tensor::zeros(&[1, d]));
        let d_max = dist.max_distance().max(1e-9);
        // Consume all events except the last (the prediction target).
        let upto = seq.len().saturating_sub(1);
        for t in 0..upto {
            let e = tape.gather_rows(tape.param(&self.params, self.poi_emb.table), &[seq[t].poi]);
            // Interpolation weights from the *previous* event.
            let (a, b) = if t == 0 {
                (0.0, 0.0)
            } else {
                let geo = dist.get(seq[t - 1].poi, seq[t].poi) / d_max;
                let gap =
                    ((time_of(&seq[t]) - time_of(&seq[t - 1])).abs() / max_gap).clamp(0.0, 1.0);
                (geo, gap)
            };
            let w_interp = tape.add(tape.scale(wn, 1.0 - a), tape.scale(wf, a));
            let t_interp = tape.add(tape.scale(ts, 1.0 - b), tape.scale(tl, b));
            let spatial = tape.matmul(e, w_interp);
            let temporal = tape.matmul(e, t_interp);
            let rec = tape.matmul(h, c);
            h = tape.tanh(tape.add(tape.add(spatial, temporal), rec));
            hook(t, h);
        }
        h
    }

    /// Predicted affinity of `(user, poi, time)`.
    pub fn score(&self, user: usize, poi: usize, time: usize) -> f64 {
        let h = &self.user_state[user];
        let q = self.params.value(self.poi_out.table);
        let u = self.params.value(self.user_emb.table);
        let tq = self.params.value(self.time_emb.table);
        let d = h.len();
        let mut acc = 0.0;
        for t in 0..d {
            acc += (h[t] + u.at(user, t) + tq.at(time, t)) * q.at(poi, t);
        }
        sigmoid(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, SynthPreset};

    #[test]
    fn fits_and_scores() {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 5);
        let cfg = NeuralConfig {
            epochs: 2,
            dim: 8,
            ..Default::default()
        };
        let m = Strnn::fit(&data, &split.train, Granularity::Month, &cfg);
        let s = m.score(0, 0, 0);
        assert!((0.0..=1.0).contains(&s));
        // States were populated for active users.
        assert!(m.user_state.iter().any(|h| h.iter().any(|&v| v != 0.0)));
    }

    #[test]
    fn prefers_visited_pois_after_training() {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 5);
        let cfg = NeuralConfig {
            epochs: 4,
            dim: 8,
            ..Default::default()
        };
        let m = Strnn::fit(&data, &split.train, Granularity::Month, &cfg);
        // Average score of train positives vs random pairs.
        let mut pos = 0.0;
        let mut n = 0.0;
        for c in split.train.iter().take(200) {
            pos += m.score(c.user, c.poi, c.month as usize);
            n += 1.0;
        }
        pos /= n;
        let mut neg = 0.0;
        let mut nn = 0.0;
        for s in 0..200 {
            neg += m.score(s % data.n_users, (s * 17) % data.n_pois(), s % 12);
            nn += 1.0;
        }
        neg /= nn;
        assert!(pos > neg, "pos {pos} should exceed random {neg}");
    }
}
