//! NTM — Neural Tensor Machine (Chen & Li, IJCAI 2020): combines a
//! generalized CP term with a tensorized MLP to capture nonlinear
//! multi-aspect factor interactions.
//!
//! Architecture here: shared embeddings feed (a) a *generalized CP* branch
//! — elementwise product of the three vectors followed by a learned linear
//! head (the `h`-weighted CP of the paper family) — and (b) an MLP branch
//! over the concatenated vectors; the two branch outputs are summed into
//! the final logit. BCE over positives + sampled negatives.

use crate::ncf::{epoch_examples, NeuralConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_autodiff::layers::{Activation, Dense, Embedding};
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_sparse::SparseTensor3;

/// A fitted NTM model.
pub struct Ntm {
    params: ParamSet,
    user: Embedding,
    poi: Embedding,
    time: Embedding,
    cp_head: Dense,
    mlp1: Dense,
    mlp2: Dense,
}

impl Ntm {
    /// Fit on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &NeuralConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let d = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let user = Embedding::new(&mut params, "user", i_dim, d, 0.1, &mut rng);
        let poi = Embedding::new(&mut params, "poi", j_dim, d, 0.1, &mut rng);
        let time = Embedding::new(&mut params, "time", k_dim, d, 0.1, &mut rng);
        let cp_head = Dense::new(&mut params, "cp_head", d, 1, &mut rng);
        let mlp1 = Dense::new(&mut params, "mlp1", 3 * d, d, &mut rng);
        let mlp2 = Dense::new(&mut params, "mlp2", d, 1, &mut rng);
        let mut model = Ntm {
            params,
            user,
            poi,
            time,
            cp_head,
            mlp1,
            mlp2,
        };
        let mut opt = Adam::new(cfg.learning_rate);
        for _ in 0..cfg.epochs {
            let examples = epoch_examples(tensor, cfg.negatives_per_positive, &mut rng);
            for chunk in examples.chunks(cfg.batch) {
                let tape = Tape::new();
                let logits = model.forward(&tape, chunk);
                let targets =
                    Tensor::from_vec(&[chunk.len(), 1], chunk.iter().map(|e| e.3).collect());
                let loss = tape.bce_with_logits(logits, &targets);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        model
    }

    fn forward(&self, tape: &Tape, batch: &[(usize, usize, usize, f64)]) -> Var {
        let users: Vec<usize> = batch.iter().map(|e| e.0).collect();
        let pois: Vec<usize> = batch.iter().map(|e| e.1).collect();
        let times: Vec<usize> = batch.iter().map(|e| e.2).collect();
        let u = self.user.forward(tape, &self.params, &users);
        let p = self.poi.forward(tape, &self.params, &pois);
        let t = self.time.forward(tape, &self.params, &times);
        // Generalized CP branch.
        let up = tape.mul(u, p);
        let upt = tape.mul(up, t);
        let cp = self
            .cp_head
            .forward(tape, &self.params, upt, Activation::Identity);
        // Tensorized MLP branch.
        let cat = tape.concat_cols(tape.concat_cols(u, p), t);
        let h = self.mlp1.forward(tape, &self.params, cat, Activation::Relu);
        let mlp = self
            .mlp2
            .forward(tape, &self.params, h, Activation::Identity);
        tape.add(cp, mlp)
    }

    /// Predicted interaction probability.
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let tape = Tape::new();
        let logits = self.forward(&tape, &[(i, j, k, 0.0)]);
        crate::common::sigmoid(tape.value(logits).item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_planted_pattern() {
        let mut entries = Vec::new();
        for i in 0..6usize {
            for j in 0..6usize {
                for k in 0..3usize {
                    if i % 2 == j % 2 {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        let t = SparseTensor3::from_entries((6, 6, 3), entries).unwrap();
        let cfg = NeuralConfig {
            epochs: 40,
            dim: 6,
            ..Default::default()
        };
        let m = Ntm::fit_tensor(&t, &cfg);
        let on = m.score(0, 2, 1);
        let off = m.score(0, 3, 1);
        assert!(on > off, "on {on} vs off {off}");
    }
}
