//! MCCO (Candès & Recht) — exact matrix completion via nuclear-norm
//! relaxation.
//!
//! The reference implementation solves a semidefinite program; at any
//! practical size the standard solver for the same objective is
//! **Soft-Impute** (Mazumder et al. 2010): iterate
//! `M ← SVT_τ(P_Ω(X) + P_Ω̄(M))`, i.e. refill the unobserved cells with the
//! current completion and shrink all singular values by `τ`. It converges
//! to the nuclear-norm-regularized completion — the same solution family
//! the MCCO paper targets. See `DESIGN.md` §2 for the substitution record.

use tcss_data::{CheckIn, Dataset};
use tcss_linalg::eigen::OrthIterConfig;
use tcss_linalg::{truncated_svd, Matrix};

/// Configuration for the Soft-Impute solver.
#[derive(Debug, Clone)]
pub struct MccoConfig {
    /// Singular-value shrinkage threshold `τ`.
    pub tau: f64,
    /// Maximum SVD rank retained per iteration.
    pub max_rank: usize,
    /// Outer iterations.
    pub iters: usize,
}

impl Default for MccoConfig {
    fn default() -> Self {
        MccoConfig {
            tau: 0.5,
            max_rank: 20,
            iters: 15,
        }
    }
}

/// A fitted nuclear-norm matrix completion.
pub struct Mcco {
    completed: Matrix,
}

impl Mcco {
    /// Fit on the binary user–POI matrix built from `train`.
    pub fn fit(data: &Dataset, train: &[CheckIn], cfg: &MccoConfig) -> Self {
        let (n, m) = (data.n_users, data.n_pois());
        let mut observed = Matrix::zeros(n, m);
        for c in train {
            observed.set(c.user, c.poi, 1.0);
        }
        let mask = observed.clone(); // 1 where observed
        let mut current = observed.clone();
        let rank = cfg.max_rank.min(n.min(m));
        for _ in 0..cfg.iters {
            // Refill: observed cells from data, the rest from the model.
            let svd =
                truncated_svd(&current, rank, &OrthIterConfig::default()).expect("rank clamped");
            // Soft-threshold the singular values.
            let shrunk: Vec<f64> = svd.sigma.iter().map(|&s| (s - cfg.tau).max(0.0)).collect();
            let mut next = Matrix::zeros(n, m);
            for i in 0..n {
                for j in 0..m {
                    let mut acc = 0.0;
                    for (t, &sv) in shrunk.iter().enumerate() {
                        if sv > 0.0 {
                            acc += svd.u.get(i, t) * sv * svd.v.get(j, t);
                        }
                    }
                    // P_Ω(X) + P_Ω̄(M).
                    next.set(i, j, if mask.get(i, j) > 0.0 { 1.0 } else { acc });
                }
            }
            current = next;
        }
        // Final smooth completion (no hard refill) for scoring.
        let svd = truncated_svd(&current, rank, &OrthIterConfig::default()).expect("rank clamped");
        let completed = svd.reconstruct().expect("shapes agree");
        Mcco { completed }
    }

    /// Predicted affinity (`_time` ignored; matrix model).
    pub fn score(&self, user: usize, poi: usize, _time: usize) -> f64 {
        self.completed.get(user, poi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{Category, Poi};
    use tcss_geo::GeoPoint;
    use tcss_graph::SocialGraph;

    fn block_dataset(holdout: (usize, usize)) -> (Dataset, Vec<CheckIn>) {
        let pois = (0..6)
            .map(|j| Poi {
                location: GeoPoint::new(j as f64, 0.0),
                category: Category::Food,
            })
            .collect();
        let mut checkins = Vec::new();
        for u in 0..6usize {
            for j in 0..6usize {
                if (u < 3) == (j < 3) {
                    checkins.push(CheckIn {
                        user: u,
                        poi: j,
                        month: 0,
                        week: 0,
                        hour: 0,
                    });
                }
            }
        }
        let data = Dataset {
            name: "block".into(),
            n_users: 6,
            pois,
            checkins: checkins.clone(),
            social: SocialGraph::new(6),
        };
        let train = checkins
            .into_iter()
            .filter(|c| (c.user, c.poi) != holdout)
            .collect();
        (data, train)
    }

    #[test]
    fn completes_missing_block_entry() {
        let (data, train) = block_dataset((1, 2));
        let m = Mcco::fit(&data, &train, &MccoConfig::default());
        // Held-out within-block cell must outscore cross-block cells.
        assert!(m.score(1, 2, 0) > m.score(1, 4, 0));
        assert!(m.score(1, 2, 0) > 0.3, "score {}", m.score(1, 2, 0));
    }

    #[test]
    fn shrinkage_reduces_rank() {
        let (data, train) = block_dataset((0, 0));
        let aggressive = Mcco::fit(
            &data,
            &train,
            &MccoConfig {
                tau: 2.5,
                ..Default::default()
            },
        );
        let gentle = Mcco::fit(
            &data,
            &train,
            &MccoConfig {
                tau: 0.1,
                ..Default::default()
            },
        );
        // Heavier shrinkage flattens the completion.
        let spread = |m: &Mcco| {
            let mut lo = f64::MAX;
            let mut hi = f64::MIN;
            for i in 0..6 {
                for j in 0..6 {
                    lo = lo.min(m.score(i, j, 0));
                    hi = hi.max(m.score(i, j, 0));
                }
            }
            hi - lo
        };
        assert!(spread(&aggressive) < spread(&gentle));
    }
}
