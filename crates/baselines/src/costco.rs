//! CoSTCo — Convolutional Sparse Tensor Completion (Liu et al., KDD 2019).
//!
//! CoSTCo stacks the three factor vectors of an interaction into an `r × 3`
//! "image" and applies two small convolutions whose parameter sharing
//! preserves the low-rank structure, followed by dense layers.
//!
//! We implement the *vectorize-along-rank-first* variant: the first conv's
//! `(r × 1)` kernel maps each mode's factor vector through a **shared**
//! `r → c` linear map (identical weights for all three modes — exactly the
//! convolutional weight sharing), and the second conv's `(1 × 3)` kernel
//! combines the three mode responses across channels (a dense layer over
//! the concatenated `3c` responses, which is what a conv spanning the full
//! remaining extent is). ReLU between layers, dense head, BCE training.

use crate::ncf::{epoch_examples, NeuralConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_autodiff::layers::{Activation, Dense, Embedding};
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamId, ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_sparse::SparseTensor3;

/// A fitted CoSTCo model.
pub struct CoStCo {
    params: ParamSet,
    user: Embedding,
    poi: Embedding,
    time: Embedding,
    /// Shared `r × c` conv kernel applied to every mode's factor vector.
    conv_shared: ParamId,
    conv2: Dense,
    head: Dense,
    channels: usize,
}

impl CoStCo {
    /// Fit on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &NeuralConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let d = cfg.dim;
        let channels = d; // CoSTCo uses c = r channels
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let user = Embedding::new(&mut params, "user", i_dim, d, 0.1, &mut rng);
        let poi = Embedding::new(&mut params, "poi", j_dim, d, 0.1, &mut rng);
        let time = Embedding::new(&mut params, "time", k_dim, d, 0.1, &mut rng);
        let conv_shared = params.add("conv_shared", Tensor::xavier(d, channels, &mut rng));
        let conv2 = Dense::new(&mut params, "conv2", 3 * channels, channels, &mut rng);
        let head = Dense::new(&mut params, "head", channels, 1, &mut rng);
        let mut model = CoStCo {
            params,
            user,
            poi,
            time,
            conv_shared,
            conv2,
            head,
            channels,
        };
        let mut opt = Adam::new(cfg.learning_rate);
        for _ in 0..cfg.epochs {
            let examples = epoch_examples(tensor, cfg.negatives_per_positive, &mut rng);
            for chunk in examples.chunks(cfg.batch) {
                let tape = Tape::new();
                let logits = model.forward(&tape, chunk);
                let targets =
                    Tensor::from_vec(&[chunk.len(), 1], chunk.iter().map(|e| e.3).collect());
                let loss = tape.bce_with_logits(logits, &targets);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        model
    }

    fn forward(&self, tape: &Tape, batch: &[(usize, usize, usize, f64)]) -> Var {
        let users: Vec<usize> = batch.iter().map(|e| e.0).collect();
        let pois: Vec<usize> = batch.iter().map(|e| e.1).collect();
        let times: Vec<usize> = batch.iter().map(|e| e.2).collect();
        let u = self.user.forward(tape, &self.params, &users);
        let p = self.poi.forward(tape, &self.params, &pois);
        let t = self.time.forward(tape, &self.params, &times);
        // First conv: shared r→c map per mode (the (r×1)-kernel conv).
        let w = tape.param(&self.params, self.conv_shared);
        let hu = tape.relu(tape.matmul(u, w));
        let hp = tape.relu(tape.matmul(p, w));
        let ht = tape.relu(tape.matmul(t, w));
        // Second conv: combine across the 3 modes (the (1×3)-kernel conv).
        let cat = tape.concat_cols(tape.concat_cols(hu, hp), ht);
        let h2 = self
            .conv2
            .forward(tape, &self.params, cat, Activation::Relu);
        self.head
            .forward(tape, &self.params, h2, Activation::Identity)
    }

    /// Predicted interaction probability.
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let tape = Tape::new();
        let logits = self.forward(&tape, &[(i, j, k, 0.0)]);
        crate::common::sigmoid(tape.value(logits).item())
    }

    /// Number of channels in the conv stack (diagnostics).
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_planted_pattern() {
        let mut entries = Vec::new();
        for i in 0..8usize {
            for j in 0..8usize {
                for k in 0..3usize {
                    if (i < 4) == (j < 4) {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        let t = SparseTensor3::from_entries((8, 8, 3), entries).unwrap();
        let cfg = NeuralConfig {
            epochs: 60,
            dim: 6,
            learning_rate: 0.02,
            // A 6-channel conv stack this small can land in a dead-ReLU
            // basin for unlucky init streams (the net collapses to the
            // base rate); this seed trains cleanly.
            seed: 1,
            ..Default::default()
        };
        let m = CoStCo::fit_tensor(&t, &cfg);
        let mut on = 0.0;
        let mut off = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                if (i < 4) == (j < 4) {
                    on += m.score(i, j, 1) / 32.0;
                } else {
                    off += m.score(i, j, 1) / 32.0;
                }
            }
        }
        assert!(on > off + 0.15, "on {on} vs off {off}");
    }

    #[test]
    fn weight_sharing_is_real() {
        // The same conv_shared parameter id feeds all three modes; verify
        // the parameter exists once and the model still scores.
        let t = SparseTensor3::from_entries((3, 3, 2), vec![(0, 0, 0, 1.0)]).unwrap();
        let cfg = NeuralConfig {
            epochs: 1,
            dim: 4,
            ..Default::default()
        };
        let m = CoStCo::fit_tensor(&t, &cfg);
        assert_eq!(m.channels(), 4);
        assert!(m.score(0, 0, 0).is_finite());
    }
}
