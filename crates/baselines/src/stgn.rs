//! STGN — Spatio-Temporal Gated Network (Zhao et al., AAAI 2019).
//!
//! STGN enhances an LSTM with *spatio-temporal gates*: a time gate driven
//! by the elapsed interval `Δt` and a distance gate driven by the travelled
//! distance `Δd`, both modulating how much of the new candidate state
//! enters the cell:
//!
//! ```text
//! i = σ(Wᵢx + Uᵢh)        f = σ(W_f x + U_f h)
//! T = σ(W_T x + v_T Δt)   D = σ(W_D x + v_D Δd)
//! g = tanh(W_g x + U_g h)
//! c ← f ⊙ c + i ⊙ T ⊙ D ⊙ g
//! o = σ(W_o x + U_o h)
//! h ← o ⊙ tanh(c)
//! ```
//!
//! (The original uses two time/distance gate pairs; one pair preserves the
//! mechanism at our scale — recorded in `DESIGN.md` §2.) Training and
//! scoring mirror the STRNN baseline.

use crate::common::{sigmoid, time_of, user_sequences};
use crate::ncf::NeuralConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_autodiff::layers::Embedding;
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamId, ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_geo::DistanceMatrix;

/// A fitted STGN model.
pub struct Stgn {
    params: ParamSet,
    poi_emb: Embedding,
    poi_out: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    // Gate parameters: W (input), U (recurrent) per gate, plus the
    // interval/distance projection vectors.
    w: [ParamId; 5], // i, f, g, o, T/D input maps share indexing below
    u: [ParamId; 4], // i, f, g, o recurrent maps
    w_t: ParamId,
    w_d: ParamId,
    v_t: ParamId,
    v_d: ParamId,
    user_state: Vec<Vec<f64>>,
    granularity: Granularity,
}

const MAX_SEQ: usize = 40;

impl Stgn {
    /// Fit on training check-ins.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let d = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let poi_emb = Embedding::new(&mut params, "poi_in", data.n_pois(), d, 0.1, &mut rng);
        let poi_out = Embedding::new(&mut params, "poi_out", data.n_pois(), d, 0.1, &mut rng);
        let time_emb = Embedding::new(&mut params, "time", g.len(), d, 0.1, &mut rng);
        let user_emb = Embedding::new(&mut params, "user", data.n_users, d, 0.1, &mut rng);
        let mut mk = |name: &str| params.add(name, Tensor::xavier(d, d, &mut rng));
        let w = [mk("w_i"), mk("w_f"), mk("w_g"), mk("w_o"), mk("w_unused")];
        let u = [mk("u_i"), mk("u_f"), mk("u_g"), mk("u_o")];
        let w_t = mk("w_T");
        let w_d = mk("w_D");
        let v_t = params.add("v_T", Tensor::uniform(&[1, d], 0.1, &mut rng));
        let v_d = params.add("v_D", Tensor::uniform(&[1, d], 0.1, &mut rng));
        let mut model = Stgn {
            params,
            poi_emb,
            poi_out,
            time_emb,
            user_emb,
            w,
            u,
            w_t,
            w_d,
            v_t,
            v_d,
            user_state: vec![vec![0.0; d]; data.n_users],
            granularity: g,
        };
        let dist = data.distance_matrix();
        let seqs = user_sequences(train, data.n_users);
        let mut opt = Adam::new(cfg.learning_rate);
        for _epoch in 0..cfg.epochs {
            for (user, seq) in seqs.iter().enumerate() {
                if seq.len() < 2 {
                    continue;
                }
                let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
                let tape = Tape::new();
                let h = model.replay(&tape, seq, &dist);
                let u_vec = model.user_emb.forward(&tape, &model.params, &[user]);
                let h = tape.add(h, u_vec);
                let last = seq[seq.len() - 1];
                let k_idx = model.granularity.index(&last);
                let mut logits: Option<Var> = None;
                let mut targets = Vec::new();
                for (target_poi, label) in [(last.poi, 1.0), (rng.gen_range(0..data.n_pois()), 0.0)]
                {
                    let q = model.poi_out.forward(&tape, &model.params, &[target_poi]);
                    let tq = model.time_emb.forward(&tape, &model.params, &[k_idx]);
                    let pred = tape.add(h, tq);
                    let dot = tape.reshape(tape.sum(tape.mul(pred, q)), &[1, 1]);
                    logits = Some(match logits {
                        None => dot,
                        Some(prev) => tape.concat_cols(prev, dot),
                    });
                    targets.push(label);
                }
                let loss = tape.bce_with_logits(
                    logits.expect("two logits"),
                    &Tensor::from_vec(&[1, targets.len()], targets),
                );
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        for (user, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
            let tape = Tape::new();
            let h = model.replay(&tape, seq, &dist);
            model.user_state[user] = tape.value(h).data().to_vec();
        }
        model
    }

    /// Run the gated cell over all events except the last.
    fn replay(&self, tape: &Tape, seq: &[CheckIn], dist: &DistanceMatrix) -> Var {
        let d = self.poi_emb.dim;
        let p = &self.params;
        let wi = tape.param(p, self.w[0]);
        let wf = tape.param(p, self.w[1]);
        let wg = tape.param(p, self.w[2]);
        let wo = tape.param(p, self.w[3]);
        let ui = tape.param(p, self.u[0]);
        let uf = tape.param(p, self.u[1]);
        let ug = tape.param(p, self.u[2]);
        let uo = tape.param(p, self.u[3]);
        let wt = tape.param(p, self.w_t);
        let wd = tape.param(p, self.w_d);
        let vt = tape.param(p, self.v_t);
        let vd = tape.param(p, self.v_d);
        let table = tape.param(p, self.poi_emb.table);
        let mut h = tape.constant(Tensor::zeros(&[1, d]));
        let mut c = tape.constant(Tensor::zeros(&[1, d]));
        let d_max = dist.max_distance().max(1e-9);
        let max_gap = 53.0 * 7.0 * 24.0;
        let upto = seq.len().saturating_sub(1);
        for t in 0..upto {
            let x = tape.gather_rows(table, &[seq[t].poi]);
            let (dt, dd) = if t == 0 {
                (0.0, 0.0)
            } else {
                (
                    ((time_of(&seq[t]) - time_of(&seq[t - 1])).abs() / max_gap).clamp(0.0, 1.0),
                    dist.get(seq[t - 1].poi, seq[t].poi) / d_max,
                )
            };
            let gate = |wx: Var, uh: Var| {
                let a = tape.matmul(x, wx);
                let b = tape.matmul(h, uh);
                tape.sigmoid(tape.add(a, b))
            };
            let i_g = gate(wi, ui);
            let f_g = gate(wf, uf);
            let o_g = gate(wo, uo);
            let g_c = {
                let a = tape.matmul(x, wg);
                let b = tape.matmul(h, ug);
                tape.tanh(tape.add(a, b))
            };
            // Spatio-temporal gates: σ(W x + v·Δ).
            let t_g = {
                let a = tape.matmul(x, wt);
                let b = tape.scale(vt, dt);
                tape.sigmoid(tape.add(a, b))
            };
            let d_g = {
                let a = tape.matmul(x, wd);
                let b = tape.scale(vd, dd);
                tape.sigmoid(tape.add(a, b))
            };
            let keep = tape.mul(f_g, c);
            let inject = tape.mul(tape.mul(i_g, tape.mul(t_g, d_g)), g_c);
            c = tape.add(keep, inject);
            h = tape.mul(o_g, tape.tanh(c));
        }
        h
    }

    /// Predicted affinity of `(user, poi, time)`.
    pub fn score(&self, user: usize, poi: usize, time: usize) -> f64 {
        let h = &self.user_state[user];
        let q = self.params.value(self.poi_out.table);
        let u = self.params.value(self.user_emb.table);
        let tq = self.params.value(self.time_emb.table);
        let mut acc = 0.0;
        for t in 0..h.len() {
            acc += (h[t] + u.at(user, t) + tq.at(time, t)) * q.at(poi, t);
        }
        sigmoid(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, SynthPreset};

    #[test]
    fn fits_and_scores_in_unit_interval() {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 6);
        let cfg = NeuralConfig {
            epochs: 2,
            dim: 8,
            ..Default::default()
        };
        let m = Stgn::fit(&data, &split.train, Granularity::Month, &cfg);
        for u in 0..5 {
            let s = m.score(u, u * 2, u % 12);
            assert!((0.0..=1.0).contains(&s));
        }
        assert!(m.user_state.iter().any(|h| h.iter().any(|&v| v != 0.0)));
    }

    #[test]
    fn gates_respond_to_gaps() {
        // Construct two 3-event sequences differing only in time gaps; the
        // final hidden state must differ (the time gate is live).
        let data = SynthPreset::Gmu5k.generate();
        let cfg = NeuralConfig {
            epochs: 1,
            dim: 6,
            ..Default::default()
        };
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 6);
        let m = Stgn::fit(&data, &split.train, Granularity::Month, &cfg);
        let dist = data.distance_matrix();
        let mk = |week: u8| CheckIn {
            user: 0,
            poi: 1,
            month: 0,
            week,
            hour: 0,
        };
        let fast = [mk(0), mk(1), mk(2)];
        let slow = [mk(0), mk(26), mk(52)];
        let tape_a = Tape::new();
        let ha = m.replay(&tape_a, &fast, &dist);
        let tape_b = Tape::new();
        let hb = m.replay(&tape_b, &slow, &dist);
        let va = tape_a.value(ha);
        let vb = tape_b.value(hb);
        assert!(
            !va.approx_eq(&vb, 1e-9),
            "time gate had no effect on the state"
        );
    }
}
