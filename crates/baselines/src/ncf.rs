//! NCF — Neural Collaborative Filtering (He et al., WWW 2017), extended to
//! ternary user–POI–time interactions exactly as the TCSS paper describes:
//! "feed the element-wise product of three MF vectors (user, POI, time) as
//! the input of the GMF layer and concatenate three MLP vectors as the
//! input of the MLP layer."
//!
//! Trained with binary cross-entropy over the positives plus sampled
//! negatives (the NCF recipe), on the `tcss-autodiff` engine.

use crate::common::sample_negative;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_autodiff::layers::{Activation, Dense, Embedding};
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_sparse::SparseTensor3;

/// Configuration shared by the neural tensor baselines.
#[derive(Debug, Clone)]
pub struct NeuralConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sampled negatives per positive per epoch.
    pub negatives_per_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            dim: 8,
            epochs: 15,
            batch: 256,
            learning_rate: 0.01,
            negatives_per_positive: 2,
            seed: 23,
        }
    }
}

/// Build the shuffled (i, j, k, label) training examples for one epoch.
pub(crate) fn epoch_examples(
    tensor: &SparseTensor3,
    negatives_per_positive: usize,
    rng: &mut StdRng,
) -> Vec<(usize, usize, usize, f64)> {
    let mut ex: Vec<(usize, usize, usize, f64)> =
        Vec::with_capacity(tensor.nnz() * (1 + negatives_per_positive));
    for e in tensor.entries() {
        ex.push((e.i, e.j, e.k, 1.0));
        for _ in 0..negatives_per_positive {
            let (ni, nj, nk) = sample_negative(tensor, rng);
            ex.push((ni, nj, nk, 0.0));
        }
    }
    for i in (1..ex.len()).rev() {
        ex.swap(i, rng.gen_range(0..=i));
    }
    ex
}

/// A fitted NCF model.
pub struct Ncf {
    params: ParamSet,
    gmf_user: Embedding,
    gmf_poi: Embedding,
    gmf_time: Embedding,
    mlp_user: Embedding,
    mlp_poi: Embedding,
    mlp_time: Embedding,
    mlp1: Dense,
    mlp2: Dense,
    head: Dense,
}

impl Ncf {
    /// Fit on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &NeuralConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let d = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let scale = 0.1;
        let gmf_user = Embedding::new(&mut params, "gmf.user", i_dim, d, scale, &mut rng);
        let gmf_poi = Embedding::new(&mut params, "gmf.poi", j_dim, d, scale, &mut rng);
        let gmf_time = Embedding::new(&mut params, "gmf.time", k_dim, d, scale, &mut rng);
        let mlp_user = Embedding::new(&mut params, "mlp.user", i_dim, d, scale, &mut rng);
        let mlp_poi = Embedding::new(&mut params, "mlp.poi", j_dim, d, scale, &mut rng);
        let mlp_time = Embedding::new(&mut params, "mlp.time", k_dim, d, scale, &mut rng);
        let mlp1 = Dense::new(&mut params, "mlp1", 3 * d, 2 * d, &mut rng);
        let mlp2 = Dense::new(&mut params, "mlp2", 2 * d, d, &mut rng);
        let head = Dense::new(&mut params, "head", 2 * d, 1, &mut rng);
        let mut model = Ncf {
            params,
            gmf_user,
            gmf_poi,
            gmf_time,
            mlp_user,
            mlp_poi,
            mlp_time,
            mlp1,
            mlp2,
            head,
        };
        let mut opt = Adam::new(cfg.learning_rate);
        for _epoch in 0..cfg.epochs {
            let examples = epoch_examples(tensor, cfg.negatives_per_positive, &mut rng);
            for chunk in examples.chunks(cfg.batch) {
                let tape = Tape::new();
                let logits = model.forward(&tape, chunk);
                let targets =
                    Tensor::from_vec(&[chunk.len(), 1], chunk.iter().map(|e| e.3).collect());
                let loss = tape.bce_with_logits(logits, &targets);
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        model
    }

    /// Forward pass over a batch of `(i, j, k, label)` examples → logits.
    fn forward(&self, tape: &Tape, batch: &[(usize, usize, usize, f64)]) -> Var {
        let users: Vec<usize> = batch.iter().map(|e| e.0).collect();
        let pois: Vec<usize> = batch.iter().map(|e| e.1).collect();
        let times: Vec<usize> = batch.iter().map(|e| e.2).collect();
        // GMF branch: elementwise product of the three MF vectors.
        let gu = self.gmf_user.forward(tape, &self.params, &users);
        let gp = self.gmf_poi.forward(tape, &self.params, &pois);
        let gt = self.gmf_time.forward(tape, &self.params, &times);
        let gup = tape.mul(gu, gp);
        let gmf = tape.mul(gup, gt);
        // MLP branch: concatenation of the three MLP vectors.
        let mu = self.mlp_user.forward(tape, &self.params, &users);
        let mp = self.mlp_poi.forward(tape, &self.params, &pois);
        let mt = self.mlp_time.forward(tape, &self.params, &times);
        let cat = tape.concat_cols(tape.concat_cols(mu, mp), mt);
        let h1 = self.mlp1.forward(tape, &self.params, cat, Activation::Relu);
        let h2 = self.mlp2.forward(tape, &self.params, h1, Activation::Relu);
        // Fusion head over [GMF ‖ MLP].
        let fused = tape.concat_cols(gmf, h2);
        self.head
            .forward(tape, &self.params, fused, Activation::Identity)
    }

    /// Predicted interaction probability.
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let tape = Tape::new();
        let logits = self.forward(&tape, &[(i, j, k, 0.0)]);
        crate::common::sigmoid(tape.value(logits).item())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_tensor() -> SparseTensor3 {
        let mut entries = Vec::new();
        for i in 0..8usize {
            for j in 0..8usize {
                for k in 0..4usize {
                    if (i < 4) == (j < 4) && (i + k) % 2 == 0 {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        SparseTensor3::from_entries((8, 8, 4), entries).unwrap()
    }

    #[test]
    fn learns_to_separate_blocks() {
        let t = planted_tensor();
        let cfg = NeuralConfig {
            epochs: 30,
            dim: 6,
            ..Default::default()
        };
        let m = Ncf::fit_tensor(&t, &cfg);
        // Average score on observed vs structurally-absent cells.
        let mut on = 0.0;
        let mut n_on = 0.0;
        for e in t.entries() {
            on += m.score(e.i, e.j, e.k);
            n_on += 1.0;
        }
        on /= n_on;
        let mut off = 0.0;
        let mut n_off = 0.0;
        for i in 0..8 {
            for j in 0..8 {
                if (i < 4) != (j < 4) {
                    off += m.score(i, j, 1);
                    n_off += 1.0;
                }
            }
        }
        off /= n_off;
        assert!(on > off + 0.15, "on {on} vs off {off}");
    }

    #[test]
    fn scores_are_probabilities() {
        let t = planted_tensor();
        let cfg = NeuralConfig {
            epochs: 2,
            ..Default::default()
        };
        let m = Ncf::fit_tensor(&t, &cfg);
        for i in 0..4 {
            let s = m.score(i, i, 0);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
