//! Shared helpers for the baseline models.

use rand::rngs::StdRng;
use rand::Rng;
use tcss_data::CheckIn;
use tcss_sparse::SparseTensor3;

/// Sample one unobserved `(i, j, k)` cell (uniform with rejection; gives up
/// after 32 rejections, which only matters for near-dense toy tensors).
pub fn sample_negative(tensor: &SparseTensor3, rng: &mut StdRng) -> (usize, usize, usize) {
    let (i_dim, j_dim, k_dim) = tensor.dims();
    for _ in 0..32 {
        let cell = (
            rng.gen_range(0..i_dim),
            rng.gen_range(0..j_dim),
            rng.gen_range(0..k_dim),
        );
        if !tensor.contains(cell.0, cell.1, cell.2) {
            return cell;
        }
    }
    (
        rng.gen_range(0..i_dim),
        rng.gen_range(0..j_dim),
        rng.gen_range(0..k_dim),
    )
}

/// Per-user check-in sequences in chronological order (month, then week,
/// then hour — the only ordering the synthetic timestamps support), used by
/// the sequence baselines (STRNN/STGN/STAN).
pub fn user_sequences(checkins: &[CheckIn], n_users: usize) -> Vec<Vec<CheckIn>> {
    let mut seqs: Vec<Vec<CheckIn>> = vec![Vec::new(); n_users];
    for c in checkins {
        seqs[c.user].push(*c);
    }
    for s in &mut seqs {
        s.sort_by_key(|c| (c.month, c.week, c.hour, c.poi));
    }
    seqs
}

/// Coarse "absolute time" of a check-in in hours, for gap features in the
/// sequence models.
pub fn time_of(c: &CheckIn) -> f64 {
    c.week as f64 * 7.0 * 24.0 + c.hour as f64
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn negatives_are_unobserved() {
        let t =
            SparseTensor3::from_entries((4, 4, 4), vec![(0, 0, 0, 1.0), (1, 1, 1, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let (i, j, k) = sample_negative(&t, &mut rng);
            assert!(!t.contains(i, j, k));
        }
    }

    #[test]
    fn sequences_are_chronological() {
        let cs = vec![
            CheckIn {
                user: 0,
                poi: 1,
                month: 5,
                week: 21,
                hour: 9,
            },
            CheckIn {
                user: 0,
                poi: 2,
                month: 1,
                week: 5,
                hour: 3,
            },
            CheckIn {
                user: 1,
                poi: 0,
                month: 0,
                week: 0,
                hour: 0,
            },
        ];
        let seqs = user_sequences(&cs, 2);
        assert_eq!(seqs[0].len(), 2);
        assert_eq!(seqs[0][0].poi, 2); // month 1 before month 5
        assert_eq!(seqs[1].len(), 1);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
