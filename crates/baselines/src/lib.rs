//! # tcss-baselines
//!
//! Every comparison model from Table I of the TCSS paper, implemented from
//! scratch on this workspace's substrates:
//!
//! | Family | Models | Substrate |
//! |---|---|---|
//! | Matrix completion | [`PureSvd`], [`Mcco`] (Soft-Impute solver for the same nuclear-norm objective) | `tcss-linalg` SVD |
//! | Multilinear tensor completion | [`CpModel`], [`TuckerModel`], [`PTucker`] | analytic gradients / row-wise ALS |
//! | Neural tensor completion | [`Ncf`], [`Ntm`], [`CoStCo`] | `tcss-autodiff` |
//! | Spatiotemporal POI recommenders | [`Strnn`], [`Stgn`], [`Stan`] | `tcss-autodiff` sequence models |
//! | Social-graph recommender | [`Lfbca`] | `tcss-graph` bookmark colouring |
//!
//! Each model exposes `fit(…) -> Self` and `score(user, poi, time) -> f64`,
//! which plugs directly into `tcss_eval::evaluate_ranking`. Matrix models
//! ignore `time`; LFBCA ignores it too (both per the paper's protocol).
//!
//! Models are sized for the synthetic laptop-scale datasets (see
//! `DESIGN.md` §2 for the faithfulness argument per model).

// Index-based loops are used deliberately throughout this crate: the
// numeric kernels mirror the paper's subscripted equations, and iterator
// chains over multiple parallel buffers obscure rather than clarify them.
#![allow(clippy::needless_range_loop)]

pub mod common;
pub mod costco;
pub mod cp;
pub mod lfbca;
pub mod mcco;
pub mod ncf;
pub mod ntm;
pub mod ptucker;
pub mod puresvd;
pub mod stan;
pub mod stgn;
pub mod strnn;
pub mod tucker;

pub use costco::CoStCo;
pub use cp::CpModel;
pub use lfbca::Lfbca;
pub use mcco::Mcco;
pub use ncf::Ncf;
pub use ntm::Ntm;
pub use ptucker::PTucker;
pub use puresvd::PureSvd;
pub use stan::Stan;
pub use stgn::Stgn;
pub use strnn::Strnn;
pub use tucker::TuckerModel;
