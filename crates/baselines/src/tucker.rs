//! Tucker decomposition tensor completion (paper Eq 2).
//!
//! `X̂_{ijk} = Σ_{abc} G_{abc} U¹_{ia} U²_{jb} U³_{kc}` with a dense
//! `r×r×r` core, trained like the CP baseline: Adam on squared error over
//! positives plus sampled negatives, analytic gradients.

use crate::common::sample_negative;
use crate::cp::{CpConfig, FlatAdam};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_linalg::Matrix;
use tcss_sparse::SparseTensor3;

/// A fitted Tucker model.
pub struct TuckerModel {
    u1: Matrix,
    u2: Matrix,
    u3: Matrix,
    /// Core tensor, row-major `r × r × r`.
    core: Vec<f64>,
    r: usize,
}

impl TuckerModel {
    /// Fit Tucker on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &CpConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit Tucker directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &CpConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let r = cfg.rank.min(i_dim).min(j_dim).min(k_dim);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s = 1.0 / (r as f64).sqrt();
        let mut u1 = Matrix::random_uniform(i_dim, r, s, &mut rng);
        let mut u2 = Matrix::random_uniform(j_dim, r, s, &mut rng);
        let mut u3 = Matrix::random_uniform(k_dim, r, s, &mut rng);
        // Initialize the core near super-diagonal (CP-like) for stability.
        let mut core = vec![0.0; r * r * r];
        for t in 0..r {
            core[t * r * r + t * r + t] = 1.0;
        }
        let mut adam1 = FlatAdam::new(i_dim * r);
        let mut adam2 = FlatAdam::new(j_dim * r);
        let mut adam3 = FlatAdam::new(k_dim * r);
        let mut adam_core = FlatAdam::new(r * r * r);
        let mut g1 = vec![0.0; i_dim * r];
        let mut g2 = vec![0.0; j_dim * r];
        let mut g3 = vec![0.0; k_dim * r];
        let mut gc = vec![0.0; r * r * r];
        for _epoch in 0..cfg.epochs {
            for buf in [&mut g1, &mut g2, &mut g3, &mut gc] {
                buf.iter_mut().for_each(|v| *v = 0.0);
            }
            let accumulate = |i: usize,
                              j: usize,
                              k: usize,
                              target: f64,
                              u1: &Matrix,
                              u2: &Matrix,
                              u3: &Matrix,
                              core: &[f64],
                              g1: &mut [f64],
                              g2: &mut [f64],
                              g3: &mut [f64],
                              gc: &mut [f64]| {
                let (a, b, c) = (u1.row(i), u2.row(j), u3.row(k));
                // Forward.
                let mut pred = 0.0;
                for ai in 0..r {
                    for bi in 0..r {
                        let ab = a[ai] * b[bi];
                        if ab == 0.0 {
                            continue;
                        }
                        for ci in 0..r {
                            pred += core[ai * r * r + bi * r + ci] * ab * c[ci];
                        }
                    }
                }
                let e = 2.0 * (pred - target);
                // Backward.
                for ai in 0..r {
                    for bi in 0..r {
                        for ci in 0..r {
                            let g = core[ai * r * r + bi * r + ci];
                            g1[i * r + ai] += e * g * b[bi] * c[ci];
                            g2[j * r + bi] += e * g * a[ai] * c[ci];
                            g3[k * r + ci] += e * g * a[ai] * b[bi];
                            gc[ai * r * r + bi * r + ci] += e * a[ai] * b[bi] * c[ci];
                        }
                    }
                }
            };
            for e in tensor.entries() {
                accumulate(
                    e.i, e.j, e.k, e.value, &u1, &u2, &u3, &core, &mut g1, &mut g2, &mut g3,
                    &mut gc,
                );
                for _ in 0..cfg.negatives_per_positive {
                    let (ni, nj, nk) = sample_negative(tensor, &mut rng);
                    accumulate(
                        ni, nj, nk, 0.0, &u1, &u2, &u3, &core, &mut g1, &mut g2, &mut g3, &mut gc,
                    );
                }
            }
            for (g, w) in [
                (&mut g1, u1.as_slice()),
                (&mut g2, u2.as_slice()),
                (&mut g3, u3.as_slice()),
                (&mut gc, core.as_slice()),
            ] {
                for (gv, &wv) in g.iter_mut().zip(w) {
                    *gv += 2.0 * cfg.reg * wv;
                }
            }
            adam1.step(u1.as_mut_slice(), &g1, cfg.learning_rate);
            adam2.step(u2.as_mut_slice(), &g2, cfg.learning_rate);
            adam3.step(u3.as_mut_slice(), &g3, cfg.learning_rate);
            adam_core.step(&mut core, &gc, cfg.learning_rate);
        }
        TuckerModel {
            u1,
            u2,
            u3,
            core,
            r,
        }
    }

    /// Predicted score (Eq 2).
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let r = self.r;
        let (a, b, c) = (self.u1.row(i), self.u2.row(j), self.u3.row(k));
        let mut pred = 0.0;
        for ai in 0..r {
            for bi in 0..r {
                let ab = a[ai] * b[bi];
                if ab == 0.0 {
                    continue;
                }
                for ci in 0..r {
                    pred += self.core[ai * r * r + bi * r + ci] * ab * c[ci];
                }
            }
        }
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_tensor() -> SparseTensor3 {
        let mut entries = Vec::new();
        for i in 0..6usize {
            for j in 0..6usize {
                for k in 0..4usize {
                    // Two interacting blocks — genuinely rank > 1.
                    let block_a = i < 3 && j < 3 && k < 2;
                    let block_b = i >= 3 && j >= 3 && k >= 2;
                    if block_a || block_b {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        SparseTensor3::from_entries((6, 6, 4), entries).unwrap()
    }

    #[test]
    fn learns_block_pattern() {
        let t = planted_tensor();
        let cfg = CpConfig {
            rank: 3,
            epochs: 150,
            ..Default::default()
        };
        let m = TuckerModel::fit_tensor(&t, &cfg);
        let on_a = m.score(0, 0, 0);
        let on_b = m.score(4, 4, 3);
        let off = m.score(0, 4, 3);
        assert!(on_a > off + 0.3, "on_a {on_a} vs off {off}");
        assert!(on_b > off + 0.3, "on_b {on_b} vs off {off}");
    }

    #[test]
    fn rank_clamped_to_dims() {
        let t = SparseTensor3::from_entries((2, 2, 2), vec![(0, 0, 0, 1.0)]).unwrap();
        let cfg = CpConfig {
            rank: 10,
            epochs: 2,
            ..Default::default()
        };
        let m = TuckerModel::fit_tensor(&t, &cfg);
        assert!(m.score(0, 0, 0).is_finite());
    }
}
