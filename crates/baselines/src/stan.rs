//! STAN — Spatio-Temporal Attention Network (Luo, Liu & Liu, WWW 2021).
//!
//! STAN applies self-attention over the *whole* check-in trajectory
//! (not just consecutive events), with spatiotemporal embeddings of each
//! event. We reproduce the core: each event embeds as
//! `x_t = poi_emb + time_emb`, one scaled-dot-product self-attention layer
//! aggregates the trajectory, mean pooling produces the user
//! representation, and a dot-product head scores candidates. (The original
//! adds explicit spatiotemporal *relation* matrices inside the attention
//! logits; with our coarse synthetic timestamps the additive time
//! embedding carries the same signal — recorded in `DESIGN.md` §2.)

use crate::common::{sigmoid, user_sequences};
use crate::ncf::NeuralConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_autodiff::layers::Embedding;
use tcss_autodiff::optim::{Adam, Optimizer};
use tcss_autodiff::{ParamId, ParamSet, Tape, Tensor, Var};
use tcss_data::{CheckIn, Dataset, Granularity};

/// A fitted STAN model.
pub struct Stan {
    params: ParamSet,
    poi_emb: Embedding,
    poi_out: Embedding,
    time_emb: Embedding,
    user_emb: Embedding,
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    user_state: Vec<Vec<f64>>,
    granularity: Granularity,
}

const MAX_SEQ: usize = 40;

impl Stan {
    /// Fit on training check-ins.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &NeuralConfig) -> Self {
        let d = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new();
        let poi_emb = Embedding::new(&mut params, "poi_in", data.n_pois(), d, 0.1, &mut rng);
        let poi_out = Embedding::new(&mut params, "poi_out", data.n_pois(), d, 0.1, &mut rng);
        let time_emb = Embedding::new(&mut params, "time", g.len(), d, 0.1, &mut rng);
        let user_emb = Embedding::new(&mut params, "user", data.n_users, d, 0.1, &mut rng);
        let wq = params.add("wq", Tensor::xavier(d, d, &mut rng));
        let wk = params.add("wk", Tensor::xavier(d, d, &mut rng));
        let wv = params.add("wv", Tensor::xavier(d, d, &mut rng));
        let mut model = Stan {
            params,
            poi_emb,
            poi_out,
            time_emb,
            user_emb,
            wq,
            wk,
            wv,
            user_state: vec![vec![0.0; d]; data.n_users],
            granularity: g,
        };
        let seqs = user_sequences(train, data.n_users);
        let mut opt = Adam::new(cfg.learning_rate);
        for _epoch in 0..cfg.epochs {
            for (user, seq) in seqs.iter().enumerate() {
                if seq.len() < 2 {
                    continue;
                }
                let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
                let tape = Tape::new();
                // Attend over the prefix, predict the last event.
                let z = model.attend(&tape, &seq[..seq.len() - 1]);
                let u_vec = model.user_emb.forward(&tape, &model.params, &[user]);
                let z = tape.add(z, u_vec);
                let last = seq[seq.len() - 1];
                let k_idx = model.granularity.index(&last);
                let mut logits: Option<Var> = None;
                let mut targets = Vec::new();
                for (target_poi, label) in [(last.poi, 1.0), (rng.gen_range(0..data.n_pois()), 0.0)]
                {
                    let q = model.poi_out.forward(&tape, &model.params, &[target_poi]);
                    let tq = model.time_emb.forward(&tape, &model.params, &[k_idx]);
                    let pred = tape.add(z, tq);
                    let dot = tape.reshape(tape.sum(tape.mul(pred, q)), &[1, 1]);
                    logits = Some(match logits {
                        None => dot,
                        Some(prev) => tape.concat_cols(prev, dot),
                    });
                    targets.push(label);
                }
                let loss = tape.bce_with_logits(
                    logits.expect("two logits"),
                    &Tensor::from_vec(&[1, targets.len()], targets),
                );
                tape.backward(loss);
                tape.accumulate_param_grads(&mut model.params);
                opt.step(&mut model.params);
            }
        }
        for (user, seq) in seqs.iter().enumerate() {
            if seq.is_empty() {
                continue;
            }
            let seq = &seq[seq.len().saturating_sub(MAX_SEQ)..];
            let tape = Tape::new();
            let z = model.attend(&tape, seq);
            model.user_state[user] = tape.value(z).data().to_vec();
        }
        model
    }

    /// One self-attention layer over the event sequence, mean-pooled to a
    /// `1 × d` user representation.
    fn attend(&self, tape: &Tape, seq: &[CheckIn]) -> Var {
        let d = self.poi_emb.dim;
        if seq.is_empty() {
            return tape.constant(Tensor::zeros(&[1, d]));
        }
        let pois: Vec<usize> = seq.iter().map(|c| c.poi).collect();
        let times: Vec<usize> = seq.iter().map(|c| self.granularity.index(c)).collect();
        let pe = self.poi_emb.forward(tape, &self.params, &pois);
        let te = self.time_emb.forward(tape, &self.params, &times);
        let x = tape.add(pe, te); // T × d
        let wq = tape.param(&self.params, self.wq);
        let wk = tape.param(&self.params, self.wk);
        let wv = tape.param(&self.params, self.wv);
        let q = tape.matmul(x, wq);
        let k = tape.matmul(x, wk);
        let v = tape.matmul(x, wv);
        let kt = tape.transpose(k);
        let scores = tape.scale(tape.matmul(q, kt), 1.0 / (d as f64).sqrt());
        let attn = tape.row_softmax(scores);
        let out = tape.matmul(attn, v); // T × d
                                        // Mean pooling: (1/T) · 1ᵀ out.
        let ones = tape.constant(Tensor::filled(&[1, seq.len()], 1.0 / seq.len() as f64));
        tape.matmul(ones, out)
    }

    /// Predicted affinity of `(user, poi, time)`.
    pub fn score(&self, user: usize, poi: usize, time: usize) -> f64 {
        let z = &self.user_state[user];
        let q = self.params.value(self.poi_out.table);
        let u = self.params.value(self.user_emb.table);
        let tq = self.params.value(self.time_emb.table);
        let mut acc = 0.0;
        for t in 0..z.len() {
            acc += (z[t] + u.at(user, t) + tq.at(time, t)) * q.at(poi, t);
        }
        sigmoid(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, SynthPreset};

    #[test]
    fn fits_and_scores() {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 8);
        let cfg = NeuralConfig {
            epochs: 2,
            dim: 8,
            ..Default::default()
        };
        let m = Stan::fit(&data, &split.train, Granularity::Month, &cfg);
        let s = m.score(1, 3, 5);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn attention_pools_whole_trajectory() {
        // The pooled representation must depend on early events, not just
        // the most recent one (that is STAN's selling point vs RNNs).
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 8);
        let cfg = NeuralConfig {
            epochs: 1,
            dim: 6,
            ..Default::default()
        };
        let m = Stan::fit(&data, &split.train, Granularity::Month, &cfg);
        let mk = |poi: usize, month: u8| CheckIn {
            user: 0,
            poi,
            month,
            week: month * 4,
            hour: 10,
        };
        let base = [mk(1, 0), mk(2, 3), mk(3, 6)];
        let changed_first = [mk(4, 0), mk(2, 3), mk(3, 6)];
        let tape_a = Tape::new();
        let za = m.attend(&tape_a, &base);
        let tape_b = Tape::new();
        let zb = m.attend(&tape_b, &changed_first);
        assert!(
            !tape_a.value(za).approx_eq(&tape_b.value(zb), 1e-12),
            "changing the first event must change the pooled state"
        );
    }
}
