//! LFBCA — Location-Friendship Bookmark-Colouring Algorithm (Wang,
//! Terrovitis & Mamoulis, SIGSPATIAL 2013).
//!
//! LFBCA augments the friendship graph with user–user *similarity* edges
//! (users whose check-in profiles are alike), runs a bookmark-colouring
//! random walk (personalized PageRank) from the querying user over the
//! augmented graph, and scores each POI by the walk probability mass of the
//! users who visited it. Time-independent, like the original.

use tcss_data::{CheckIn, Dataset};
use tcss_graph::{bookmark_coloring, PprConfig, SocialGraph};

/// Configuration for LFBCA.
#[derive(Debug, Clone)]
pub struct LfbcaConfig {
    /// Restart probability of the walk.
    pub alpha: f64,
    /// Number of similarity edges added per user (top-s cosine neighbours).
    pub similar_users: usize,
    /// Push tolerance of the bookmark-colouring solver.
    pub tol: f64,
}

impl Default for LfbcaConfig {
    fn default() -> Self {
        LfbcaConfig {
            alpha: 0.15,
            similar_users: 5,
            tol: 1e-8,
        }
    }
}

/// A fitted LFBCA model: a dense user × POI score table.
pub struct Lfbca {
    scores: Vec<Vec<f64>>,
}

impl Lfbca {
    /// Fit on training check-ins.
    pub fn fit(data: &Dataset, train: &[CheckIn], cfg: &LfbcaConfig) -> Self {
        let n_users = data.n_users;
        let n_pois = data.n_pois();
        // Binary visit profiles.
        let mut visits: Vec<Vec<f64>> = vec![vec![0.0; n_pois]; n_users];
        for c in train {
            visits[c.user][c.poi] = 1.0;
        }
        let norms: Vec<f64> = visits
            .iter()
            .map(|v| v.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        // Augmented graph: friendship ∪ top-s similarity edges.
        let mut aug = SocialGraph::new(n_users);
        for (a, b) in data.social.edges() {
            aug.add_edge(a, b);
        }
        for u in 0..n_users {
            if norms[u] == 0.0 {
                continue;
            }
            let mut sims: Vec<(usize, f64)> = (0..n_users)
                .filter(|&v| v != u && norms[v] > 0.0)
                .map(|v| {
                    let dot: f64 = visits[u]
                        .iter()
                        .zip(visits[v].iter())
                        .map(|(a, b)| a * b)
                        .sum();
                    (v, dot / (norms[u] * norms[v]))
                })
                .filter(|&(_, s)| s > 0.0)
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("cosines finite"));
            for &(v, _) in sims.iter().take(cfg.similar_users) {
                aug.add_edge(u, v);
            }
        }
        // Walk from every user; score POIs by visitor mass.
        let ppr_cfg = PprConfig {
            alpha: cfg.alpha,
            tol: cfg.tol,
            max_iters: 10_000,
        };
        let mut scores = vec![vec![0.0; n_pois]; n_users];
        for u in 0..n_users {
            let pi = bookmark_coloring(&aug, u, &ppr_cfg);
            let row = &mut scores[u];
            for (v, &mass) in pi.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                for (j, &vis) in visits[v].iter().enumerate() {
                    if vis > 0.0 {
                        row[j] += mass;
                    }
                }
            }
        }
        Lfbca { scores }
    }

    /// Predicted affinity (`_time` ignored, per the original algorithm).
    pub fn score(&self, user: usize, poi: usize, _time: usize) -> f64 {
        self.scores[user][poi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{Category, Poi};
    use tcss_geo::GeoPoint;

    fn mk_data() -> (Dataset, Vec<CheckIn>) {
        // Users 0-1 friends; user 1 visits POI 2 which user 0 hasn't seen.
        let pois = (0..4)
            .map(|j| Poi {
                location: GeoPoint::new(j as f64 * 0.1, 0.0),
                category: Category::Food,
            })
            .collect();
        let mk = |user, poi| CheckIn {
            user,
            poi,
            month: 0,
            week: 0,
            hour: 0,
        };
        let checkins = vec![mk(0, 0), mk(1, 0), mk(1, 2), mk(2, 3)];
        let data = Dataset {
            name: "t".into(),
            n_users: 3,
            pois,
            checkins: checkins.clone(),
            social: SocialGraph::from_edges(3, vec![(0, 1)]),
        };
        (data, checkins)
    }

    #[test]
    fn friend_pois_outscore_stranger_pois() {
        let (data, train) = mk_data();
        let m = Lfbca::fit(&data, &train, &LfbcaConfig::default());
        // For user 0: POI 2 (friend-visited) must beat POI 3 (stranger's).
        assert!(
            m.score(0, 2, 0) > m.score(0, 3, 0),
            "friend POI {} vs stranger POI {}",
            m.score(0, 2, 0),
            m.score(0, 3, 0)
        );
        // Own visited POI scores highest.
        assert!(m.score(0, 0, 0) > m.score(0, 2, 0));
    }

    #[test]
    fn time_is_ignored() {
        let (data, train) = mk_data();
        let m = Lfbca::fit(&data, &train, &LfbcaConfig::default());
        assert_eq!(m.score(0, 1, 0), m.score(0, 1, 7));
    }

    #[test]
    fn user_with_no_history_or_friends_scores_zero() {
        let (data, mut train) = mk_data();
        train.retain(|c| c.user != 2);
        let m = Lfbca::fit(&data, &train, &LfbcaConfig::default());
        // User 2 has no check-ins and no friends: BCA mass stays on
        // themself, who visited nothing.
        for j in 0..4 {
            assert_eq!(m.score(2, j, 0), 0.0);
        }
    }
}
