//! CP (CANDECOMP/PARAFAC) tensor completion (paper Eq 1).
//!
//! Rank-`r` CP with random initialization, trained by Adam on the squared
//! error over observed entries plus per-epoch sampled negatives (implicit
//! feedback needs negatives: observed-only least squares on an all-ones
//! tensor has the trivial constant solution). Gradients are analytic.

use crate::common::sample_negative;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_linalg::Matrix;
use tcss_sparse::SparseTensor3;

/// Configuration shared by the CP and Tucker baselines.
#[derive(Debug, Clone)]
pub struct CpConfig {
    /// Tensor rank.
    pub rank: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization on the factors.
    pub reg: f64,
    /// Sampled negatives per positive per epoch.
    pub negatives_per_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CpConfig {
    fn default() -> Self {
        CpConfig {
            rank: 10,
            epochs: 60,
            learning_rate: 0.02,
            reg: 1e-4,
            negatives_per_positive: 2,
            seed: 5,
        }
    }
}

/// A fitted CP model: three factor matrices.
pub struct CpModel {
    u1: Matrix,
    u2: Matrix,
    u3: Matrix,
}

/// Minimal Adam over a flat slice (shared by the multilinear baselines).
pub(crate) struct FlatAdam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl FlatAdam {
    pub(crate) fn new(n: usize) -> Self {
        FlatAdam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    pub(crate) fn step(&mut self, w: &mut [f64], g: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g[i] * g[i];
            w[i] -= lr * (self.m[i] / bc1) / ((self.v[i] / bc2).sqrt() + 1e-8);
        }
    }
}

impl CpModel {
    /// Fit CP on the training tensor.
    pub fn fit(data: &Dataset, train: &[CheckIn], g: Granularity, cfg: &CpConfig) -> Self {
        let tensor = data.tensor_from(train, g);
        Self::fit_tensor(&tensor, cfg)
    }

    /// Fit CP directly on a sparse tensor.
    pub fn fit_tensor(tensor: &SparseTensor3, cfg: &CpConfig) -> Self {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let r = cfg.rank;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let s = 1.0 / (r as f64).sqrt();
        let mut u1 = Matrix::random_uniform(i_dim, r, s, &mut rng);
        let mut u2 = Matrix::random_uniform(j_dim, r, s, &mut rng);
        let mut u3 = Matrix::random_uniform(k_dim, r, s, &mut rng);
        let mut adam1 = FlatAdam::new(i_dim * r);
        let mut adam2 = FlatAdam::new(j_dim * r);
        let mut adam3 = FlatAdam::new(k_dim * r);
        let mut g1 = vec![0.0; i_dim * r];
        let mut g2 = vec![0.0; j_dim * r];
        let mut g3 = vec![0.0; k_dim * r];
        for _epoch in 0..cfg.epochs {
            g1.iter_mut().for_each(|v| *v = 0.0);
            g2.iter_mut().for_each(|v| *v = 0.0);
            g3.iter_mut().for_each(|v| *v = 0.0);
            let accumulate = |i: usize,
                              j: usize,
                              k: usize,
                              target: f64,
                              u1: &Matrix,
                              u2: &Matrix,
                              u3: &Matrix,
                              g1: &mut [f64],
                              g2: &mut [f64],
                              g3: &mut [f64]| {
                let (a, b, c) = (u1.row(i), u2.row(j), u3.row(k));
                let pred: f64 = (0..r).map(|t| a[t] * b[t] * c[t]).sum();
                let e = 2.0 * (pred - target);
                for t in 0..r {
                    g1[i * r + t] += e * b[t] * c[t];
                    g2[j * r + t] += e * a[t] * c[t];
                    g3[k * r + t] += e * a[t] * b[t];
                }
            };
            for e in tensor.entries() {
                accumulate(
                    e.i, e.j, e.k, e.value, &u1, &u2, &u3, &mut g1, &mut g2, &mut g3,
                );
                for _ in 0..cfg.negatives_per_positive {
                    let (ni, nj, nk) = sample_negative(tensor, &mut rng);
                    accumulate(ni, nj, nk, 0.0, &u1, &u2, &u3, &mut g1, &mut g2, &mut g3);
                }
            }
            // L2 regularization.
            for (g, w) in [(&mut g1, &u1), (&mut g2, &u2), (&mut g3, &u3)] {
                for (gv, &wv) in g.iter_mut().zip(w.as_slice()) {
                    *gv += 2.0 * cfg.reg * wv;
                }
            }
            adam1.step(u1.as_mut_slice(), &g1, cfg.learning_rate);
            adam2.step(u2.as_mut_slice(), &g2, cfg.learning_rate);
            adam3.step(u3.as_mut_slice(), &g3, cfg.learning_rate);
        }
        CpModel { u1, u2, u3 }
    }

    /// Predicted score (Eq 1).
    pub fn score(&self, i: usize, j: usize, k: usize) -> f64 {
        let (a, b, c) = (self.u1.row(i), self.u2.row(j), self.u3.row(k));
        (0..a.len()).map(|t| a[t] * b[t] * c[t]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A planted rank-1 tensor: X = u ⊗ v ⊗ w with binary pattern.
    fn planted_tensor() -> SparseTensor3 {
        let mut entries = Vec::new();
        for i in 0..6usize {
            for j in 0..6usize {
                for k in 0..4usize {
                    if i % 2 == 0 && j % 2 == 0 && k % 2 == 0 {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        SparseTensor3::from_entries((6, 6, 4), entries).unwrap()
    }

    #[test]
    fn learns_planted_pattern() {
        let t = planted_tensor();
        let cfg = CpConfig {
            rank: 3,
            epochs: 150,
            ..Default::default()
        };
        let m = CpModel::fit_tensor(&t, &cfg);
        // In-pattern cells must clearly outscore out-of-pattern cells.
        let on = m.score(0, 0, 0);
        let off = m.score(1, 1, 1);
        assert!(on > 0.5, "on-pattern score {on}");
        assert!(on > off + 0.3, "on {on} vs off {off}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = planted_tensor();
        let cfg = CpConfig {
            epochs: 5,
            ..Default::default()
        };
        let a = CpModel::fit_tensor(&t, &cfg);
        let b = CpModel::fit_tensor(&t, &cfg);
        assert_eq!(a.score(0, 0, 0), b.score(0, 0, 0));
    }
}
