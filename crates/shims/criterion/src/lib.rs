//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of criterion the workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`.
//!
//! Instead of criterion's HTML reports, every finished group writes a
//! machine-readable `BENCH_<group>.json` file into the current working
//! directory (the package root under `cargo bench`) and prints a
//! one-line summary per benchmark. No statistics beyond mean/min/max are
//! computed — this is a timing harness, not an inference engine.

use std::time::Instant;

/// Re-export of the standard hint, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (subset of upstream `Criterion`).
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            results: Vec::new(),
            finished: false,
        }
    }

    /// Benchmark a single function outside any group (written to a
    /// single-entry `BENCH_<name>.json`).
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// One recorded benchmark within a group.
struct BenchRecord {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    results: Vec<BenchRecord>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut b);
        assert!(
            !b.per_iter_ns.is_empty(),
            "benchmark '{id}' never called Bencher::iter"
        );
        let n = b.per_iter_ns.len();
        let mean = b.per_iter_ns.iter().sum::<f64>() / n as f64;
        let min = b.per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.per_iter_ns.iter().cloned().fold(0.0, f64::max);
        println!(
            "{}/{:<24} time: [min {:>12.1} ns  mean {:>12.1} ns  max {:>12.1} ns]  ({} samples)",
            self.name, id, min, mean, max, n
        );
        self.results.push(BenchRecord {
            name: id,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: n,
        });
        self
    }

    /// Finish the group, writing `BENCH_<group>.json`.
    pub fn finish(mut self) {
        self.write_results();
    }

    fn write_results(&mut self) {
        if self.finished || self.results.is_empty() {
            self.finished = true;
            return;
        }
        self.finished = true;
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = format!("BENCH_{sanitized}.json");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}{}\n",
                r.name,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("criterion shim: could not write {path}: {e}");
        }
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        // Groups dropped without an explicit finish() still record.
        self.write_results();
    }
}

/// Timing handle passed to benchmark routines.
pub struct Bencher {
    sample_size: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples. Fast routines are
    /// batched so each sample spans at least ~50µs of work, keeping timer
    /// resolution out of the measurement.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + batch-size calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1);
        const TARGET_BATCH_NS: u128 = 50_000;
        let batch = ((TARGET_BATCH_NS / once_ns) as usize).clamp(1, 1_000_000);
        self.per_iter_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.per_iter_ns.push(ns);
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_writes_json() {
        let dir = std::env::temp_dir().join("criterion_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let orig = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();

        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();

        let json = std::fs::read_to_string("BENCH_shim_selftest.json").unwrap();
        std::env::set_current_dir(orig).unwrap();
        assert!(json.contains("\"group\": \"shim_selftest\""));
        assert!(json.contains("noop_sum"));
        assert!(json.contains("mean_ns"));
    }

    #[test]
    #[should_panic(expected = "never called")]
    fn missing_iter_is_an_error() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("empty");
        group.bench_function("broken", |_b| {});
    }
}
