//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: a seedable generator
//! ([`rngs::StdRng`], here xoshiro256++ seeded via SplitMix64), the
//! [`Rng`] trait with `gen_range`/`gen_bool`, and [`SeedableRng`] with
//! `seed_from_u64`.
//!
//! Streams are **not** compatible with upstream `rand` — every consumer in
//! this workspace treats seeds as opaque reproducibility handles, never as
//! cross-library contracts, so only determinism matters: a given seed
//! always produces the same stream, on every platform.

/// Uniform sampling from a range type, mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64_open(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64_closed(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64; rejecting values at
    // or above it removes the modulo bias.
    let zone = (u64::MAX / span) * span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]`.
fn unit_f64_closed<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        unit_f64_open(self) < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-seeded via SplitMix64 exactly as upstream `rand`
    /// seeds small-state generators from a `u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&f));
            let g = rng.gen_range(-0.01f64..=0.01);
            assert!((-0.01..=0.01).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_impl(&mut rng);
        assert!(v < 100);
    }
}
