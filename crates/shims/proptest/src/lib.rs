//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the slice of proptest the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`, `prop_flat_map`),
//! [`collection::vec`], the [`proptest!`] macro, [`ProptestConfig`], and
//! the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for a zero-dependency shim:
//!
//! * **No shrinking.** A failing case panics with the sampled values via
//!   the assertion message; there is no minimization pass.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name (FNV-1a), so failures reproduce exactly across
//!   runs and machines. Set `PROPTEST_SEED` to explore other streams.
//!
//! Both trade-offs keep the *property* semantics intact: every test body
//! still runs against `cases` independently sampled inputs.

pub use rand::rngs::StdRng;
use rand::Rng;
pub use rand::SeedableRng;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for property tests.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this shim collapses the two into direct sampling.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from every sampled value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a half-open
    /// range (mirrors upstream's `Into<SizeRange>` bounds).
    pub trait IntoSizeRange {
        /// Convert to a half-open `start..end` length range.
        fn into_size_range(self) -> core::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> core::ops::Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a random length.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy: length uniform in `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of a string, used to derive per-test RNG seeds.
#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Resolve the RNG seed for a test: `PROPTEST_SEED` env override, else a
/// hash of the test name.
#[doc(hidden)]
pub fn resolve_seed(test_name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| fnv1a(&v) ^ fnv1a(test_name)),
        Err(_) => fnv1a(test_name),
    }
}

/// Property-test entry macro (subset of upstream `proptest!`).
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by
/// any number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::resolve_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Property assertion (plain `assert!` in this shim — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = <super::StdRng as super::SeedableRng>::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..2.0).generate(&mut rng);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = <super::StdRng as super::SeedableRng>::seed_from_u64(2);
        let s = (2usize..5)
            .prop_flat_map(|n| super::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert!((2..5).contains(&n));
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: tuples, vec, trailing comma.
        #[test]
        fn macro_form_works(
            (a, b) in (0usize..5, 0usize..5),
            xs in crate::collection::vec(-1.0f64..1.0, 0..8),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
