//! Criterion microbenchmark behind Table IV: per-epoch cost of the three
//! L2 strategies (naive Eq 14, negative sampling, rewritten Eq 15).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcss_bench::prepare;
use tcss_core::{
    naive_whole_data_loss, negative_sampling_loss_and_grad, rewritten_loss_and_grad, TcssConfig,
    TcssTrainer,
};
use tcss_data::SynthPreset;

fn bench_loss(c: &mut Criterion) {
    let p = prepare(SynthPreset::Gowalla);
    let trainer = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig::default(),
    );
    let model = trainer.init_model();
    let mut group = c.benchmark_group("l2_loss");
    group.sample_size(10);
    group.bench_function("naive_eq14", |b| {
        b.iter(|| black_box(naive_whole_data_loss(&model, &trainer.tensor, 0.9, 0.1)))
    });
    group.bench_function("negative_sampling", |b| {
        b.iter(|| {
            black_box(negative_sampling_loss_and_grad(
                &model,
                &trainer.tensor,
                0.9,
                0.1,
                1,
            ))
        })
    });
    group.bench_function("rewritten_eq15", |b| {
        b.iter(|| {
            black_box(rewritten_loss_and_grad(
                &model,
                trainer.tensor.entries(),
                0.9,
                0.1,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
