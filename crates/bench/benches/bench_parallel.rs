//! Serial vs parallel epoch cost of the deterministic parallel engine.
//!
//! One "epoch" here is the full gradient computation of a training step:
//! the rewritten L₂ loss (Eq 15) plus the social-Hausdorff head (Eqs 9–13)
//! — exactly what `TcssTrainer::train_model` evaluates per iteration. The
//! same work runs pinned to 1 worker and pinned to 4 workers through
//! `tcss_linalg::set_num_threads`; the deterministic-reduction contract
//! guarantees both produce bit-identical gradients, so any delta is pure
//! scheduling. Results land in `BENCH_parallel_epoch.json` (mean/min/max
//! per benchmark). On a single-core host the two timings coincide — the
//! speedup column is only meaningful where the hardware has ≥4 cores.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcss_bench::prepare;
use tcss_core::{
    rewritten_loss_and_grad, HausdorffVariant, SocialHausdorffHead, TcssConfig, TcssTrainer,
};
use tcss_data::SynthPreset;
use tcss_linalg::set_num_threads;

fn bench_parallel(c: &mut Criterion) {
    let p = prepare(SynthPreset::Gowalla);
    let trainer = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig::default(),
    );
    let model = trainer.init_model();
    let head = SocialHausdorffHead::new(
        &p.data,
        &p.split.train,
        HausdorffVariant::Social,
        Default::default(),
        None,
    );
    // The expensive epoch of `train_model`: rewritten L₂ + the full head.
    let full_epoch = |threads: usize| {
        set_num_threads(Some(threads));
        let cfg = &trainer.config;
        let (l2, mut grads) =
            rewritten_loss_and_grad(&model, trainer.tensor.entries(), cfg.w_plus, cfg.w_minus);
        let l1 = head.loss_and_grad(&model, &mut grads, cfg.lambda);
        set_num_threads(None);
        (l2, l1, grads)
    };

    let mut group = c.benchmark_group("parallel_epoch");
    group.sample_size(10);
    group.bench_function("epoch_serial_1thread", |b| {
        b.iter(|| black_box(full_epoch(1)))
    });
    group.bench_function("epoch_parallel_4threads", |b| {
        b.iter(|| black_box(full_epoch(4)))
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
