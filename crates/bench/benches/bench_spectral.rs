//! Criterion microbenchmark: spectral initialization (matrix-free blocked
//! orthogonal iteration over the off-diagonal Gram operators) vs the
//! trivial initializations, on the Gowalla training tensor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcss_bench::prepare;
use tcss_core::{onehot_init, random_init, spectral_init};
use tcss_data::SynthPreset;

fn bench_spectral(c: &mut Criterion) {
    let p = prepare(SynthPreset::Gowalla);
    let tensor = p.data.tensor_from(&p.split.train, p.granularity);
    let dims = tensor.dims();
    let mut group = c.benchmark_group("initialization");
    group.sample_size(10);
    group.bench_function("spectral", |b| {
        b.iter(|| black_box(spectral_init(&tensor, 10, 1)))
    });
    group.bench_function("random", |b| b.iter(|| black_box(random_init(dims, 10, 1))));
    group.bench_function("one_hot", |b| {
        b.iter(|| black_box(onehot_init(dims, 10, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_spectral);
criterion_main!(benches);
