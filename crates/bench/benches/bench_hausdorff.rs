//! Criterion microbenchmark: one full evaluation of the social-Hausdorff
//! head (loss + gradients over all users) on the Gowalla training split.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tcss_bench::prepare;
use tcss_core::config::HausdorffVariant;
use tcss_core::{Grads, SocialHausdorffHead, TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;

fn bench_hausdorff(c: &mut Criterion) {
    let p = prepare(SynthPreset::Gowalla);
    let trainer = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig::default(),
    );
    let model = trainer.init_model();
    let head = SocialHausdorffHead::new(
        &p.data,
        &p.split.train,
        HausdorffVariant::Social,
        Default::default(),
        None,
    );
    let mut group = c.benchmark_group("social_hausdorff");
    group.sample_size(10);
    group.bench_function("loss_only", |b| b.iter(|| black_box(head.loss(&model))));
    group.bench_function("loss_and_grad", |b| {
        b.iter(|| {
            let mut grads = Grads::zeros(&model);
            black_box(head.loss_and_grad(&model, &mut grads, 0.1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hausdorff);
criterion_main!(benches);
