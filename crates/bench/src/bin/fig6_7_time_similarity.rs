//! Figures 6 & 7 — cosine-similarity heatmaps of the learned time factors.
//!
//! Fig 6: similarity between time units at month / week / hour granularity
//! (shopping category). Fig 7: month-factor similarity per POI category.
//!
//! Paper shape to reproduce: month factors form seasonal blocks (adjacent
//! months similar); weekly/hourly factors show weaker block structure; the
//! food category shows the weakest seasonal blocks.

use tcss_bench::prepare_dataset;
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::{preprocess, Category, Granularity, PreprocessConfig, SynthPreset};
use tcss_linalg::cosine_similarity_matrix;

fn train_time_factors(data: &tcss_data::Dataset, g: Granularity) -> tcss_linalg::Matrix {
    let p = prepare_dataset("slice", data.clone(), g);
    let trainer = TcssTrainer::new(&p.data, &p.split.train, g, TcssConfig::default());
    let model = trainer.train(|_, _| {});
    model.u3
}

fn print_heatmap(title: &str, m: &tcss_linalg::Matrix) {
    println!("\n{title}");
    let n = m.rows();
    // For wide matrices (week=53, hour=24) print a coarse 12-bucket view.
    let buckets = n.min(12);
    let per = n.div_ceil(buckets);
    print!("      ");
    for b in 0..buckets {
        print!("{:>6}", b * per);
    }
    println!();
    for bi in 0..buckets {
        print!("{:>5} ", bi * per);
        for bj in 0..buckets {
            // Average similarity within the bucket pair.
            let mut acc = 0.0f64;
            let mut cnt = 0.0f64;
            for i in (bi * per)..((bi + 1) * per).min(n) {
                for j in (bj * per)..((bj + 1) * per).min(n) {
                    acc += m.get(i, j);
                    cnt += 1.0;
                }
            }
            print!("{:>6.2}", acc / cnt.max(1.0));
        }
        println!();
    }
    // Block-structure score: mean |similarity| of adjacent units minus
    // non-adjacent ones (higher ⇒ stronger seasonal blocks).
    let mut adj = 0.0f64;
    let mut adj_n = 0.0f64;
    let mut far = 0.0f64;
    let mut far_n = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let circ = (i as i64 - j as i64).unsigned_abs() as usize;
            let d = circ.min(n - circ);
            if d <= n / 12 + 1 {
                adj += m.get(i, j);
                adj_n += 1.0;
            } else if d >= n / 3 {
                far += m.get(i, j);
                far_n += 1.0;
            }
        }
    }
    println!(
        "seasonal block score (adjacent − distant mean similarity): {:+.4}",
        adj / adj_n.max(1.0) - far / far_n.max(1.0)
    );
}

fn main() {
    let raw = SynthPreset::Gowalla.generate();

    println!("=== Fig 6: time-factor cosine similarity by granularity (shopping) ===");
    let shopping = preprocess(
        &raw.filter_category(Category::Shopping),
        &PreprocessConfig {
            min_checkins: 5,
            ..Default::default()
        },
    );
    for g in [Granularity::Month, Granularity::Week, Granularity::Hour] {
        let u3 = train_time_factors(&shopping, g);
        let sim = cosine_similarity_matrix(&u3);
        print_heatmap(
            &format!("--- granularity: {} (K = {}) ---", g.label(), g.len()),
            &sim,
        );
    }

    println!("\n=== Fig 7: month-factor similarity by category ===");
    for cat in Category::ALL {
        let data = preprocess(
            &raw.filter_category(cat),
            &PreprocessConfig {
                min_checkins: 5,
                ..Default::default()
            },
        );
        let u3 = train_time_factors(&data, Granularity::Month);
        let sim = cosine_similarity_matrix(&u3);
        print_heatmap(&format!("--- category: {} ---", cat.label()), &sim);
    }
}
