//! Figures 4 & 5 — Hit@10 (Fig 4) and MRR (Fig 5) per POI category
//! (shopping / entertainment / food / outdoor) and per time granularity
//! (month / week / hour), on the Gowalla preset.
//!
//! Paper shape to reproduce: TCSS beats the baselines in every category;
//! outdoor (strongly seasonal) is the easiest category and food (weakly
//! seasonal) the hardest; month granularity beats week and hour.

use tcss_bench::{prepare_dataset, run_model, run_tcss, ModelName};
use tcss_core::TcssConfig;
use tcss_data::{preprocess, synth, Category, Granularity, PreprocessConfig, SynthPreset};

fn main() {
    // A dedicated balanced variant of the Gowalla preset: equal POI counts
    // per category, so the per-category comparison isolates *seasonality*
    // (the paper's variable of interest) instead of slice size.
    let cfg = synth::SynthConfig {
        name: "gowalla-balanced".into(),
        category_weights: [0.25, 0.25, 0.25, 0.25],
        n_pois: 560,
        ..SynthPreset::Gowalla.config()
    };
    let raw = synth::generate(&cfg);
    // Compare TCSS against the strongest baselines of each family.
    let baselines = [ModelName::Cp, ModelName::PTucker, ModelName::Ncf];
    println!("=== Figs 4 & 5: per-category, per-granularity comparison (Gowalla) ===");
    for cat in Category::ALL {
        let filtered = raw.filter_category(cat);
        let data = preprocess(
            &filtered,
            &PreprocessConfig {
                min_checkins: 5, // category slices are thinner than the full set
                ..Default::default()
            },
        );
        println!(
            "\n--- category: {} ({} users, {} POIs, {} check-ins) ---",
            cat.label(),
            data.n_users,
            data.n_pois(),
            data.checkins.len()
        );
        println!(
            "{:<10} {:>18} {:>18} {:>18}",
            "Model", "month (Hit/MRR)", "week (Hit/MRR)", "hour (Hit/MRR)"
        );
        for g in [Granularity::Month, Granularity::Week, Granularity::Hour] {
            let _ = g;
        }
        let mut rows: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for m in baselines.iter().copied().chain([ModelName::Tcss]) {
            let mut cells = Vec::new();
            for g in [Granularity::Month, Granularity::Week, Granularity::Hour] {
                let p = prepare_dataset("gowalla-cat", data.clone(), g);
                let r = if m == ModelName::Tcss {
                    // Rank capped by the smallest mode (still 10 for K≥12).
                    run_tcss(&p, TcssConfig::default())
                } else {
                    run_model(m, &p)
                };
                cells.push((r.metrics.hit_at_k, r.metrics.mrr));
            }
            rows.push((m.label().to_string(), cells));
        }
        for (name, cells) in rows {
            print!("{name:<10}");
            for (hit, mrr) in cells {
                print!("   {hit:>7.4}/{mrr:<7.4}");
            }
            println!();
        }
    }
}
