//! Figure 9 — effectiveness of the spectral initialization: Hit@10 and MRR
//! along the training trajectory for spectral vs random vs one-hot
//! initialization (Gowalla preset).
//!
//! Paper shape to reproduce: the spectral start converges markedly faster
//! in the early epochs (its factors are rough estimates of the genuine
//! ones); all initializations approach similar quality with enough epochs
//! at this scale.
//!
//! Implementation note: each checkpoint retrains from scratch for `e`
//! epochs (rather than snapshotting one run) so the Adam state at every
//! measured point is exactly what an `e`-epoch training would produce.

use tcss_bench::prepare;
use tcss_core::{InitMethod, TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;
use tcss_eval::evaluate_ranking;

fn main() {
    let p = prepare(SynthPreset::Gowalla);
    let checkpoints = [1usize, 3, 5, 10, 15, 25, 40, 60, 100, 150, 250];
    println!("=== Fig 9: convergence by initialization (Gowalla) ===");
    for (name, init) in [
        ("spectral", InitMethod::Spectral),
        ("random", InitMethod::Random),
        ("one-hot", InitMethod::OneHot),
    ] {
        println!("\n--- init: {name} ---");
        println!("{:>6} {:>8} {:>8}", "epoch", "Hit@10", "MRR");
        for &cp in &checkpoints {
            let cfg = TcssConfig {
                init,
                epochs: cp,
                // The social head's contribution is orthogonal to the init
                // comparison and dominates runtime; skip it here (the paper
                // compares convergence of the same objective across inits).
                lambda: 0.0,
                ..Default::default()
            };
            let t = TcssTrainer::new(&p.data, &p.split.train, p.granularity, cfg);
            let m = t.train(|_, _| {});
            let metrics = evaluate_ranking(&p.split.test, p.data.n_pois(), &p.eval, |i, j, k| {
                m.predict(i, j, k)
            });
            println!("{:>6} {:>8.4} {:>8.4}", cp, metrics.hit_at_k, metrics.mrr);
        }
    }
}
