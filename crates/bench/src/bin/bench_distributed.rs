//! Distributed-training throughput benchmark.
//!
//! Trains one compute-heavy fixture (dense-ish tensor, rank 16, λ = 0 —
//! the entry-chunk kernels dominate) under every scheduling configuration:
//! single-process at 1/2/4 threads, 1/2/4 worker processes at 1/2 threads
//! each under both the plain protocol and tail sharding (owner-computes
//! Adam, `shard_*` labels), plus a `shard_w4_t2_serial` twin with the
//! coordinator-tail overlap disabled. Emits `BENCH_distributed.json` into
//! the current directory.
//!
//! Two timings are reported per configuration:
//!
//! * `wall_ms_per_epoch` — measured end-to-end wall clock.
//! * `critical_path_ms_per_epoch` — coordinator-serial time plus the
//!   **slowest single worker's** compute time:
//!   `(wall − Σ_w busy_w)/E + max_w(busy_w)/E`, from the per-step
//!   `busy_ns` every worker reports in its Deltas message. On a host with
//!   at least as many CPUs as the fleet the two converge; on a smaller
//!   host (CI containers are often 1-CPU, where the OS time-slices the
//!   fleet and wall clock cannot show parallel speedup) the critical path
//!   is what an adequately provisioned host would see.
//!
//! `speedup_method` in the JSON names which timing backs
//! `speedup_vs_best_single`: `"wall_clock"` when the host has enough CPUs
//! for the largest fleet, `"critical_path"` otherwise. Either way the
//! numbers are measured — never extrapolated from a model.
//!
//! Each configuration runs `trials` times and the trial with the
//! **median** critical path is reported. Training is bit-deterministic,
//! so trials differ only by scheduler noise, which lives almost entirely
//! in the wall term (`busy_ns` is process CPU time and nearly
//! noise-free): background load inflates the recovered coordinator
//! share one trial and leaves the next alone. The median rejects those
//! spikes while still reporting an actually-measured trial — a mean
//! would smear them in, and a min systematically favours whatever
//! residual bias deflates the estimate. The digest assert covers every
//! trial of every configuration.
//!
//! `--smoke` (or `TCSS_BENCH_SMOKE=1`) shrinks the fixture so CI can
//! validate the JSON shape in seconds.
//!
//! This binary is its own worker program: the coordinator re-invokes it
//! with the hidden `dist-worker --socket <path> --worker <id>` argv.

use std::path::PathBuf;
use std::time::Instant;

use tcss_core::dist::DistConfig;
use tcss_core::{InitMethod, LossStrategy, TcssConfig, TcssTrainer};
use tcss_sparse::SparseTensor3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("dist-worker") {
        return run_worker_role(&args[1..]);
    }
    let smoke = args.iter().any(|a| a == "--smoke") || std::env::var("TCSS_BENCH_SMOKE").is_ok();
    run_bench(smoke);
}

fn run_worker_role(args: &[String]) {
    let mut socket: Option<PathBuf> = None;
    let mut worker: Option<u32> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--socket", Some(v)) => socket = Some(PathBuf::from(v)),
            ("--worker", Some(v)) => worker = v.parse().ok(),
            _ => {}
        }
    }
    let (socket, worker) = (socket.expect("--socket"), worker.expect("--worker"));
    if let Err(e) = tcss_core::dist::run_worker(&socket, worker) {
        eprintln!("bench dist-worker[{worker}]: {e}");
        std::process::exit(1);
    }
}

/// A dense-ish synthetic tensor whose per-epoch cost is dominated by the
/// sharded entry-chunk kernels, not the coordinator-serial Gram tail.
fn fixture(smoke: bool) -> (SparseTensor3, TcssConfig) {
    // Small J/K saturate the U²/U³ delta rows (many entries per touched
    // row), and the sorted COO layout keeps each chunk's U¹ row set
    // narrow — so per-chunk compute dominates per-chunk wire bytes.
    // Delta traffic per chunk grows with (J + K)·r while compute per
    // chunk grows with r alone, so the fixture keeps J/K at the rank
    // floor to stay compute-bound.
    let (i_dim, j_dim, k_dim, nnz, rank, epochs) = if smoke {
        (64, 24, 8, 3_000, 8, 3)
    } else {
        (2400, 16, 16, 300_000, 16, 17)
    };
    // Deterministic pseudo-random fill (splitmix-style mixing).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let entries = (0..nnz).map(move |_| {
        (
            (next() % i_dim as u64) as usize,
            (next() % j_dim as u64) as usize,
            (next() % k_dim as u64) as usize,
            1.0,
        )
    });
    let tensor = SparseTensor3::from_entries((i_dim, j_dim, k_dim), entries)
        .expect("fixture entries in bounds");
    let cfg = TcssConfig {
        rank,
        epochs,
        seed: 2022,
        loss: LossStrategy::WholeDataRewritten,
        lambda: 0.0,
        hausdorff: tcss_core::HausdorffVariant::None,
        init: InitMethod::Random,
        checkpoint_every: epochs,
        num_threads: Some(1),
        ..TcssConfig::default()
    };
    (tensor, cfg)
}

struct ConfigResult {
    label: String,
    workers: usize,
    threads: usize,
    tail_shard: bool,
    overlap: bool,
    wall_ms_per_epoch: f64,
    critical_path_ms_per_epoch: f64,
    bytes_sent_per_epoch: u64,
    bytes_received_per_epoch: u64,
    model_digest: u64,
}

/// Steady-state per-epoch wall clock: the span between the first and the
/// last per-epoch callback, over `E − 1` epochs. Excludes one-time costs
/// (process spawn, tensor shipping, first-epoch warmup) that per-run
/// division would smear into every epoch.
struct EpochClock {
    first: Option<Instant>,
    last: Option<Instant>,
    epochs: u32,
}

impl EpochClock {
    fn new() -> Self {
        EpochClock {
            first: None,
            last: None,
            epochs: 0,
        }
    }

    fn tick(&mut self) {
        let now = Instant::now();
        self.first.get_or_insert(now);
        self.last = Some(now);
        self.epochs += 1;
    }

    fn steady_ms_per_epoch(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if self.epochs > 1 => {
                (b - a).as_secs_f64() * 1e3 / (self.epochs - 1) as f64
            }
            _ => f64::NAN,
        }
    }
}

fn digest_model(m: &tcss_core::TcssModel) -> u64 {
    let mut bytes = Vec::new();
    for v in
        m.u1.as_slice()
            .iter()
            .chain(m.u2.as_slice())
            .chain(m.u3.as_slice())
            .chain(&m.h)
    {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    tcss_core::digest::fnv1a64(&bytes)
}

fn run_bench(smoke: bool) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (tensor, cfg) = fixture(smoke);
    let epochs = cfg.epochs as f64;
    // Median-of-N: see the module doc for why not best-of-N.
    let trials: usize = if smoke { 1 } else { 7 };
    eprintln!(
        "fixture: dims {:?}, nnz {}, rank {}, {} epochs; host_cpus {host_cpus}, {trials} trial(s)",
        tensor.dims(),
        tensor.entries().len(),
        cfg.rank,
        cfg.epochs
    );

    let exe = std::env::current_exe().expect("own executable path");
    let mut results: Vec<ConfigResult> = Vec::new();

    // The median trial by critical path; asserts all trials agree bitwise.
    fn median_trial(mut trials: Vec<ConfigResult>) -> ConfigResult {
        let digest = trials[0].model_digest;
        for t in &trials {
            assert_eq!(t.model_digest, digest, "{} trials diverged", t.label);
        }
        trials.sort_by(|a, b| {
            a.critical_path_ms_per_epoch
                .total_cmp(&b.critical_path_ms_per_epoch)
        });
        trials.swap_remove(trials.len() / 2)
    }

    // Single-process baselines at 1/2/4 threads.
    for threads in [1usize, 2, 4] {
        let samples: Vec<ConfigResult> = (0..trials)
            .map(|_| {
                let mut c = cfg.clone();
                c.num_threads = Some(threads);
                let trainer = TcssTrainer::from_tensor(tensor.clone(), c);
                let mut clock = EpochClock::new();
                let report = trainer
                    .train_with_checkpoints(|_| clock.tick())
                    .expect("baseline trains");
                let wall = clock.steady_ms_per_epoch();
                ConfigResult {
                    label: format!("single_t{threads}"),
                    workers: 0,
                    threads,
                    tail_shard: false,
                    overlap: false,
                    wall_ms_per_epoch: wall,
                    // One address space: the chunk grid is the critical path.
                    critical_path_ms_per_epoch: wall,
                    bytes_sent_per_epoch: 0,
                    bytes_received_per_epoch: 0,
                    model_digest: digest_model(&report.model),
                }
            })
            .collect();
        let median = median_trial(samples);
        eprintln!(
            "single t{threads}: {:.1} ms/epoch",
            median.wall_ms_per_epoch
        );
        results.push(median);
    }

    // One distributed configuration, either protocol: median of `trials`.
    let run_dist = |label: String, workers: usize, threads: usize, tail_shard, overlap| {
        let run_once = || {
            let mut c = cfg.clone();
            c.workers = Some(workers);
            let trainer = TcssTrainer::from_tensor(tensor.clone(), c);
            let dist = DistConfig {
                worker_threads: Some(threads),
                worker_args: vec!["dist-worker".into()],
                tail_shard,
                overlap,
                ..DistConfig::new(workers, exe.clone())
            };
            let mut clock = EpochClock::new();
            let report = trainer
                .train_distributed(&dist, |_| clock.tick())
                .expect("distributed run trains");
            let wall = clock.steady_ms_per_epoch();
            // Worker compute is uniform across epochs, so the cumulative
            // busy figures divide cleanly.
            let busy_ms: Vec<f64> = report
                .worker_busy_ns
                .iter()
                .map(|&ns| ns as f64 / 1e6 / epochs)
                .collect();
            let busy_sum: f64 = busy_ms.iter().sum();
            let busy_max = busy_ms.iter().cloned().fold(0.0, f64::max);
            // Coordinator-serial share + the slowest worker's share.
            let critical = (wall - busy_sum).max(0.0) + busy_max;
            let dispatched = report.epochs_dispatched.max(1);
            let sent = report.bytes_sent / dispatched;
            let received = report.bytes_received / dispatched;
            ConfigResult {
                label: label.clone(),
                workers,
                threads,
                tail_shard,
                overlap,
                wall_ms_per_epoch: wall,
                critical_path_ms_per_epoch: critical,
                bytes_sent_per_epoch: sent,
                bytes_received_per_epoch: received,
                model_digest: digest_model(&report.report.model),
            }
        };
        let median = median_trial((0..trials).map(|_| run_once()).collect());
        eprintln!(
            "{label}: wall {:.1} ms/epoch, critical path {:.1} ms/epoch, {}+{} B/epoch",
            median.wall_ms_per_epoch,
            median.critical_path_ms_per_epoch,
            median.bytes_sent_per_epoch,
            median.bytes_received_per_epoch
        );
        median
    };

    // Plain protocol: 1/2/4 workers × 1/2 threads each.
    for workers in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            results.push(run_dist(
                format!("dist_w{workers}_t{threads}"),
                workers,
                threads,
                false,
                false,
            ));
        }
    }

    // Tail-sharded protocol (owner-computes Adam), same grid.
    for workers in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            results.push(run_dist(
                format!("shard_w{workers}_t{threads}"),
                workers,
                threads,
                true,
                true,
            ));
        }
    }

    // The overlap on/off pair: shard_w4_t2 above overlaps the coordinator
    // tail with worker compute; this twin serialises it after the relay.
    results.push(run_dist("shard_w4_t2_serial".into(), 4, 2, true, false));

    // Every configuration must land on the same model bits — a benchmark
    // of diverging runs would be meaningless.
    let want = results[0].model_digest;
    for r in &results {
        assert_eq!(
            r.model_digest, want,
            "{} diverged from the single-process model",
            r.label
        );
    }

    let best_single = results
        .iter()
        .filter(|r| r.workers == 0)
        .map(|r| r.wall_ms_per_epoch)
        .fold(f64::INFINITY, f64::min);
    // The largest fleet footprint benchmarked: 4 workers × 2 threads,
    // plus the coordinator.
    let needed_cpus = 4 * 2 + 1;
    let method = if host_cpus >= needed_cpus {
        "wall_clock"
    } else {
        "critical_path"
    };
    let best_w4 = results
        .iter()
        .filter(|r| r.workers == 4)
        .map(|r| match method {
            "wall_clock" => r.wall_ms_per_epoch,
            _ => r.critical_path_ms_per_epoch,
        })
        .fold(f64::INFINITY, f64::min);
    let speedup = best_single / best_w4;
    eprintln!("speedup at 4 workers vs best single-process ({method}): {speedup:.2}x");

    // What tail sharding buys at 4 workers: best plain vs best sharded
    // critical path (the serial Adam tail is exactly what it removes).
    let crit_w4 = |shard: bool| {
        results
            .iter()
            .filter(|r| r.workers == 4 && r.tail_shard == shard)
            .map(|r| r.critical_path_ms_per_epoch)
            .fold(f64::INFINITY, f64::min)
    };
    let (plain_w4, shard_w4) = (crit_w4(false), crit_w4(true));
    let shard_speedup = plain_w4 / shard_w4;
    eprintln!(
        "tail-shard critical path at 4 workers: plain {plain_w4:.2} ms -> sharded {shard_w4:.2} ms \
         ({shard_speedup:.2}x)"
    );

    // The 4-worker critical path the plain protocol committed before tail
    // sharding existed (PR 9's BENCH_distributed.json, dist_w4_t1, measured
    // on this same host class). The in-file plain configs re-measure that
    // protocol under today's tighter estimator (CPU-time busy clock,
    // median-of-N trials), so this constant is the honest before/after
    // anchor for the sharding work as a whole.
    let pr9_w4 = 7.179_f64;
    let speedup_vs_pr9 = if smoke { f64::NAN } else { pr9_w4 / shard_w4 };
    if !smoke {
        eprintln!(
            "sharded w4 critical path vs PR 9 committed baseline ({pr9_w4:.3} ms): \
             {speedup_vs_pr9:.2}x"
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str(&format!("  \"speedup_method\": \"{method}\",\n"));
    json.push_str(&format!("  \"speedup_vs_best_single\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"best_single_ms_per_epoch\": {best_single:.3},\n"
    ));
    json.push_str(&format!(
        "  \"plain_w4_critical_path_ms\": {plain_w4:.3},\n"
    ));
    json.push_str(&format!(
        "  \"shard_w4_critical_path_ms\": {shard_w4:.3},\n"
    ));
    json.push_str(&format!(
        "  \"tail_shard_speedup_at_w4\": {shard_speedup:.3},\n"
    ));
    if !smoke {
        json.push_str(&format!("  \"pr9_w4_critical_path_ms\": {pr9_w4:.3},\n"));
        json.push_str(&format!(
            "  \"shard_w4_speedup_vs_pr9\": {speedup_vs_pr9:.3},\n"
        ));
    }
    json.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"workers\": {}, \"threads\": {}, \
             \"tail_shard\": {}, \"overlap\": {}, \
             \"wall_ms_per_epoch\": {:.3}, \"critical_path_ms_per_epoch\": {:.3}, \
             \"bytes_sent_per_epoch\": {}, \"bytes_received_per_epoch\": {}}}{sep}\n",
            r.label,
            r.workers,
            r.threads,
            r.tail_shard,
            r.overlap,
            r.wall_ms_per_epoch,
            r.critical_path_ms_per_epoch,
            r.bytes_sent_per_epoch,
            r.bytes_received_per_epoch,
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_distributed.json", json).expect("write BENCH_distributed.json");
    println!("wrote BENCH_distributed.json");
}
