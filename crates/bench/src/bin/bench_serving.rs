//! Serving-layer benchmark: batched scoring + version-keyed caches
//! against the per-request `scores_for` + full-sort baseline.
//!
//! Emits `BENCH_serving.json` into the current directory. For each thread
//! count (1/2/4) and batch size (1/32/256) it reports requests/sec for
//! three request paths over the same request stream:
//!
//! * `baseline_rps` — per-request `TcssModel::recommend_full_sort` (one
//!   `scores_for` + one stable full sort per request; the pre-serving-layer
//!   path). Independent of batch size; repeated per row for easy reading.
//! * `cold_rps` — a fresh `ServingEngine` per measurement pass, every
//!   request a distinct `(user, time)` pair, so every weight vector and
//!   top-n list is computed (batching + partial selection win only).
//! * `warm_rps` — the engine pre-warmed on the working set, so every
//!   request is a version-valid top-n cache hit.
//!
//! Before timing anything, the harness asserts the serving contract at
//! every thread count: each `score_batch` row must be **bitwise** equal to
//! `scores_for` for that request (the run aborts otherwise), and the
//! result is recorded as `"parity_bitwise"` in the JSON.
//!
//! `TCSS_BENCH_SMOKE=1` shrinks the fixture to CI-smoke sizes: the run
//! finishes in seconds and only the JSON shape is meaningful.

use std::time::Instant;

use tcss_core::{random_init, TcssModel};
use tcss_linalg::set_num_threads;
use tcss_serve::{ScoreRequest, ServingEngine};

const TOP_N: usize = 10;
const THREADS: [usize; 3] = [1, 2, 4];
const BATCH_SIZES: [usize; 3] = [1, 32, 256];
/// Timing passes per measurement; the fastest pass is reported, which is
/// the usual way to suppress scheduler noise in throughput benchmarks.
const PASSES: usize = 3;

struct Fixture {
    name: String,
    model: TcssModel,
    /// Every `(user, time)` pair exactly once, in stride-scrambled order
    /// so consecutive requests touch different users.
    all_pairs: Vec<ScoreRequest>,
    /// The warm working set: the prefix of `all_pairs` that warm-path
    /// requests cycle through.
    working_set: usize,
    /// Requests per timing pass.
    n_requests: usize,
}

fn fixture(smoke: bool) -> Fixture {
    let (dims, rank) = if smoke {
        ((30usize, 120usize, 6usize), 4usize)
    } else {
        ((600, 3000, 12), 10)
    };
    let (u1, u2, u3) = random_init(dims, rank, 2026);
    let model = TcssModel::new(u1, u2, u3);
    let unique = dims.0 * dims.2;
    // Stride 97 is coprime to every fixture's pair count, so this visits
    // each pair exactly once while scattering users/times.
    assert_eq!(gcd(97, unique), 1, "stride must stay coprime to the grid");
    let all_pairs: Vec<ScoreRequest> = (0..unique)
        .map(|p| {
            let q = (p * 97) % unique;
            ScoreRequest {
                user: q / dims.2,
                time: q % dims.2,
            }
        })
        .collect();
    Fixture {
        name: format!(
            "synth-{}x{}x{}-r{rank}{}",
            dims.0,
            dims.1,
            dims.2,
            if smoke { "-smoke" } else { "" }
        ),
        model,
        all_pairs,
        working_set: if smoke { 64 } else { 512 },
        n_requests: if smoke { 256 } else { 2048 },
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Requests/sec for the fastest of `PASSES` runs of `pass`, where each
/// pass serves `requests` requests and `setup` builds its input.
fn best_rps<S>(requests: usize, mut setup: impl FnMut() -> S, mut pass: impl FnMut(&mut S)) -> f64 {
    let mut best_ns = u64::MAX;
    for _ in 0..PASSES {
        let mut state = setup();
        let t = Instant::now();
        pass(&mut state);
        best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
    }
    requests as f64 * 1e9 / best_ns.max(1) as f64
}

/// Bitwise parity: every `score_batch` row equals `scores_for`, at the
/// given thread count, on a cold and a warm cache. Aborts on mismatch —
/// a serving layer that returns different numbers is not worth timing.
fn assert_parity(fx: &Fixture, threads: usize) {
    set_num_threads(Some(threads));
    let sample = &fx.all_pairs[..fx.working_set.min(fx.all_pairs.len())];
    let engine = ServingEngine::new(fx.model.clone());
    for round in 0..2 {
        let batch = engine.score_batch(sample).expect("in-range requests");
        for (b, q) in sample.iter().enumerate() {
            let want = fx.model.scores_for(q.user, q.time);
            let got = batch.scores.row(b);
            assert_eq!(got.len(), want.len());
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "parity violation: request {b} poi {j} at {threads} threads (round {round})"
                );
            }
        }
    }
}

struct Row {
    threads: usize,
    batch: usize,
    baseline_rps: f64,
    cold_rps: f64,
    warm_rps: f64,
}

fn main() {
    let smoke = std::env::var("TCSS_BENCH_SMOKE").is_ok();
    let fx = fixture(smoke);
    let (i_dim, j_dim, k_dim) = fx.model.dims();
    println!(
        "serving fixture: {} users × {} POIs × {} slots, rank {}, \
         {} unique pairs, working set {}, {} requests/pass",
        i_dim,
        j_dim,
        k_dim,
        fx.model.h.len(),
        fx.all_pairs.len(),
        fx.working_set,
        fx.n_requests
    );

    for t in THREADS {
        assert_parity(&fx, t);
    }
    println!("parity: batched scores bitwise equal to scores_for at 1/2/4 threads");

    let working = &fx.all_pairs[..fx.working_set.min(fx.all_pairs.len())];
    // Cold passes must never repeat a pair, or they stop being cold.
    let cold_requests = fx.n_requests.min(fx.all_pairs.len());

    let mut rows: Vec<Row> = Vec::new();
    let mut warm_hit_rate = 0.0;
    for threads in THREADS {
        set_num_threads(Some(threads));

        // Baseline: one scores_for + full sort per request, same stream
        // the warm path serves. Batch-size independent.
        let baseline_rps = best_rps(
            fx.n_requests,
            || (),
            |_| {
                for r in 0..fx.n_requests {
                    let q = working[r % working.len()];
                    std::hint::black_box(fx.model.recommend_full_sort(q.user, q.time, TOP_N));
                }
            },
        );

        for batch in BATCH_SIZES {
            let cold_rps = best_rps(
                cold_requests,
                || ServingEngine::new(fx.model.clone()),
                |engine| {
                    for chunk in fx.all_pairs[..cold_requests].chunks(batch) {
                        std::hint::black_box(
                            engine.recommend_batch(chunk, TOP_N).expect("in range"),
                        );
                    }
                },
            );

            let warm_rps = best_rps(
                fx.n_requests,
                || {
                    let engine = ServingEngine::new(fx.model.clone());
                    engine.recommend_batch(working, TOP_N).expect("in range");
                    let stream: Vec<ScoreRequest> = (0..fx.n_requests)
                        .map(|r| working[r % working.len()])
                        .collect();
                    (engine, stream)
                },
                |(engine, stream)| {
                    for chunk in stream.chunks(batch) {
                        std::hint::black_box(
                            engine.recommend_batch(chunk, TOP_N).expect("in range"),
                        );
                    }
                    warm_hit_rate = engine.metrics().topn_hit_rate();
                },
            );

            println!(
                "t{threads} b{batch:<3}  baseline {baseline_rps:>10.0} req/s   \
                 cold {cold_rps:>10.0} ({:>5.2}x)   warm {warm_rps:>10.0} ({:>5.2}x)",
                cold_rps / baseline_rps,
                warm_rps / baseline_rps
            );
            rows.push(Row {
                threads,
                batch,
                baseline_rps,
                cold_rps,
                warm_rps,
            });
        }
    }
    set_num_threads(None);
    println!("warm top-n cache hit rate (last run): {warm_hit_rate:.4}");

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"serving\",\n");
    json.push_str(&format!("  \"fixture\": \"{}\",\n", fx.name));
    json.push_str(&format!(
        "  \"top_n\": {TOP_N},\n  \"working_set\": {},\n  \
         \"requests_per_pass\": {},\n  \"cold_requests_per_pass\": {cold_requests},\n  \
         \"parity_bitwise\": true,\n  \"warm_topn_hit_rate\": {warm_hit_rate:.4},\n",
        working.len(),
        fx.n_requests
    ));
    json.push_str("  \"throughput\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"batch\": {}, \"baseline_rps\": {:.1}, \
             \"cold_rps\": {:.1}, \"warm_rps\": {:.1}, \
             \"cold_speedup\": {:.3}, \"warm_speedup\": {:.3}}}{sep}\n",
            r.threads,
            r.batch,
            r.baseline_rps,
            r.cold_rps,
            r.warm_rps,
            r.cold_rps / r.baseline_rps,
            r.warm_rps / r.baseline_rps
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serving.json", json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");
}
