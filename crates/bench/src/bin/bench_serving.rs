//! Serving-layer benchmark: batched scoring + version-keyed caches
//! against the per-request `scores_for` + full-sort baseline.
//!
//! Emits `BENCH_serving.json` into the current directory. For each thread
//! count (1/2/4) and batch size (1/32/256) it reports requests/sec for
//! three request paths over the same request stream:
//!
//! * `baseline_rps` — per-request `TcssModel::recommend_full_sort` (one
//!   `scores_for` + one stable full sort per request; the pre-serving-layer
//!   path). Independent of batch size; repeated per row for easy reading.
//! * `cold_rps` — a fresh `ServingEngine` per measurement pass, every
//!   request a distinct `(user, time)` pair, so every weight vector and
//!   top-n list is computed (batching + partial selection win only).
//! * `warm_rps` — the engine pre-warmed on the working set, so every
//!   request is a version-valid top-n cache hit.
//!
//! Before timing anything, the harness asserts the serving contract at
//! every thread count: each `score_batch` row must be **bitwise** equal to
//! `scores_for` for that request (the run aborts otherwise), and the
//! result is recorded as `"parity_bitwise"` in the JSON.
//!
//! The run then measures the **compact snapshot** path (DESIGN.md §5h)
//! for both quantization modes: payload bytes against the f64 model's
//! `num_params × 8` budget (the ≤ 55 % acceptance gate), per-user bytes,
//! cold-start time of the full-verify `open` and the O(1) `open_fast`
//! against a `load_model` parse of the same model, measured top-10
//! agreement against f64 `scores_for` over the working set, and peak RSS
//! (`VmHWM` from `/proc/self/status`, reset between phases via
//! `/proc/self/clear_refs`) while serving the same request stream from
//! the f64 engine and from each mmapped snapshot.
//!
//! `TCSS_BENCH_SMOKE=1` shrinks the fixture to CI-smoke sizes: the run
//! finishes in seconds and only the JSON shape is meaningful.

use std::path::Path;
use std::time::Instant;

use tcss_core::{load_model, random_init, save_model, TcssModel};
use tcss_linalg::set_num_threads;
use tcss_serve::snapshot::{write_snapshot, SnapshotModel};
use tcss_serve::{QuantMode, ScoreRequest, ServingEngine};

const TOP_N: usize = 10;
const THREADS: [usize; 3] = [1, 2, 4];
const BATCH_SIZES: [usize; 3] = [1, 32, 256];
/// Timing passes per measurement; the fastest pass is reported, which is
/// the usual way to suppress scheduler noise in throughput benchmarks.
const PASSES: usize = 3;

struct Fixture {
    name: String,
    model: TcssModel,
    /// Every `(user, time)` pair exactly once, in stride-scrambled order
    /// so consecutive requests touch different users.
    all_pairs: Vec<ScoreRequest>,
    /// The warm working set: the prefix of `all_pairs` that warm-path
    /// requests cycle through.
    working_set: usize,
    /// Requests per timing pass.
    n_requests: usize,
}

fn fixture(smoke: bool) -> Fixture {
    let (dims, rank) = if smoke {
        ((30usize, 120usize, 6usize), 4usize)
    } else {
        ((600, 3000, 12), 10)
    };
    let (u1, u2, u3) = random_init(dims, rank, 2026);
    let model = TcssModel::new(u1, u2, u3);
    let unique = dims.0 * dims.2;
    // Stride 97 is coprime to every fixture's pair count, so this visits
    // each pair exactly once while scattering users/times.
    assert_eq!(gcd(97, unique), 1, "stride must stay coprime to the grid");
    let all_pairs: Vec<ScoreRequest> = (0..unique)
        .map(|p| {
            let q = (p * 97) % unique;
            ScoreRequest {
                user: q / dims.2,
                time: q % dims.2,
            }
        })
        .collect();
    Fixture {
        name: format!(
            "synth-{}x{}x{}-r{rank}{}",
            dims.0,
            dims.1,
            dims.2,
            if smoke { "-smoke" } else { "" }
        ),
        model,
        all_pairs,
        working_set: if smoke { 64 } else { 512 },
        n_requests: if smoke { 256 } else { 2048 },
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Requests/sec for the fastest of `PASSES` runs of `pass`, where each
/// pass serves `requests` requests and `setup` builds its input.
fn best_rps<S>(requests: usize, mut setup: impl FnMut() -> S, mut pass: impl FnMut(&mut S)) -> f64 {
    let mut best_ns = u64::MAX;
    for _ in 0..PASSES {
        let mut state = setup();
        let t = Instant::now();
        pass(&mut state);
        best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
    }
    requests as f64 * 1e9 / best_ns.max(1) as f64
}

/// Bitwise parity: every `score_batch` row equals `scores_for`, at the
/// given thread count, on a cold and a warm cache. Aborts on mismatch —
/// a serving layer that returns different numbers is not worth timing.
fn assert_parity(fx: &Fixture, threads: usize) {
    set_num_threads(Some(threads));
    let sample = &fx.all_pairs[..fx.working_set.min(fx.all_pairs.len())];
    let engine = ServingEngine::new(fx.model.clone());
    for round in 0..2 {
        let batch = engine.score_batch(sample).expect("in-range requests");
        for (b, q) in sample.iter().enumerate() {
            let want = fx.model.scores_for(q.user, q.time);
            let got = batch.scores.row(b);
            assert_eq!(got.len(), want.len());
            for (j, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "parity violation: request {b} poi {j} at {threads} threads (round {round})"
                );
            }
        }
    }
}

struct Row {
    threads: usize,
    batch: usize,
    baseline_rps: f64,
    cold_rps: f64,
    warm_rps: f64,
}

// --- compact-snapshot measurements (DESIGN.md §5h) -----------------------

struct SnapRow {
    mode: QuantMode,
    payload_bytes: usize,
    file_bytes: usize,
    payload_pct_of_f64: f64,
    bytes_per_user: f64,
    cold_open_us: f64,
    cold_open_fast_us: f64,
    top10_agreement: f64,
    peak_rss_kb: u64,
}

/// `VmHWM` (peak resident set) in kB from `/proc/self/status`; 0 where
/// procfs is unavailable (the JSON field stays shape-valid).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Reset the peak-RSS watermark (`echo 5 > /proc/self/clear_refs`) so the
/// next [`peak_rss_kb`] read reflects only the phase that follows.
/// Best-effort: unprivileged kernels that refuse the write just leave the
/// watermark cumulative, which only ever over-reports.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Fastest-of-5 wall time of `f`, in microseconds.
fn best_us<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best as f64 / 1e3
}

/// Peak RSS (kB) while serving `stream` once through `engine` in batches
/// of 32, with the watermark reset immediately before the phase.
fn serving_peak_rss(engine: &ServingEngine, stream: &[ScoreRequest]) -> u64 {
    reset_peak_rss();
    for chunk in stream.chunks(32) {
        std::hint::black_box(engine.recommend_batch(chunk, TOP_N).expect("in range"));
    }
    peak_rss_kb()
}

/// Mean top-10 membership overlap between the f64 model and the snapshot
/// over `pairs`.
fn top10_agreement(model: &TcssModel, snap: &SnapshotModel, pairs: &[ScoreRequest]) -> f64 {
    let mut overlap = 0usize;
    for q in pairs {
        let want: Vec<usize> = tcss_core::topn::top_n(&model.scores_for(q.user, q.time), TOP_N)
            .iter()
            .map(|&(p, _)| p)
            .collect();
        let got = tcss_core::topn::top_n(&snap.scores_for(q.user, q.time), TOP_N);
        overlap += got.iter().filter(|&&(p, _)| want.contains(&p)).count();
    }
    overlap as f64 / (pairs.len() * TOP_N) as f64
}

fn measure_snapshot(fx: &Fixture, mode: QuantMode, dir: &Path, stream: &[ScoreRequest]) -> SnapRow {
    let path = dir.join(format!("bench-{mode}.tcsssnap"));
    write_snapshot(&fx.model, mode, &path).expect("write snapshot");
    let cold_open_us = best_us(|| SnapshotModel::open(&path).expect("open"));
    let cold_open_fast_us = best_us(|| SnapshotModel::open_fast(&path).expect("open_fast"));

    let snap = SnapshotModel::open(&path).expect("open");
    let f64_bytes = fx.model.num_params() * 8;
    let (users, _, _) = fx.model.dims();
    let payload_bytes = snap.payload_bytes();
    let file_bytes = snap.file_bytes();
    let agreement = top10_agreement(&fx.model, &snap, &fx.all_pairs[..fx.working_set]);

    let engine = ServingEngine::new(SnapshotModel::open(&path).expect("open"));
    let peak = serving_peak_rss(&engine, stream);

    SnapRow {
        mode,
        payload_bytes,
        file_bytes,
        payload_pct_of_f64: 100.0 * payload_bytes as f64 / f64_bytes as f64,
        bytes_per_user: payload_bytes as f64 / users as f64,
        cold_open_us,
        cold_open_fast_us,
        top10_agreement: agreement,
        peak_rss_kb: peak,
    }
}

fn main() {
    let smoke = std::env::var("TCSS_BENCH_SMOKE").is_ok();
    let fx = fixture(smoke);
    let (i_dim, j_dim, k_dim) = fx.model.dims();
    println!(
        "serving fixture: {} users × {} POIs × {} slots, rank {}, \
         {} unique pairs, working set {}, {} requests/pass",
        i_dim,
        j_dim,
        k_dim,
        fx.model.h.len(),
        fx.all_pairs.len(),
        fx.working_set,
        fx.n_requests
    );

    for t in THREADS {
        assert_parity(&fx, t);
    }
    println!("parity: batched scores bitwise equal to scores_for at 1/2/4 threads");

    let working = &fx.all_pairs[..fx.working_set.min(fx.all_pairs.len())];
    // Cold passes must never repeat a pair, or they stop being cold.
    let cold_requests = fx.n_requests.min(fx.all_pairs.len());

    let mut rows: Vec<Row> = Vec::new();
    let mut warm_hit_rate = 0.0;
    for threads in THREADS {
        set_num_threads(Some(threads));

        // Baseline: one scores_for + full sort per request, same stream
        // the warm path serves. Batch-size independent.
        let baseline_rps = best_rps(
            fx.n_requests,
            || (),
            |_| {
                for r in 0..fx.n_requests {
                    let q = working[r % working.len()];
                    std::hint::black_box(fx.model.recommend_full_sort(q.user, q.time, TOP_N));
                }
            },
        );

        for batch in BATCH_SIZES {
            let cold_rps = best_rps(
                cold_requests,
                || ServingEngine::new(fx.model.clone()),
                |engine| {
                    for chunk in fx.all_pairs[..cold_requests].chunks(batch) {
                        std::hint::black_box(
                            engine.recommend_batch(chunk, TOP_N).expect("in range"),
                        );
                    }
                },
            );

            let warm_rps = best_rps(
                fx.n_requests,
                || {
                    let engine = ServingEngine::new(fx.model.clone());
                    engine.recommend_batch(working, TOP_N).expect("in range");
                    let stream: Vec<ScoreRequest> = (0..fx.n_requests)
                        .map(|r| working[r % working.len()])
                        .collect();
                    (engine, stream)
                },
                |(engine, stream)| {
                    for chunk in stream.chunks(batch) {
                        std::hint::black_box(
                            engine.recommend_batch(chunk, TOP_N).expect("in range"),
                        );
                    }
                    warm_hit_rate = engine.metrics().topn_hit_rate();
                },
            );

            println!(
                "t{threads} b{batch:<3}  baseline {baseline_rps:>10.0} req/s   \
                 cold {cold_rps:>10.0} ({:>5.2}x)   warm {warm_rps:>10.0} ({:>5.2}x)",
                cold_rps / baseline_rps,
                warm_rps / baseline_rps
            );
            rows.push(Row {
                threads,
                batch,
                baseline_rps,
                cold_rps,
                warm_rps,
            });
        }
    }
    set_num_threads(None);
    println!("warm top-n cache hit rate (last run): {warm_hit_rate:.4}");

    // --- compact snapshots ------------------------------------------------
    let dir = std::env::temp_dir().join(format!("tcss-bench-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("snapshot scratch dir");
    let stream: Vec<ScoreRequest> = (0..fx.n_requests)
        .map(|r| working[r % working.len()])
        .collect();

    // Cold-start baseline: parse the f64 text checkpoint back into a model.
    let f64_path = dir.join("bench-f64.model");
    save_model(&fx.model, &f64_path).expect("save f64 model");
    let f64_load_us = best_us(|| load_model(&f64_path).expect("load f64 model"));
    let f64_engine = ServingEngine::new(fx.model.clone());
    let f64_peak_rss_kb = serving_peak_rss(&f64_engine, &stream);
    drop(f64_engine);
    let f64_bytes = fx.model.num_params() * 8;
    println!(
        "f64 baseline: {f64_bytes} model bytes, load {f64_load_us:.1} µs, \
         serving peak RSS {f64_peak_rss_kb} kB"
    );

    let snap_rows: Vec<SnapRow> = [QuantMode::F32, QuantMode::I16]
        .into_iter()
        .map(|mode| measure_snapshot(&fx, mode, &dir, &stream))
        .collect();
    for s in &snap_rows {
        println!(
            "snapshot {}: {} payload bytes ({:.1}% of f64), {:.1} B/user, \
             open {:.1} µs / open_fast {:.1} µs, top-10 agreement {:.4}, \
             serving peak RSS {} kB",
            s.mode,
            s.payload_bytes,
            s.payload_pct_of_f64,
            s.bytes_per_user,
            s.cold_open_us,
            s.cold_open_fast_us,
            s.top10_agreement,
            s.peak_rss_kb
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    // Acceptance gates (ROADMAP): the f32 snapshot must fit the ≤ 55 %
    // budget in every fixture; the agreement floor is asserted at full
    // size only — the smoke fixture's tiny top-10 pool makes a single
    // quantization tie-flip worth > 0.1 %.
    let f32_row = &snap_rows[0];
    assert!(
        f32_row.payload_pct_of_f64 <= 55.0,
        "f32 snapshot payload {:.1}% exceeds the 55% budget",
        f32_row.payload_pct_of_f64
    );
    assert!(
        f32_row.top10_agreement >= if smoke { 0.95 } else { 0.999 },
        "f32 top-10 agreement {:.5} below the acceptance floor",
        f32_row.top10_agreement
    );

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"serving\",\n");
    json.push_str(&format!("  \"fixture\": \"{}\",\n", fx.name));
    json.push_str(&format!(
        "  \"top_n\": {TOP_N},\n  \"working_set\": {},\n  \
         \"requests_per_pass\": {},\n  \"cold_requests_per_pass\": {cold_requests},\n  \
         \"parity_bitwise\": true,\n  \"warm_topn_hit_rate\": {warm_hit_rate:.4},\n",
        working.len(),
        fx.n_requests
    ));
    json.push_str("  \"throughput\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"batch\": {}, \"baseline_rps\": {:.1}, \
             \"cold_rps\": {:.1}, \"warm_rps\": {:.1}, \
             \"cold_speedup\": {:.3}, \"warm_speedup\": {:.3}}}{sep}\n",
            r.threads,
            r.batch,
            r.baseline_rps,
            r.cold_rps,
            r.warm_rps,
            r.cold_rps / r.baseline_rps,
            r.warm_rps / r.baseline_rps
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"snapshot\": {{\n    \"f64_model_bytes\": {f64_bytes},\n    \
         \"f64_load_us\": {f64_load_us:.1},\n    \
         \"f64_peak_rss_kb\": {f64_peak_rss_kb},\n    \"modes\": [\n"
    ));
    for (idx, s) in snap_rows.iter().enumerate() {
        let sep = if idx + 1 == snap_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "      {{\"mode\": \"{}\", \"payload_bytes\": {}, \"file_bytes\": {}, \
             \"payload_pct_of_f64\": {:.2}, \"bytes_per_user\": {:.1}, \
             \"cold_open_us\": {:.1}, \"cold_open_fast_us\": {:.1}, \
             \"top10_agreement\": {:.5}, \"peak_rss_kb\": {}}}{sep}\n",
            s.mode,
            s.payload_bytes,
            s.file_bytes,
            s.payload_pct_of_f64,
            s.bytes_per_user,
            s.cold_open_us,
            s.cold_open_fast_us,
            s.top10_agreement,
            s.peak_rss_kb
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_serving.json", json).expect("write BENCH_serving.json");
    println!("wrote BENCH_serving.json");
}
