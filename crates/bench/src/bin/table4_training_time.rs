//! Table IV — training time of one epoch of the `L₂` head, three ways:
//!
//! 1. the original whole-data loss evaluated naively (Eq 14, `O(I·J·K·r)`),
//! 2. negative sampling (positives + as many sampled negatives),
//! 3. the rewritten whole-data loss (Eq 15, `O(nnz·r + (I+J+K)r²)`).
//!
//! Paper shape to reproduce: naive ≫ negative sampling ≫ rewritten, by
//! orders of magnitude (the paper reports ~10⁵ s vs ~30 s vs ~0.15 s; our
//! tensors are smaller so absolute numbers shrink, the ordering and the
//! relative gaps in complexity remain).

use std::time::Instant;
use tcss_bench::prepare;
use tcss_core::{naive_whole_data_loss, negative_sampling_loss_and_grad, rewritten_loss_and_grad};
use tcss_data::SynthPreset;

fn main() {
    println!("=== Table IV: Training Time (one epoch of L2) ===");
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "Method", "Gowalla", "Yelp", "Foursquare"
    );
    let presets = [
        SynthPreset::Gowalla,
        SynthPreset::Yelp,
        SynthPreset::Foursquare,
    ];
    let prepared: Vec<_> = presets
        .iter()
        .map(|&pr| {
            let p = prepare(pr);
            let trainer = tcss_core::TcssTrainer::new(
                &p.data,
                &p.split.train,
                p.granularity,
                tcss_core::TcssConfig::default(),
            );
            let model = trainer.init_model();
            (trainer, model)
        })
        .collect();

    let time = |f: &mut dyn FnMut()| -> f64 {
        // Median of 5 runs.
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times[2]
    };

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, which) in [
        ("Original Loss: Eq (14)", 0),
        ("Negative Sampling", 1),
        ("Rewritten Loss: Eq (15)", 2),
    ] {
        let mut cols = Vec::new();
        for (trainer, model) in &prepared {
            let t = match which {
                0 => time(&mut || {
                    let _ = naive_whole_data_loss(model, &trainer.tensor, 0.9, 0.1);
                }),
                1 => time(&mut || {
                    let _ = negative_sampling_loss_and_grad(model, &trainer.tensor, 0.9, 0.1, 1);
                }),
                _ => time(&mut || {
                    let _ = rewritten_loss_and_grad(model, trainer.tensor.entries(), 0.9, 0.1);
                }),
            };
            cols.push(t);
        }
        rows.push((label.to_string(), cols));
    }
    for (label, cols) in &rows {
        println!(
            "{:<28} {:>12.6}s {:>12.6}s {:>12.6}s",
            label, cols[0], cols[1], cols[2]
        );
    }
    // Speedup summary (naive / rewritten), the headline of the table.
    let speedups: Vec<f64> = (0..3).map(|c| rows[0].1[c] / rows[2].1[c]).collect();
    println!(
        "\nnaive/rewritten speedup: {:.0}x / {:.0}x / {:.0}x",
        speedups[0], speedups[1], speedups[2]
    );
}
