//! Table III — performance with different `(w₊, w₋)` weight pairs on the
//! Gowalla preset: RMSE on positive and negative test entries, Hit@10, MRR.
//!
//! Paper shape to reproduce: performance improves as the `w₊/w₋` ratio
//! grows, peaks, then degrades when `w₋` becomes too small to anchor the
//! unlabeled mass.

use std::collections::HashSet;
use tcss_bench::prepare;
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;
use tcss_eval::{evaluate_ranking, rmse_positive_negative};

fn main() {
    let p = prepare(SynthPreset::Gowalla);
    let observed: HashSet<(usize, usize, usize)> = p
        .data
        .checkins
        .iter()
        .map(|c| (c.user, c.poi, p.granularity.index(c)))
        .collect();
    println!("=== Table III: Performance with different (w+, w-) [Gowalla] ===");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>8}",
        "(w+, w-)", "RM-pos", "RM-neg", "Hit@10", "MRR"
    );
    for (wp, wm) in [
        (0.9, 0.1),
        (0.95, 0.05),
        (0.99, 0.01),
        (0.995, 0.005),
        (0.999, 0.001),
    ] {
        let cfg = TcssConfig {
            w_plus: wp,
            w_minus: wm,
            ..Default::default()
        };
        let trainer = TcssTrainer::new(&p.data, &p.split.train, p.granularity, cfg);
        let model = trainer.train(|_, _| {});
        let metrics = evaluate_ranking(&p.split.test, p.data.n_pois(), &p.eval, |i, j, k| {
            model.predict(i, j, k)
        });
        let (rm_pos, rm_neg) = rmse_positive_negative(
            &p.split.test,
            p.data.n_pois(),
            &p.eval,
            |i, j, k| model.predict(i, j, k),
            |i, j, k| observed.contains(&(i, j, k)),
        );
        println!(
            "({:<5}, {:<6}) {:>10.4} {:>10.4} {:>8.4} {:>8.4}",
            wp, wm, rm_pos, rm_neg, metrics.hit_at_k, metrics.mrr
        );
    }
}
