//! Figure 11 — effect of the social-Hausdorff weight `λ` on all presets.
//!
//! Paper shape to reproduce: performance improves as λ grows toward an
//! intermediate optimum and degrades past it (the social regularizer must
//! not overwhelm the reconstruction loss).
//!
//! λ values here are on the *normalized-distance* scale (divide by the map
//! extent d_max ≈ 1200 km to compare with the paper's raw-km λ: our 120 ↔
//! their 0.1).

use tcss_bench::{prepare, run_tcss};
use tcss_core::TcssConfig;
use tcss_data::SynthPreset;

fn main() {
    println!("=== Fig 11: effect of lambda (social Hausdorff weight) ===");
    for preset in SynthPreset::ALL {
        let p = prepare(preset);
        println!("\n--- {} ---", p.label);
        println!("{:>8} {:>8} {:>8}", "lambda", "Hit@10", "MRR");
        for lambda in [0.0, 30.0, 120.0, 240.0, 480.0, 1200.0] {
            let cfg = TcssConfig {
                lambda,
                ..Default::default()
            };
            let res = run_tcss(&p, cfg);
            println!(
                "{:>8} {:>8.4} {:>8.4}",
                lambda, res.metrics.hit_at_k, res.metrics.mrr
            );
        }
    }
}
