//! Figure 12 — case study: geographic distribution of the top-100 and
//! top-200 recommended POIs for a sample user (Gowalla preset).
//!
//! The paper plots the POIs on a map; we report the equivalent statistics:
//! the top-100 POIs cluster in small areas (Tobler's law), while the
//! top-200 spread over a wider area (diversity further down the list).

use tcss_bench::prepare;
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;
use tcss_eval::{catalogue_coverage, exposure_gini, intra_list_distance, mean_novelty};
use tcss_geo::{entropy_weights, haversine_km, GeoPoint};

fn spread_stats(points: &[GeoPoint]) -> (f64, f64) {
    // (mean distance to centroid, radius containing 90% of points)
    let n = points.len() as f64;
    let centroid = GeoPoint::new(
        points.iter().map(|p| p.lon).sum::<f64>() / n,
        points.iter().map(|p| p.lat).sum::<f64>() / n,
    );
    let mut dists: Vec<f64> = points.iter().map(|p| haversine_km(centroid, *p)).collect();
    let mean = dists.iter().sum::<f64>() / n;
    dists.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p90 = dists[((dists.len() as f64 * 0.9) as usize).min(dists.len() - 1)];
    (mean, p90)
}

fn main() {
    let p = prepare(SynthPreset::Gowalla);
    let trainer = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig::default(),
    );
    let model = trainer.train(|_, _| {});

    // All-POI reference spread.
    let all_points: Vec<GeoPoint> = p.data.pois.iter().map(|poi| poi.location).collect();
    let (all_mean, all_p90) = spread_stats(&all_points);
    println!("=== Fig 12: case study — geographic spread of recommendations ===");
    println!(
        "all {} POIs:       mean-dist-to-centroid {:>7.1} km, 90% radius {:>7.1} km",
        all_points.len(),
        all_mean,
        all_p90
    );

    // Per-user history distances: visited POIs from the training split.
    let mut visited: Vec<Vec<usize>> = vec![Vec::new(); p.data.n_users];
    for c in &p.split.train {
        visited[c.user].push(c.poi);
    }
    let dist = p.data.distance_matrix();

    // A few sample users at a fixed time unit.
    for (user, time) in [(3usize, 6usize), (17, 0), (42, 9)] {
        // Top-20 plays the paper's "top-100" role: our catalogue is ~20x
        // smaller, so the same *fraction* of the catalogue is compared.
        let top200 = model.recommend(user, time, 200);
        let pts = |n: usize| -> Vec<GeoPoint> {
            top200
                .iter()
                .take(n)
                .map(|&(j, _)| p.data.pois[j].location)
                .collect()
        };
        let (m20, p20) = spread_stats(&pts(20.min(top200.len())));
        let (m100, p100) = spread_stats(&pts(100.min(top200.len())));
        println!("\nuser {user}, time unit {time}:");
        println!("  top-20:  mean-dist-to-centroid {m20:>7.1} km, 90% radius {p20:>7.1} km");
        println!("  top-100: mean-dist-to-centroid {m100:>7.1} km, 90% radius {p100:>7.1} km");
        println!(
            "  clustering vs catalogue: top-20 spread is {:.0}% of the all-POI spread",
            100.0 * m20 / all_mean
        );
        // Tobler's law, measured against the user's own history: median
        // distance from each recommended POI to the nearest POI the user
        // already visits, vs the same statistic for the whole catalogue.
        let median_to_history = |pois: &[usize]| -> f64 {
            let mut ds: Vec<f64> = pois
                .iter()
                .filter_map(|&j| dist.min_to_set(j, &visited[user]))
                .collect();
            ds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if ds.is_empty() {
                0.0
            } else {
                ds[ds.len() / 2]
            }
        };
        let top20: Vec<usize> = top200.iter().take(20).map(|&(j, _)| j).collect();
        let catalogue: Vec<usize> = (0..p.data.n_pois()).collect();
        let near = median_to_history(&top20);
        let base = median_to_history(&catalogue);
        println!(
            "  median distance to own history: top-20 {near:.1} km vs catalogue {base:.1} km              ({:.0}%)",
            100.0 * near / base.max(1e-9)
        );
        // Print the top-10 with coordinates (the "red points" of Fig 12a).
        println!("  top-10 POIs (lon, lat, score):");
        for &(j, s) in top200.iter().take(10) {
            let loc = p.data.pois[j].location;
            println!(
                "    poi {j:>4}  ({:>9.4}, {:>8.4})  {s:>7.4}",
                loc.lon, loc.lat
            );
        }
    }

    // Diversity effect of the entropy-weighted social head: compare the
    // full model's top-10 lists against the λ = 0 variant.
    println!("\n--- diversity of top-10 lists (all users, month 6) ---");
    let no_l1 = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig {
            lambda: 0.0,
            hausdorff: tcss_core::HausdorffVariant::None,
            ..Default::default()
        },
    )
    .train(|_, _| {});
    let entropy = p.data.location_entropy_from(&p.split.train);
    let e_weights = entropy_weights(&entropy);
    let locations: Vec<GeoPoint> = p.data.pois.iter().map(|poi| poi.location).collect();
    for (name, m) in [("full TCSS", &model), ("λ=0", &no_l1)] {
        let lists: Vec<Vec<usize>> = (0..p.data.n_users)
            .map(|u| m.recommend(u, 6, 10).into_iter().map(|(j, _)| j).collect())
            .collect();
        let ild: f64 = lists
            .iter()
            .map(|l| intra_list_distance(l, &locations))
            .sum::<f64>()
            / lists.len() as f64;
        let nov: f64 = lists
            .iter()
            .map(|l| mean_novelty(l, &e_weights))
            .sum::<f64>()
            / lists.len() as f64;
        println!(
            "{name:<10} coverage {:.3}  exposure-gini {:.3}  intra-list-dist {:.1} km  novelty {:.4}",
            catalogue_coverage(&lists, p.data.n_pois()),
            exposure_gini(&lists, p.data.n_pois()),
            ild,
            nov
        );
    }
}
