//! Table I — results comparison: Hit@10 / MRR of all 13 models on the four
//! dataset presets.
//!
//! Paper shape to reproduce: tensor completion > matrix completion and the
//! predictive spatiotemporal baselines; TCSS best everywhere; Yelp (the
//! sparsest preset) hardest; P-Tucker / NCF / CoSTCo the strongest
//! baselines.

use tcss_bench::{prepare, row, run_model, ModelName};
use tcss_data::SynthPreset;

fn main() {
    // Optionally restrict to a subset of models/presets via args, e.g.
    // `table1_comparison TCSS P-Tucker` or `table1_comparison --preset Gowalla`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut presets: Vec<SynthPreset> = SynthPreset::ALL.to_vec();
    let mut model_filter: Vec<ModelName> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--preset" {
            if let Some(p) = it.next() {
                presets = SynthPreset::ALL
                    .into_iter()
                    .filter(|x| x.label().eq_ignore_ascii_case(p))
                    .collect();
            }
        } else if let Some(m) = ModelName::ALL
            .into_iter()
            .find(|m| m.label().eq_ignore_ascii_case(a))
        {
            model_filter.push(m);
        }
    }
    let models = if model_filter.is_empty() {
        ModelName::ALL.to_vec()
    } else {
        model_filter
    };

    println!("=== Table I: Results Comparison (Hit@10 / MRR) ===");
    for preset in presets {
        let p = prepare(preset);
        println!(
            "\n--- {} ({} users, {} POIs, {} train / {} test check-ins) ---",
            p.label,
            p.data.n_users,
            p.data.n_pois(),
            p.split.train.len(),
            p.split.test.len()
        );
        println!("{:<10} {:>8} {:>8}", "Model", "Hit@10", "MRR");
        for m in &models {
            let r = run_model(*m, &p);
            println!("{}", row(&r));
        }
    }
}
