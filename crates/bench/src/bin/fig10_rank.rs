//! Figure 10 — effect of the tensor rank `r` (embedding length) on all
//! four dataset presets.
//!
//! Paper shape to reproduce: performance grows with `r` up to the cap
//! (`r = 10 < K = 12` at month granularity, limited by the eigenvector
//! computation as the paper notes).

use tcss_bench::{prepare, run_tcss};
use tcss_core::TcssConfig;
use tcss_data::SynthPreset;

fn main() {
    println!("=== Fig 10: effect of tensor rank r ===");
    for preset in SynthPreset::ALL {
        let p = prepare(preset);
        println!("\n--- {} ---", p.label);
        println!("{:>4} {:>8} {:>8}", "r", "Hit@10", "MRR");
        for r in [2usize, 4, 6, 8, 10] {
            let cfg = TcssConfig {
                rank: r,
                ..Default::default()
            };
            let res = run_tcss(&p, cfg);
            println!(
                "{:>4} {:>8.4} {:>8.4}",
                r, res.metrics.hit_at_k, res.metrics.mrr
            );
        }
    }
}
