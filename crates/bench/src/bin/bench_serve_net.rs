//! Wire-serving load generator: tail latency and shed rate at controlled
//! offered loads over loopback.
//!
//! Emits `BENCH_serve_net.json` into the current directory.
//!
//! Two phases:
//!
//! 1. **Parity** — at 1/2/4 server worker threads, every wire response is
//!    checked **bitwise** against in-process `TcssModel::recommend` for
//!    the same `(user, time, n)`. The run aborts on any mismatch; the
//!    result is recorded as `"parity_bitwise"` in the JSON.
//! 2. **Load sweep** — a closed-loop calibration pass measures the
//!    maximum sustainable throughput, then open-loop runs offer fixed
//!    fractions of it (including one deliberately past saturation so the
//!    admission gate sheds). Each connection is a send/recv thread pair:
//!    the sender paces requests at the offered interval and queues send
//!    timestamps; the receiver matches responses FIFO (the server
//!    preserves per-connection order) and records end-to-end latency into
//!    the same log-bucketed [`LatencyHistogram`] the server uses, so
//!    p50/p99/p999 come from real per-request samples. `Overloaded`
//!    responses count as shed, not as latency samples.
//!
//! `TCSS_BENCH_SMOKE=1` shrinks the fixture and run lengths to CI-smoke
//! sizes: the run finishes in seconds and only the JSON shape is
//! meaningful.

use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcss_core::{random_init, TcssModel};
use tcss_serve::net::{
    frame, proto, NetClient, NetServer, Request, RequestBody, ResponseBody, ServerConfig,
};
use tcss_serve::{HistogramSnapshot, LatencyHistogram, ServingEngine};

const TOP_N: u32 = 10;
const PARITY_THREADS: [usize; 3] = [1, 2, 4];
/// Worker threads for the load sweep.
const SWEEP_THREADS: usize = 2;
/// Offered load as fractions of the calibrated maximum; the last level is
/// past saturation so the shed path is exercised under real load.
const LOAD_LEVELS: [f64; 4] = [0.25, 0.50, 0.80, 1.50];
const CONNS: usize = 4;

struct Fixture {
    name: String,
    model: TcssModel,
    queue_depth: usize,
    /// Closed-loop calibration requests per connection.
    calibrate_per_conn: usize,
    /// Open-loop run duration per load level.
    run_secs: f64,
    /// Parity sample size (distinct `(user, time)` pairs).
    parity_pairs: usize,
}

fn fixture(smoke: bool) -> Fixture {
    let (dims, rank) = if smoke {
        ((20usize, 90usize, 6usize), 4usize)
    } else {
        ((200, 1500, 12), 8)
    };
    let (u1, u2, u3) = random_init(dims, rank, 2027);
    Fixture {
        name: format!(
            "synth-{}x{}x{}-r{rank}{}",
            dims.0,
            dims.1,
            dims.2,
            if smoke { "-smoke" } else { "" }
        ),
        model: TcssModel::new(u1, u2, u3),
        queue_depth: if smoke { 32 } else { 256 },
        calibrate_per_conn: if smoke { 300 } else { 2500 },
        run_secs: if smoke { 0.3 } else { 2.0 },
        parity_pairs: if smoke { 40 } else { 200 },
    }
}

fn start_server(fx: &Fixture, workers: usize) -> tcss_serve::net::ServerHandle {
    let engine = Arc::new(ServingEngine::new(fx.model.clone()));
    NetServer::start(
        engine,
        ServerConfig {
            workers,
            queue_depth: fx.queue_depth,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

/// Every wire response bitwise-equal to in-process `recommend` at this
/// worker count. Aborts on mismatch.
fn assert_parity(fx: &Fixture, workers: usize) {
    let (i_dim, _, k_dim) = fx.model.dims();
    let handle = start_server(fx, workers);
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for p in 0..fx.parity_pairs {
        let q = (p * 61) % (i_dim * k_dim);
        let (user, time) = (q / k_dim, q % k_dim);
        let resp = client
            .recommend(user as u64, time as u64, TOP_N)
            .expect("parity request");
        match &resp.body {
            ResponseBody::Ranking { items, .. } => {
                let want = fx.model.recommend(user, time, TOP_N as usize);
                assert_eq!(items.len(), want.len(), "length at {workers} workers");
                for (j, ((gp, gs), (wp, ws))) in items.iter().zip(&want).enumerate() {
                    assert_eq!(*gp, *wp as u64, "poi rank {j} at {workers} workers");
                    assert_eq!(
                        gs.to_bits(),
                        ws.to_bits(),
                        "parity violation: ({user},{time}) rank {j} at {workers} workers"
                    );
                }
            }
            other => panic!("expected ranking, got {other:?}"),
        }
    }
}

/// Windowed closed loop on one connection: keep `window` requests in
/// flight, send a new one per response. With `CONNS * window` below the
/// admission depth nothing sheds, so the aggregate rate is the server's
/// sustainable *serving* throughput — the right yardstick for the
/// offered-load sweep (a flood-everything loop would measure how fast
/// the gate can say `Overloaded` instead).
fn calibrate_conn(
    addr: std::net::SocketAddr,
    conn_id: usize,
    per_conn: usize,
    window: usize,
    dims: (usize, usize, usize),
) -> u64 {
    let (i_dim, _, k_dim) = dims;
    let mut client = NetClient::connect(addr).expect("connect");
    let pair = |r: usize| {
        let q = (conn_id + r * 7) % (i_dim * k_dim);
        ((q / k_dim) as u64, (q % k_dim) as u64)
    };
    let mut sent = 0usize;
    while sent < window.min(per_conn) {
        let (user, time) = pair(sent);
        client.send_recommend(user, time, TOP_N).expect("send");
        sent += 1;
    }
    let mut ok = 0u64;
    for _ in 0..per_conn {
        let resp = client.read_response().expect("response");
        if matches!(resp.body, ResponseBody::Ranking { .. }) {
            ok += 1;
        }
        if sent < per_conn {
            let (user, time) = pair(sent);
            client.send_recommend(user, time, TOP_N).expect("send");
            sent += 1;
        }
    }
    ok
}

struct ConnStats {
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    latency: HistogramSnapshot,
}

/// One connection's open-loop run: a sender pacing `per_conn` requests at
/// `interval`, a receiver matching responses FIFO and recording latency.
/// `interval == None` means closed-loop (send as fast as the socket
/// accepts) — used for calibration.
fn run_conn(
    addr: std::net::SocketAddr,
    conn_id: usize,
    per_conn: usize,
    interval: Option<Duration>,
    dims: (usize, usize, usize),
) -> ConnStats {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut write_half = stream.try_clone().expect("clone stream");
    let (ts_tx, ts_rx) = mpsc::channel::<Instant>();

    let sender = std::thread::spawn(move || {
        let (i_dim, _, k_dim) = dims;
        let start = Instant::now();
        let mut next = start;
        for r in 0..per_conn {
            if let Some(iv) = interval {
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
                next += iv;
            }
            let q = (conn_id + r * 7) % (i_dim * k_dim);
            let payload = proto::encode_request(&Request {
                id: r as u64 + 1,
                body: RequestBody::Recommend {
                    user: (q / k_dim) as u64,
                    time: (q % k_dim) as u64,
                    n: TOP_N,
                },
            });
            ts_tx.send(Instant::now()).expect("receiver alive");
            write_half
                .write_all(&frame::encode_frame(&payload))
                .expect("send");
        }
        per_conn as u64
    });

    // Receiver: this thread. FIFO timestamp matching is sound because the
    // server writes responses in per-connection decode order.
    let mut decoder = frame::FrameDecoder::new(tcss_serve::net::DEFAULT_MAX_FRAME_LEN);
    let hist = LatencyHistogram::new();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    let mut buf = [0u8; 16 * 1024];
    let mut received = 0usize;
    use std::io::Read;
    let mut read_half = stream;
    while received < per_conn {
        match decoder.next_frame().expect("well-framed server") {
            Some(payload) => {
                let resp = proto::decode_response(&payload).expect("well-formed server");
                let sent_at = ts_rx.recv().expect("one timestamp per response");
                received += 1;
                match resp.body {
                    ResponseBody::Ranking { .. } => {
                        hist.record(sent_at.elapsed().as_nanos() as u64);
                        ok += 1;
                    }
                    ResponseBody::Overloaded { .. } => shed += 1,
                    _ => errors += 1,
                }
            }
            None => {
                let n = read_half.read(&mut buf).expect("read");
                assert!(n > 0, "server closed mid-run");
                decoder.push(&buf[..n]);
            }
        }
    }
    let sent = sender.join().expect("sender thread");
    ConnStats {
        sent,
        ok,
        shed,
        errors,
        latency: hist.snapshot(),
    }
}

struct RunResult {
    offered_rps: f64,
    achieved_rps: f64,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    latency: HistogramSnapshot,
}

/// Drive `per_conn` requests on each of `CONNS` connections, open-loop at
/// `offered_rps` aggregate.
fn run_load(fx: &Fixture, addr: std::net::SocketAddr, per_conn: usize, offered: f64) -> RunResult {
    let dims = fx.model.dims();
    let interval = Some(Duration::from_nanos((1e9 * CONNS as f64 / offered) as u64));
    let t0 = Instant::now();
    let conns: Vec<_> = (0..CONNS)
        .map(|c| std::thread::spawn(move || run_conn(addr, c, per_conn, interval, dims)))
        .collect();
    let mut sent = 0;
    let mut ok = 0;
    let mut shed = 0;
    let mut errors = 0;
    let mut latency = HistogramSnapshot::default();
    for conn in conns {
        let stats = conn.join().expect("connection pair");
        sent += stats.sent;
        ok += stats.ok;
        shed += stats.shed;
        errors += stats.errors;
        latency.merge(&stats.latency);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    RunResult {
        offered_rps: offered,
        achieved_rps: (ok + shed + errors) as f64 / elapsed.max(1e-9),
        sent,
        ok,
        shed,
        errors,
        latency,
    }
}

fn main() {
    let smoke = std::env::var("TCSS_BENCH_SMOKE").is_ok();
    let fx = fixture(smoke);
    let (i_dim, j_dim, k_dim) = fx.model.dims();
    println!(
        "serve_net fixture: {} users × {} POIs × {} slots, queue depth {}, \
         {} connections",
        i_dim, j_dim, k_dim, fx.queue_depth, CONNS
    );

    for workers in PARITY_THREADS {
        assert_parity(&fx, workers);
    }
    println!(
        "parity: wire responses bitwise equal to in-process recommend at \
         {PARITY_THREADS:?} worker threads"
    );

    // One server for the whole sweep, as in production: caches warm over
    // the sweep the way they would under sustained traffic.
    let mut handle = start_server(&fx, SWEEP_THREADS);
    let addr = handle.addr();

    // Warm the version-keyed caches over every (user, time) pair first:
    // the sweep revisits the same key space, so steady state is warm, and
    // calibrating cold would understate capacity enough that the "past
    // saturation" level never actually saturates.
    {
        let mut warm = NetClient::connect(addr).expect("connect");
        for q in 0..i_dim * k_dim {
            warm.recommend((q / k_dim) as u64, (q % k_dim) as u64, TOP_N)
                .expect("warmup");
        }
    }

    // Windowed closed-loop calibration: sustainable serving throughput.
    let window = (fx.queue_depth / (2 * CONNS)).max(1);
    let per_conn = fx.calibrate_per_conn;
    let t0 = Instant::now();
    let cal_conns: Vec<_> = (0..CONNS)
        .map(|c| {
            let dims = fx.model.dims();
            std::thread::spawn(move || calibrate_conn(addr, c, per_conn, window, dims))
        })
        .collect();
    let cal_ok: u64 = cal_conns
        .into_iter()
        .map(|t| t.join().expect("calib"))
        .sum();
    let max_rps = cal_ok as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    println!(
        "calibration: {max_rps:.0} req/s sustained closed-loop \
         ({cal_ok}/{} ok, window {window}/conn)",
        (CONNS * per_conn) as u64
    );

    let mut runs: Vec<RunResult> = Vec::new();
    for level in LOAD_LEVELS {
        let offered = max_rps * level;
        let per_conn = ((offered * fx.run_secs / CONNS as f64).ceil() as usize).max(50);
        let run = run_load(&fx, addr, per_conn, offered);
        let shed_rate = run.shed as f64 / run.sent.max(1) as f64;
        println!(
            "offered {:>9.0} req/s ({:>4.0}%)  achieved {:>9.0}  ok {:>7}  \
             shed {:>6} ({:>5.3})  p50 {:>9} ns  p99 {:>9} ns  p999 {:>9} ns",
            offered,
            level * 100.0,
            run.achieved_rps,
            run.ok,
            run.shed,
            shed_rate,
            run.latency.p50(),
            run.latency.p99(),
            run.latency.p999()
        );
        runs.push(run);
    }

    let m = handle.metrics();
    assert_eq!(m.errors, 0, "no typed request errors under in-range load");
    assert_eq!(m.protocol_errors, 0, "no protocol errors under the sweep");
    println!(
        "server totals: {} requests, {} ok, {} shed, server-side p99 {} ns, \
         queue-wait p99 {} ns",
        m.requests,
        m.ok,
        m.overloaded,
        m.request_ns.p99(),
        m.queue_wait_ns.p99()
    );

    // --- drain timing -----------------------------------------------------
    // Graceful drain at the end of the sweep: how long a loaded-then-idle
    // server takes to stop accepting, flush and close every connection.
    let t_drain = Instant::now();
    let drain_clean = handle.drain(Duration::from_secs(10));
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
    assert!(
        drain_clean,
        "post-sweep drain must complete without force-close"
    );
    println!("drain: {drain_ms:.1} ms (clean)");

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"serve_net\",\n");
    json.push_str(&format!("  \"fixture\": \"{}\",\n", fx.name));
    json.push_str(&format!(
        "  \"top_n\": {TOP_N},\n  \"connections\": {CONNS},\n  \
         \"queue_depth\": {},\n  \"sweep_workers\": {SWEEP_THREADS},\n  \
         \"parity_threads\": [1, 2, 4],\n  \"parity_bitwise\": true,\n  \
         \"calibrated_max_rps\": {:.1},\n",
        fx.queue_depth, max_rps
    ));
    json.push_str("  \"runs\": [\n");
    for (idx, r) in runs.iter().enumerate() {
        let sep = if idx + 1 == runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"server_threads\": {SWEEP_THREADS}, \"offered_rps\": {:.1}, \
             \"achieved_rps\": {:.1}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \
             \"errors\": {}, \"shed_rate\": {:.5}, \"p50_ns\": {}, \
             \"p99_ns\": {}, \"p999_ns\": {}, \"mean_ns\": {:.1}}}{sep}\n",
            r.offered_rps,
            r.achieved_rps,
            r.sent,
            r.ok,
            r.shed,
            r.errors,
            r.shed as f64 / r.sent.max(1) as f64,
            r.latency.p50(),
            r.latency.p99(),
            r.latency.p999(),
            r.latency.mean()
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"resilience\": {{\"deadline_exceeded\": {}, \"panics\": {}, \
         \"worker_restarts\": {}, \"reaped_idle\": {}, \
         \"queue_wait_p50_ns\": {}, \"queue_wait_p99_ns\": {}, \
         \"queue_wait_p999_ns\": {}, \"drain_ms\": {:.1}, \"drain_clean\": {}}}\n",
        m.deadline_exceeded,
        m.panics,
        m.worker_restarts,
        m.reaped_idle,
        m.queue_wait_ns.p50(),
        m.queue_wait_ns.p99(),
        m.queue_wait_ns.p999(),
        drain_ms,
        drain_clean
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_serve_net.json", json).expect("write BENCH_serve_net.json");
    println!("wrote BENCH_serve_net.json");
}
