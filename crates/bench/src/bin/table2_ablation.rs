//! Table II — ablation study: TCSS variants on all four dataset presets.
//!
//! Paper shape to reproduce: the full-fledged TCSS beats every variant;
//! negative sampling loses the most MRR; removing `L₁` (λ = 0),
//! Self-Hausdorff and Zero-out each cost accuracy; spectral initialization
//! beats random and one-hot.

use tcss_bench::{prepare, run_tcss};
use tcss_core::TcssConfig;
use tcss_data::SynthPreset;

type VariantFactory = fn() -> TcssConfig;

fn main() {
    let variants: [(&str, VariantFactory); 7] = [
        ("Random initialization", TcssConfig::ablation_random_init),
        ("One-hot initialization", TcssConfig::ablation_onehot_init),
        ("Remove L1 (lambda=0)", TcssConfig::ablation_no_l1),
        ("Negative sampling", TcssConfig::ablation_negative_sampling),
        ("Self-Hausdorff", TcssConfig::ablation_self_hausdorff),
        ("Zero-out", TcssConfig::ablation_zero_out),
        ("Full-Fledged TCSS", TcssConfig::full),
    ];
    let presets: Vec<SynthPreset> = match std::env::args().nth(1) {
        Some(p) => SynthPreset::ALL
            .into_iter()
            .filter(|x| x.label().eq_ignore_ascii_case(&p))
            .collect(),
        None => SynthPreset::ALL.to_vec(),
    };
    println!("=== Table II: Ablation Study (Hit@10 / MRR) ===");
    for preset in presets {
        let p = prepare(preset);
        println!("\n--- {} ---", p.label);
        println!("{:<24} {:>8} {:>8}", "Model Variant", "Hit@10", "MRR");
        for (name, cfg) in &variants {
            let r = run_tcss(&p, cfg());
            println!(
                "{:<24} {:>8.4} {:>8.4}",
                name, r.metrics.hit_at_k, r.metrics.mrr
            );
        }
    }
}
