//! Training hot-path kernel benchmark: sparse chunk-local gradients and
//! pooled workspaces (the "after" path) against the retained dense-chunk
//! reference implementations (the "before" path), plus the cache-blocked
//! matmul/gram kernels, at 1/2/4 worker threads.
//!
//! Emits `BENCH_train_kernels.json` into the current directory:
//! Criterion-shim-shaped `benchmarks` entries (mean/min/max ns per op)
//! plus two extra sections the shim cannot produce —
//!
//! * `allocations_per_epoch`: heap allocations during one steady-state
//!   epoch-gradient evaluation (pools warmed), counted by a global
//!   counting allocator **in this binary only**, at two tensor sizes.
//!   The sparse path's count must not scale with the chunk count; the
//!   dense path's does (one `Grads`-sized buffer per chunk).
//! * `epoch_speedup`: before/after throughput ratio of a full training
//!   epoch (L₂ gradients + Adam step) per thread count. The epoch fixture
//!   disables the Hausdorff head (the λ = 0 ablation of Table II) because
//!   the head's cost is dominated by per-user slice evaluation, which
//!   this rewrite leaves untouched — the head is timed separately.
//!
//! `TCSS_BENCH_SMOKE=1` shrinks every fixture to CI-smoke sizes: the run
//! finishes in seconds and only the JSON shape is meaningful.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcss_core::loss::reference;
use tcss_core::{
    negative_sampling_loss_and_grad_ws, random_init, rewritten_loss_and_grad_ws, Grads,
    HausdorffVariant, SocialHausdorffHead, TcssModel, TrainWorkspace,
};
use tcss_data::synth::{generate, SynthConfig};
use tcss_data::{Dataset, Granularity, SynthPreset};
use tcss_linalg::{set_num_threads, Matrix};

// --- Counting allocator (bench binary only) ------------------------------

/// Forwards to the system allocator, counting every allocation. The
/// production crates never see this: `#[global_allocator]` only applies to
/// this binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count over one invocation of `f`.
fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

// --- Timing --------------------------------------------------------------

struct BenchResult {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Warm up, calibrate a batch size so each sample runs ≥ `target_ns`, then
/// take `samples` timed batches (same scheme as the criterion shim, which
/// is a dev-dependency and so unavailable to a `src/bin` binary).
fn run_bench(name: &str, samples: usize, target_ns: u64, mut f: impl FnMut()) -> BenchResult {
    f(); // warmup
    let t0 = Instant::now();
    f();
    let once = (t0.elapsed().as_nanos() as u64).max(1);
    let iters = (target_ns / once).clamp(1, 100_000);
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_op.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let mean = per_op.iter().sum::<f64>() / per_op.len() as f64;
    let min = per_op.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_op.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<44} {:>12.0} ns/op  (n={samples}×{iters})", mean);
    BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples,
    }
}

// --- Local Adam (mirror of the trainer's update, for the epoch bench) ----

struct Adam {
    m: Grads,
    v: Grads,
    t: u64,
}

impl Adam {
    fn new(model: &TcssModel) -> Self {
        Adam {
            m: Grads::zeros(model),
            v: Grads::zeros(model),
            t: 0,
        }
    }

    fn step(&mut self, model: &mut TcssModel, g: &Grads, lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        fn upd(
            w: &mut [f64],
            g: &[f64],
            m: &mut [f64],
            v: &mut [f64],
            lr: f64,
            bc1: f64,
            bc2: f64,
        ) {
            for idx in 0..w.len() {
                m[idx] = B1 * m[idx] + (1.0 - B1) * g[idx];
                v[idx] = B2 * v[idx] + (1.0 - B2) * g[idx] * g[idx];
                w[idx] -= lr * ((m[idx] / bc1) / ((v[idx] / bc2).sqrt() + EPS));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        upd(
            model.u1.as_mut_slice(),
            g.u1.as_slice(),
            self.m.u1.as_mut_slice(),
            self.v.u1.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            model.u2.as_mut_slice(),
            g.u2.as_slice(),
            self.m.u2.as_mut_slice(),
            self.v.u2.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            model.u3.as_mut_slice(),
            g.u3.as_slice(),
            self.m.u3.as_mut_slice(),
            self.v.u3.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            &mut model.h,
            &g.h,
            &mut self.m.h,
            &mut self.v.h,
            lr,
            bc1,
            bc2,
        );
    }
}

// --- Fixtures ------------------------------------------------------------

/// Large sparse fixture for the L₂/epoch benchmarks: enough check-ins that
/// the entry loop spans ~100 chunks, so per-chunk buffer overhead (what
/// this PR removes) is visible next to the arithmetic.
fn epoch_fixture(smoke: bool) -> Dataset {
    if smoke {
        SynthPreset::Gmu5k.generate()
    } else {
        generate(&SynthConfig {
            name: "bench-epoch-synth".into(),
            seed: 2026,
            n_users: 600,
            n_pois: 3000,
            n_clusters: 12,
            n_communities: 8,
            avg_checkins_per_user: 170,
            ..SynthPreset::Gowalla.config()
        })
    }
}

fn main() {
    let smoke = std::env::var("TCSS_BENCH_SMOKE").is_ok();
    let samples = if smoke { 2 } else { 7 };
    let target_ns: u64 = if smoke { 500_000 } else { 20_000_000 };
    let threads = [1usize, 2, 4];
    let mut results: Vec<BenchResult> = Vec::new();

    // --- matmul / gram ---------------------------------------------------
    let (m, n, p) = if smoke { (32, 24, 16) } else { (384, 256, 192) };
    let a = Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) % 97) as f64 * 0.013 - 0.5);
    let b = Matrix::from_fn(n, p, |i, j| ((i * 13 + j * 29) % 89) as f64 * 0.011 - 0.4);
    let (gr, gc) = if smoke { (48, 8) } else { (512, 96) };
    let g = Matrix::from_fn(gr, gc, |i, j| ((i * 7 + j * 41) % 83) as f64 * 0.017 - 0.6);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("matmul_{m}x{n}x{p}/t{t}"),
            samples,
            target_ns,
            || {
                black_box(a.matmul(&b).expect("shapes agree"));
            },
        ));
        results.push(run_bench(
            &format!("gram_{gr}x{gc}/t{t}"),
            samples,
            target_ns,
            || {
                black_box(g.gram());
            },
        ));
    }

    // --- L₂ heads: dense reference vs sparse+pooled ----------------------
    let data = epoch_fixture(smoke);
    let train = if smoke {
        data.checkins.iter().take(1500).copied().collect()
    } else {
        data.checkins.clone()
    };
    let tensor = data.tensor_from(&train, Granularity::Month);
    let entries = tensor.entries();
    println!(
        "epoch fixture: {} users × {} POIs, {} tensor entries",
        data.n_users,
        data.n_pois(),
        entries.len()
    );
    let (u1, u2, u3) = random_init(tensor.dims(), 10, 7);
    let model = TcssModel::new(u1, u2, u3);
    let ws = TrainWorkspace::new();
    let mut grads = Grads::zeros(&model);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("l2_rewritten/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                black_box(reference::rewritten_loss_and_grad_dense(
                    &model, entries, 0.95, 0.05,
                ));
            },
        ));
        results.push(run_bench(
            &format!("l2_rewritten/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                black_box(rewritten_loss_and_grad_ws(
                    &model, entries, 0.95, 0.05, &ws, &mut grads,
                ));
            },
        ));
        results.push(run_bench(
            &format!("negative_sampling/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                black_box(reference::negative_sampling_loss_and_grad_dense(
                    &model, &tensor, 0.95, 0.05, 42,
                ));
            },
        ));
        results.push(run_bench(
            &format!("negative_sampling/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                black_box(negative_sampling_loss_and_grad_ws(
                    &model, &tensor, 0.95, 0.05, 42, &ws, &mut grads,
                ));
            },
        ));
    }

    // --- Social-Hausdorff head -------------------------------------------
    // Timed on the Gowalla preset with a candidate cap: the head's cost is
    // dominated by the per-user J×K slice evaluation (unchanged here), so
    // its before/after delta is modest by design — see DESIGN.md.
    let (hdata, htrain, cap) = if smoke {
        (data, train, Some(8))
    } else {
        let d = SynthPreset::Gowalla.generate();
        let t = d.checkins.clone();
        (d, t, Some(32))
    };
    let htensor = hdata.tensor_from(&htrain, Granularity::Month);
    let (hu1, hu2, hu3) = random_init(htensor.dims(), 10, 7);
    let hmodel = TcssModel::new(hu1, hu2, hu3);
    let head = SocialHausdorffHead::new(
        &hdata,
        &htrain,
        HausdorffVariant::Social,
        Default::default(),
        cap,
    );
    let hws = TrainWorkspace::new();
    let mut hgrads = Grads::zeros(&hmodel);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("hausdorff_head/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                hgrads.set_zero();
                black_box(head.loss_and_grad_dense(&hmodel, &mut hgrads, 240.0));
            },
        ));
        results.push(run_bench(
            &format!("hausdorff_head/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                hgrads.set_zero();
                black_box(head.loss_and_grad_ws(&hmodel, &mut hgrads, 240.0, &hws));
            },
        ));
    }

    // --- Full epoch: L₂ gradients + Adam step (λ = 0 ablation config) ----
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for t in threads {
        set_num_threads(Some(t));
        let mut model_b = model.clone();
        let mut adam_b = Adam::new(&model_b);
        let before = run_bench(
            &format!("epoch_l2/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                let (_, g) =
                    reference::rewritten_loss_and_grad_dense(&model_b, entries, 0.95, 0.05);
                adam_b.step(&mut model_b, &g, 0.05);
            },
        );
        let mut model_a = model.clone();
        let mut adam_a = Adam::new(&model_a);
        let after = run_bench(
            &format!("epoch_l2/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                rewritten_loss_and_grad_ws(&model_a, entries, 0.95, 0.05, &ws, &mut grads);
                adam_a.step(&mut model_a, &grads, 0.05);
            },
        );
        speedups.push((t, before.mean_ns / after.mean_ns));
        results.push(before);
        results.push(after);
    }

    // --- Allocations per epoch (steady state, 4 threads) -----------------
    // Both paths warmed above. Measured at two tensor sizes: the sparse
    // path's count must stay flat while the dense path's roughly halves
    // with the entry count (one Grads per chunk).
    set_num_threads(Some(4));
    let half = &entries[..entries.len() / 2];
    // One warm call per shape so pool/result capacities reach steady state.
    grads.set_zero();
    rewritten_loss_and_grad_ws(&model, half, 0.95, 0.05, &ws, &mut grads);
    let sparse_full = allocs_during(|| {
        grads.set_zero();
        black_box(rewritten_loss_and_grad_ws(
            &model, entries, 0.95, 0.05, &ws, &mut grads,
        ));
    });
    let sparse_half = allocs_during(|| {
        grads.set_zero();
        black_box(rewritten_loss_and_grad_ws(
            &model, half, 0.95, 0.05, &ws, &mut grads,
        ));
    });
    let dense_full = allocs_during(|| {
        black_box(reference::rewritten_loss_and_grad_dense(
            &model, entries, 0.95, 0.05,
        ));
    });
    let dense_half = allocs_during(|| {
        black_box(reference::rewritten_loss_and_grad_dense(
            &model, half, 0.95, 0.05,
        ));
    });
    set_num_threads(None);
    println!(
        "allocations/epoch  dense: {dense_full} (full) / {dense_half} (half)   \
         sparse: {sparse_full} (full) / {sparse_half} (half)"
    );
    for (t, s) in &speedups {
        println!("epoch speedup at {t} thread(s): {s:.2}×");
    }

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"train_kernels\",\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"max_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"allocations_per_epoch\": {{\n    \"entries_full\": {},\n    \
         \"entries_half\": {},\n    \"dense_before_full\": {dense_full},\n    \
         \"dense_before_half\": {dense_half},\n    \
         \"sparse_after_full\": {sparse_full},\n    \
         \"sparse_after_half\": {sparse_half}\n  }},\n",
        entries.len(),
        half.len(),
    ));
    json.push_str("  \"epoch_speedup\": {");
    for (i, (t, s)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { ", " };
        json.push_str(&format!("\"t{t}\": {s:.3}{sep}"));
    }
    json.push_str("}\n}\n");
    std::fs::write("BENCH_train_kernels.json", json).expect("write BENCH_train_kernels.json");
    println!("wrote BENCH_train_kernels.json");
}
