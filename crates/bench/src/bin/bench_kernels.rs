//! Training hot-path kernel benchmark: sparse chunk-local gradients and
//! pooled workspaces (the "after" path) against the retained dense-chunk
//! reference implementations (the "before" path), plus the cache-blocked
//! matmul/gram kernels, at 1/2/4 worker threads.
//!
//! Emits `BENCH_train_kernels.json` into the current directory:
//! Criterion-shim-shaped `benchmarks` entries (mean/min/max ns per op)
//! plus two extra sections the shim cannot produce —
//!
//! * `allocations_per_epoch`: heap allocations during one steady-state
//!   epoch-gradient evaluation (pools warmed), counted by a global
//!   counting allocator **in this binary only**, at two tensor sizes.
//!   The sparse path's count must not scale with the chunk count; the
//!   dense path's does (one `Grads`-sized buffer per chunk).
//! * `epoch_speedup`: before/after throughput ratio of a full training
//!   epoch (L₂ gradients + Adam step) per thread count. The epoch fixture
//!   disables the Hausdorff head (the λ = 0 ablation of Table II) because
//!   the head's cost is dominated by per-user slice evaluation, which
//!   this rewrite leaves untouched — the head is timed separately.
//!
//! `TCSS_BENCH_SMOKE=1` shrinks every fixture to CI-smoke sizes: the run
//! finishes in seconds and only the JSON shape is meaningful.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tcss_core::loss::reference;
use tcss_core::{
    negative_sampling_loss_and_grad_ws, random_init, rewritten_loss_and_grad_ws, Grads,
    HausdorffVariant, SocialHausdorffHead, TcssModel, TrainWorkspace,
};
use tcss_data::synth::{generate, SynthConfig};
use tcss_data::{Dataset, Granularity, SynthPreset};
use tcss_linalg::{set_num_threads, Matrix};

// --- Counting allocator (bench binary only) ------------------------------

/// Forwards to the system allocator, counting every allocation. The
/// production crates never see this: `#[global_allocator]` only applies to
/// this binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count over one invocation of `f`.
fn allocs_during(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

// --- Timing --------------------------------------------------------------

struct BenchResult {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Warm up, calibrate a batch size so each sample runs ≥ `target_ns`, then
/// take `samples` timed batches (same scheme as the criterion shim, which
/// is a dev-dependency and so unavailable to a `src/bin` binary).
fn run_bench(name: &str, samples: usize, target_ns: u64, mut f: impl FnMut()) -> BenchResult {
    f(); // warmup
    let t0 = Instant::now();
    f();
    let once = (t0.elapsed().as_nanos() as u64).max(1);
    let iters = (target_ns / once).clamp(1, 100_000);
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_op.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let mean = per_op.iter().sum::<f64>() / per_op.len() as f64;
    let min = per_op.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_op.iter().cloned().fold(0.0f64, f64::max);
    println!("{name:<44} {:>12.0} ns/op  (n={samples}×{iters})", mean);
    BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples,
    }
}

// --- Local Adam (mirror of the trainer's update, for the epoch bench) ----

struct Adam {
    m: Grads,
    v: Grads,
    t: u64,
}

impl Adam {
    fn new(model: &TcssModel) -> Self {
        Adam {
            m: Grads::zeros(model),
            v: Grads::zeros(model),
            t: 0,
        }
    }

    fn step(&mut self, model: &mut TcssModel, g: &Grads, lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        fn upd(
            w: &mut [f64],
            g: &[f64],
            m: &mut [f64],
            v: &mut [f64],
            lr: f64,
            bc1: f64,
            bc2: f64,
        ) {
            for idx in 0..w.len() {
                m[idx] = B1 * m[idx] + (1.0 - B1) * g[idx];
                v[idx] = B2 * v[idx] + (1.0 - B2) * g[idx] * g[idx];
                w[idx] -= lr * ((m[idx] / bc1) / ((v[idx] / bc2).sqrt() + EPS));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        upd(
            model.u1.as_mut_slice(),
            g.u1.as_slice(),
            self.m.u1.as_mut_slice(),
            self.v.u1.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            model.u2.as_mut_slice(),
            g.u2.as_slice(),
            self.m.u2.as_mut_slice(),
            self.v.u2.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            model.u3.as_mut_slice(),
            g.u3.as_slice(),
            self.m.u3.as_mut_slice(),
            self.v.u3.as_mut_slice(),
            lr,
            bc1,
            bc2,
        );
        upd(
            &mut model.h,
            &g.h,
            &mut self.m.h,
            &mut self.v.h,
            lr,
            bc1,
            bc2,
        );
    }
}

// --- Fixtures ------------------------------------------------------------

/// Large sparse fixture for the L₂/epoch benchmarks: enough check-ins that
/// the entry loop spans ~100 chunks, so per-chunk buffer overhead (what
/// this PR removes) is visible next to the arithmetic.
fn epoch_fixture(smoke: bool) -> Dataset {
    if smoke {
        SynthPreset::Gmu5k.generate()
    } else {
        generate(&SynthConfig {
            name: "bench-epoch-synth".into(),
            seed: 2026,
            n_users: 600,
            n_pois: 3000,
            n_clusters: 12,
            n_communities: 8,
            avg_checkins_per_user: 170,
            ..SynthPreset::Gowalla.config()
        })
    }
}

fn main() {
    let smoke = std::env::var("TCSS_BENCH_SMOKE").is_ok();
    let samples = if smoke { 2 } else { 7 };
    let target_ns: u64 = if smoke { 500_000 } else { 20_000_000 };
    let threads = [1usize, 2, 4];
    let mut results: Vec<BenchResult> = Vec::new();

    // --- matmul / gram ---------------------------------------------------
    let (m, n, p) = if smoke { (32, 24, 16) } else { (384, 256, 192) };
    let a = Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) % 97) as f64 * 0.013 - 0.5);
    let b = Matrix::from_fn(n, p, |i, j| ((i * 13 + j * 29) % 89) as f64 * 0.011 - 0.4);
    let (gr, gc) = if smoke { (48, 8) } else { (512, 96) };
    let g = Matrix::from_fn(gr, gc, |i, j| ((i * 7 + j * 41) % 83) as f64 * 0.017 - 0.6);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("matmul_{m}x{n}x{p}/t{t}"),
            samples,
            target_ns,
            || {
                black_box(a.matmul(&b).expect("shapes agree"));
            },
        ));
        results.push(run_bench(
            &format!("gram_{gr}x{gc}/t{t}"),
            samples,
            target_ns,
            || {
                black_box(g.gram());
            },
        ));
    }

    // --- L₂ heads: dense reference vs sparse+pooled ----------------------
    let data = epoch_fixture(smoke);
    let train = if smoke {
        data.checkins.iter().take(1500).copied().collect()
    } else {
        data.checkins.clone()
    };
    let tensor = data.tensor_from(&train, Granularity::Month);
    let entries = tensor.entries();
    println!(
        "epoch fixture: {} users × {} POIs, {} tensor entries",
        data.n_users,
        data.n_pois(),
        entries.len()
    );
    let (u1, u2, u3) = random_init(tensor.dims(), 10, 7);
    let model = TcssModel::new(u1, u2, u3);
    let ws = TrainWorkspace::new();
    let mut grads = Grads::zeros(&model);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("l2_rewritten/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                black_box(reference::rewritten_loss_and_grad_dense(
                    &model, entries, 0.95, 0.05,
                ));
            },
        ));
        results.push(run_bench(
            &format!("l2_rewritten/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                black_box(rewritten_loss_and_grad_ws(
                    &model, entries, 0.95, 0.05, &ws, &mut grads,
                ));
            },
        ));
        results.push(run_bench(
            &format!("negative_sampling/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                black_box(reference::negative_sampling_loss_and_grad_dense(
                    &model, &tensor, 0.95, 0.05, 42,
                ));
            },
        ));
        results.push(run_bench(
            &format!("negative_sampling/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                black_box(negative_sampling_loss_and_grad_ws(
                    &model, &tensor, 0.95, 0.05, 42, &ws, &mut grads,
                ));
            },
        ));
    }

    // --- Social-Hausdorff head -------------------------------------------
    // Timed on the Gowalla preset with a candidate cap: the head's cost is
    // dominated by the per-user J×K slice evaluation (unchanged here), so
    // its before/after delta is modest by design — see DESIGN.md.
    let (hdata, htrain, cap) = if smoke {
        (data, train, Some(8))
    } else {
        let d = SynthPreset::Gowalla.generate();
        let t = d.checkins.clone();
        (d, t, Some(32))
    };
    let htensor = hdata.tensor_from(&htrain, Granularity::Month);
    let (hu1, hu2, hu3) = random_init(htensor.dims(), 10, 7);
    let hmodel = TcssModel::new(hu1, hu2, hu3);
    let head = SocialHausdorffHead::new(
        &hdata,
        &htrain,
        HausdorffVariant::Social,
        Default::default(),
        cap,
    );
    let hws = TrainWorkspace::new();
    let mut hgrads = Grads::zeros(&hmodel);
    for t in threads {
        set_num_threads(Some(t));
        results.push(run_bench(
            &format!("hausdorff_head/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                hgrads.set_zero();
                black_box(head.loss_and_grad_dense(&hmodel, &mut hgrads, 240.0));
            },
        ));
        results.push(run_bench(
            &format!("hausdorff_head/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                hgrads.set_zero();
                black_box(head.loss_and_grad_ws(&hmodel, &mut hgrads, 240.0, &hws));
            },
        ));
    }

    // --- Full epoch: L₂ gradients + Adam step (λ = 0 ablation config) ----
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for t in threads {
        set_num_threads(Some(t));
        let mut model_b = model.clone();
        let mut adam_b = Adam::new(&model_b);
        let before = run_bench(
            &format!("epoch_l2/dense_before/t{t}"),
            samples,
            target_ns,
            || {
                let (_, g) =
                    reference::rewritten_loss_and_grad_dense(&model_b, entries, 0.95, 0.05);
                adam_b.step(&mut model_b, &g, 0.05);
            },
        );
        let mut model_a = model.clone();
        let mut adam_a = Adam::new(&model_a);
        let after = run_bench(
            &format!("epoch_l2/sparse_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                rewritten_loss_and_grad_ws(&model_a, entries, 0.95, 0.05, &ws, &mut grads);
                adam_a.step(&mut model_a, &grads, 0.05);
            },
        );
        speedups.push((t, before.mean_ns / after.mean_ns));
        results.push(before);
        results.push(after);
    }

    // --- Allocations per epoch (steady state, 4 threads) -----------------
    // Both paths warmed above. Measured at two tensor sizes: the sparse
    // path's count must stay flat while the dense path's roughly halves
    // with the entry count (one Grads per chunk).
    set_num_threads(Some(4));
    let half = &entries[..entries.len() / 2];
    // One warm call per shape so pool/result capacities reach steady state.
    grads.set_zero();
    rewritten_loss_and_grad_ws(&model, half, 0.95, 0.05, &ws, &mut grads);
    let sparse_full = allocs_during(|| {
        grads.set_zero();
        black_box(rewritten_loss_and_grad_ws(
            &model, entries, 0.95, 0.05, &ws, &mut grads,
        ));
    });
    let sparse_half = allocs_during(|| {
        grads.set_zero();
        black_box(rewritten_loss_and_grad_ws(
            &model, half, 0.95, 0.05, &ws, &mut grads,
        ));
    });
    let dense_full = allocs_during(|| {
        black_box(reference::rewritten_loss_and_grad_dense(
            &model, entries, 0.95, 0.05,
        ));
    });
    let dense_half = allocs_during(|| {
        black_box(reference::rewritten_loss_and_grad_dense(
            &model, half, 0.95, 0.05,
        ));
    });
    set_num_threads(None);
    println!(
        "allocations/epoch  dense: {dense_full} (full) / {dense_half} (half)   \
         sparse: {sparse_full} (full) / {sparse_half} (half)"
    );
    for (t, s) in &speedups {
        println!("epoch speedup at {t} thread(s): {s:.2}×");
    }

    // --- SIMD lane-kernel micro-benchmarks -------------------------------
    // Each lane kernel against its scalar counterpart (the index-based
    // loop shape the hot paths used before `tcss_linalg::kernels`), single
    // threaded. GFLOP/s = useful flops / mean ns.
    set_num_threads(Some(1));
    struct KernelBench {
        name: String,
        n: usize,
        flops: u64,
        kernel_ns: f64,
        scalar_ns: f64,
    }
    let mut kernel_benches: Vec<KernelBench> = Vec::new();
    let big = 4096usize;
    let rank = 10usize; // the training rank — the size predict/backprop run at
    let mk = |len: usize, seed: usize| -> Vec<f64> {
        (0..len)
            .map(|i| ((i * 37 + seed * 101) % 211) as f64 * 0.009 - 0.8)
            .collect()
    };
    {
        let mut bench_pair = |name: &str,
                              n: usize,
                              flops: u64,
                              kernel: &mut dyn FnMut(),
                              scalar: &mut dyn FnMut()| {
            let k = run_bench(
                &format!("simd/{name}/kernel"),
                samples,
                target_ns / 4,
                kernel,
            );
            let s = run_bench(
                &format!("simd/{name}/scalar"),
                samples,
                target_ns / 4,
                scalar,
            );
            println!(
                "  {name:<24} {:>7.2} GFLOP/s kernel vs {:>7.2} scalar  ({:.2}x)",
                flops as f64 / k.mean_ns,
                flops as f64 / s.mean_ns,
                s.mean_ns / k.mean_ns
            );
            kernel_benches.push(KernelBench {
                name: name.to_string(),
                n,
                flops,
                kernel_ns: k.mean_ns,
                scalar_ns: s.mean_ns,
            });
        };
        let (xa, xb, xc, xd) = (mk(big, 1), mk(big, 2), mk(big, 3), mk(big, 4));
        let (ra, rb, rc, rd) = (mk(rank, 5), mk(rank, 6), mk(rank, 7), mk(rank, 8));
        bench_pair(
            &format!("dot_{big}"),
            big,
            2 * big as u64,
            &mut || {
                black_box(tcss_linalg::kernels::dot(black_box(&xa), black_box(&xb)));
            },
            &mut || {
                black_box(scalar_kernels::dot(black_box(&xa), black_box(&xb)));
            },
        );
        bench_pair(
            &format!("dot4_{big}"),
            big,
            4 * big as u64,
            &mut || {
                black_box(tcss_linalg::kernels::dot4(
                    black_box(&xa),
                    black_box(&xb),
                    black_box(&xc),
                    black_box(&xd),
                ));
            },
            &mut || {
                black_box(scalar_kernels::dot4(
                    black_box(&xa),
                    black_box(&xb),
                    black_box(&xc),
                    black_box(&xd),
                ));
            },
        );
        bench_pair(
            &format!("dot4_rank{rank}"),
            rank,
            4 * rank as u64,
            &mut || {
                black_box(tcss_linalg::kernels::dot4(
                    black_box(&ra),
                    black_box(&rb),
                    black_box(&rc),
                    black_box(&rd),
                ));
            },
            &mut || {
                black_box(scalar_kernels::dot4(
                    black_box(&ra),
                    black_box(&rb),
                    black_box(&rc),
                    black_box(&rd),
                ));
            },
        );
        bench_pair(
            &format!("sum_{big}"),
            big,
            big as u64,
            &mut || {
                black_box(tcss_linalg::kernels::sum(black_box(&xa)));
            },
            &mut || {
                black_box(scalar_kernels::sum(black_box(&xa)));
            },
        );
        let mut ybuf = mk(big, 9);
        let mut bench_pair_y = |name: &str,
                                n: usize,
                                flops: u64,
                                y: &mut Vec<f64>,
                                kernel: &mut dyn FnMut(&mut [f64]),
                                scalar: &mut dyn FnMut(&mut [f64])| {
            let k = run_bench(
                &format!("simd/{name}/kernel"),
                samples,
                target_ns / 4,
                || {
                    kernel(black_box(&mut y[..]));
                },
            );
            let s = run_bench(
                &format!("simd/{name}/scalar"),
                samples,
                target_ns / 4,
                || {
                    scalar(black_box(&mut y[..]));
                },
            );
            println!(
                "  {name:<24} {:>7.2} GFLOP/s kernel vs {:>7.2} scalar  ({:.2}x)",
                flops as f64 / k.mean_ns,
                flops as f64 / s.mean_ns,
                s.mean_ns / k.mean_ns
            );
            kernel_benches.push(KernelBench {
                name: name.to_string(),
                n,
                flops,
                kernel_ns: k.mean_ns,
                scalar_ns: s.mean_ns,
            });
        };
        bench_pair_y(
            &format!("axpy_{big}"),
            big,
            2 * big as u64,
            &mut ybuf,
            &mut |y| tcss_linalg::kernels::axpy(1e-9, &xa, y),
            &mut |y| scalar_kernels::axpy(1e-9, &xa, y),
        );
        let (qa, qb, qc, qd) = (mk(big, 10), mk(big, 11), mk(big, 12), mk(big, 13));
        let mut qy = mk(big, 14);
        bench_pair_y(
            &format!("fused_mul3_axpy_{big}"),
            big,
            4 * big as u64,
            &mut qy,
            &mut |y| tcss_linalg::kernels::fused_mul3_axpy(1e-9, &qa, &qb, &qc, y),
            &mut |y| scalar_kernels::fused_mul3_axpy(1e-9, &qa, &qb, &qc, y),
        );
        let w = [1e-9, -1e-9, 2e-9, -2e-9];
        let mut wy = mk(big, 15);
        bench_pair_y(
            &format!("update_row_quad_{big}"),
            big,
            8 * big as u64,
            &mut wy,
            &mut |y| tcss_linalg::kernels::update_row_quad(y, w, &qa, &qb, &qc, &qd),
            &mut |y| scalar_kernels::update_row_quad(y, w, &qa, &qb, &qc, &qd),
        );
    }

    // --- SIMD epoch: scalar pre-kernel arithmetic vs lane kernels ---------
    // Before = `scalar_before`: the sparse-delta + pooled-workspace epoch
    // exactly as it ran before the lane kernels landed (index loops,
    // sequential reductions, scalar Gram/matmul in the whole-data term).
    // After = the production path. Same algorithm on both sides — the delta
    // is purely the kernel rewrite.
    let pools = scalar_before::Pools::default();
    let mut simd_epoch: Vec<(usize, f64, f64)> = Vec::new();
    for t in threads {
        set_num_threads(Some(t));
        let mut model_b = model.clone();
        let mut adam_b = Adam::new(&model_b);
        let before = run_bench(
            &format!("epoch_simd/scalar_before/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                scalar_before::rewritten_loss_and_grad(
                    &model_b, entries, 0.95, 0.05, &pools, &mut grads,
                );
                adam_b.step(&mut model_b, &grads, 0.05);
            },
        );
        let mut model_a = model.clone();
        let mut adam_a = Adam::new(&model_a);
        let after = run_bench(
            &format!("epoch_simd/kernel_after/t{t}"),
            samples,
            target_ns,
            || {
                grads.set_zero();
                rewritten_loss_and_grad_ws(&model_a, entries, 0.95, 0.05, &ws, &mut grads);
                adam_a.step(&mut model_a, &grads, 0.05);
            },
        );
        println!(
            "epoch (simd) speedup at {t} thread(s): {:.2}x",
            before.mean_ns / after.mean_ns
        );
        simd_epoch.push((t, before.mean_ns, after.mean_ns));
    }
    set_num_threads(None);

    // --- JSON -------------------------------------------------------------
    let mut json = String::from("{\n  \"group\": \"train_kernels\",\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"max_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"allocations_per_epoch\": {{\n    \"entries_full\": {},\n    \
         \"entries_half\": {},\n    \"dense_before_full\": {dense_full},\n    \
         \"dense_before_half\": {dense_half},\n    \
         \"sparse_after_full\": {sparse_full},\n    \
         \"sparse_after_half\": {sparse_half}\n  }},\n",
        entries.len(),
        half.len(),
    ));
    json.push_str("  \"epoch_speedup\": {");
    for (i, (t, s)) in speedups.iter().enumerate() {
        let sep = if i + 1 == speedups.len() { "" } else { ", " };
        json.push_str(&format!("\"t{t}\": {s:.3}{sep}"));
    }
    json.push_str("}\n}\n");
    std::fs::write("BENCH_train_kernels.json", json).expect("write BENCH_train_kernels.json");
    println!("wrote BENCH_train_kernels.json");

    // --- BENCH_simd_kernels.json ------------------------------------------
    let fixture = if smoke {
        format!("gmu5k-smoke ({} entries)", entries.len())
    } else {
        format!("synth-600x3000 ({} entries)", entries.len())
    };
    let mut sj = String::from("{\n  \"group\": \"simd_kernels\",\n");
    sj.push_str(&format!("  \"lanes\": {},\n", tcss_linalg::LANES));
    sj.push_str("  \"kernels\": [\n");
    for (i, k) in kernel_benches.iter().enumerate() {
        let sep = if i + 1 == kernel_benches.len() {
            ""
        } else {
            ","
        };
        sj.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"flops\": {}, \
             \"kernel_ns\": {:.1}, \"scalar_ns\": {:.1}, \
             \"kernel_gflops\": {:.3}, \"scalar_gflops\": {:.3}, \
             \"speedup\": {:.3}}}{sep}\n",
            k.name,
            k.n,
            k.flops,
            k.kernel_ns,
            k.scalar_ns,
            k.flops as f64 / k.kernel_ns,
            k.flops as f64 / k.scalar_ns,
            k.scalar_ns / k.kernel_ns,
        ));
    }
    sj.push_str("  ],\n");
    sj.push_str(&format!(
        "  \"epoch\": {{\n    \"fixture\": \"{fixture}\",\n    \"threads\": [\n"
    ));
    for (i, (t, before_ns, after_ns)) in simd_epoch.iter().enumerate() {
        let sep = if i + 1 == simd_epoch.len() { "" } else { "," };
        sj.push_str(&format!(
            "      {{\"threads\": {t}, \"before_ns\": {before_ns:.1}, \
             \"after_ns\": {after_ns:.1}, \"speedup\": {:.3}}}{sep}\n",
            before_ns / after_ns,
        ));
    }
    sj.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_simd_kernels.json", sj).expect("write BENCH_simd_kernels.json");
    println!("wrote BENCH_simd_kernels.json");
}

// --- Scalar kernel counterparts (micro-benchmark baselines) ---------------

/// The index-based loop shapes the hot paths used before
/// `tcss_linalg::kernels` existed: sequential reductions (one accumulator,
/// left-to-right) and per-element bounds-checked elementwise updates.
// The bounds-checked index loops ARE the baseline being measured; iterator
// rewrites would turn this module into the thing it is compared against.
#[allow(clippy::needless_range_loop)]
mod scalar_kernels {
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..a.len() {
            s += a[i] * b[i];
        }
        s
    }

    pub fn dot4(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..a.len() {
            s += a[i] * b[i] * c[i] * d[i];
        }
        s
    }

    pub fn sum(a: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..a.len() {
            s += a[i];
        }
        s
    }

    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for i in 0..y.len() {
            y[i] += alpha * x[i];
        }
    }

    pub fn fused_mul3_axpy(c: f64, a: &[f64], b: &[f64], d: &[f64], y: &mut [f64]) {
        for i in 0..y.len() {
            y[i] += c * a[i] * b[i] * d[i];
        }
    }

    /// Four separate weighted-row passes — what the tiled matmul/gram inner
    /// loops did per source row before the quad micro-kernel fused them.
    pub fn update_row_quad(
        y: &mut [f64],
        w: [f64; 4],
        r0: &[f64],
        r1: &[f64],
        r2: &[f64],
        r3: &[f64],
    ) {
        for (wk, row) in w.iter().zip([r0, r1, r2, r3]) {
            for i in 0..y.len() {
                y[i] += wk * row[i];
            }
        }
    }
}

// --- Scalar pre-kernel epoch (the "before" side of the SIMD epoch bench) --

/// Self-contained re-implementation of the rewritten-loss epoch exactly as
/// it ran before the lane kernels landed: the same sparse chunk-delta +
/// pooled-workspace algorithm as production, but with index-based rank
/// loops, a single sequential accumulator in `predict`, and scalar
/// Gram/matmul in the whole-data term. Lives in this binary (not the
/// library) so the production crates carry exactly one implementation of
/// each kernel.
// Same rationale as `scalar_kernels`: the index loops are the point.
#[allow(clippy::needless_range_loop)]
mod scalar_before {
    use tcss_core::{Grads, TcssModel};
    use tcss_linalg::{map_chunks_with, Matrix, WorkspacePool};
    use tcss_sparse::TensorEntry;

    const EMPTY: u32 = u32::MAX;
    const ENTRIES_PER_CHUNK: usize = 1024;

    fn predict(m: &TcssModel, i: usize, j: usize, k: usize) -> f64 {
        let r = m.h.len();
        let ui = m.u1.row(i);
        let uj = m.u2.row(j);
        let uk = m.u3.row(k);
        let mut s = 0.0;
        for t in 0..r {
            s += m.h[t] * ui[t] * uj[t] * uk[t];
        }
        s
    }

    #[derive(Default)]
    struct Factor {
        rows: Vec<u32>,
        data: Vec<f64>,
    }

    impl Factor {
        fn row_mut(&mut self, slots: &mut [u32], row: usize, r: usize) -> &mut [f64] {
            let mut slot = slots[row];
            if slot == EMPTY {
                slot = self.rows.len() as u32;
                slots[row] = slot;
                self.rows.push(row as u32);
                self.data.resize(self.data.len() + r, 0.0);
            }
            let lo = slot as usize * r;
            &mut self.data[lo..lo + r]
        }

        fn scatter_into(&self, r: usize, dense: &mut Matrix) {
            for (slot, &row) in self.rows.iter().enumerate() {
                let src = &self.data[slot * r..(slot + 1) * r];
                for (d, &s) in dense.row_mut(row as usize).iter_mut().zip(src) {
                    *d += s;
                }
            }
        }

        fn detach(&self, slots: &mut [u32]) {
            for &row in &self.rows {
                slots[row as usize] = EMPTY;
            }
        }

        fn clear(&mut self) {
            self.rows.clear();
            self.data.clear();
        }
    }

    #[derive(Default)]
    pub struct Delta {
        r: usize,
        u1: Factor,
        u2: Factor,
        u3: Factor,
        h: Vec<f64>,
    }

    impl Delta {
        fn begin(&mut self, m: &TcssModel) {
            self.r = m.h.len();
            self.u1.clear();
            self.u2.clear();
            self.u3.clear();
            self.h.clear();
            self.h.resize(self.r, 0.0);
        }

        fn detach(&self, slots: &mut Slots) {
            self.u1.detach(&mut slots.s1);
            self.u2.detach(&mut slots.s2);
            self.u3.detach(&mut slots.s3);
        }

        fn scatter_into(&self, grads: &mut Grads) {
            self.u1.scatter_into(self.r, &mut grads.u1);
            self.u2.scatter_into(self.r, &mut grads.u2);
            self.u3.scatter_into(self.r, &mut grads.u3);
            for (d, &s) in grads.h.iter_mut().zip(self.h.iter()) {
                *d += s;
            }
        }
    }

    pub struct Slots {
        s1: Vec<u32>,
        s2: Vec<u32>,
        s3: Vec<u32>,
    }

    impl Slots {
        fn for_model(m: &TcssModel) -> Self {
            let (i, j, k) = m.dims();
            Slots {
                s1: vec![EMPTY; i],
                s2: vec![EMPTY; j],
                s3: vec![EMPTY; k],
            }
        }

        fn ensure(&mut self, m: &TcssModel) {
            let (i, j, k) = m.dims();
            if self.s1.len() != i || self.s2.len() != j || self.s3.len() != k {
                *self = Slots::for_model(m);
            }
        }
    }

    #[derive(Default)]
    pub struct Pools {
        slots: WorkspacePool<Slots>,
        deltas: WorkspacePool<Delta>,
    }

    fn backprop(
        m: &TcssModel,
        d: &mut Delta,
        sl: &mut Slots,
        i: usize,
        j: usize,
        k: usize,
        c: f64,
    ) {
        let r = m.h.len();
        let ui = m.u1.row(i);
        let uj = m.u2.row(j);
        let uk = m.u3.row(k);
        let g1 = d.u1.row_mut(&mut sl.s1, i, r);
        for t in 0..r {
            g1[t] += c * m.h[t] * uj[t] * uk[t];
        }
        let g2 = d.u2.row_mut(&mut sl.s2, j, r);
        for t in 0..r {
            g2[t] += c * m.h[t] * ui[t] * uk[t];
        }
        let g3 = d.u3.row_mut(&mut sl.s3, k, r);
        for t in 0..r {
            g3[t] += c * m.h[t] * ui[t] * uj[t];
        }
        for t in 0..r {
            d.h[t] += c * ui[t] * uj[t] * uk[t];
        }
    }

    fn gram_scalar(m: &Matrix) -> Matrix {
        let r = m.cols();
        let mut g = Matrix::zeros(r, r);
        for i in 0..m.rows() {
            let row = m.row(i);
            for a in 0..r {
                let ra = row[a];
                for b in a..r {
                    *g.get_mut(a, b) += ra * row[b];
                }
            }
        }
        for a in 0..r {
            for b in 0..a {
                let v = g.get(b, a);
                *g.get_mut(a, b) = v;
            }
        }
        g
    }

    /// `out += 2 · u · d` via the textbook scalar triple loop.
    fn add_2ud(u: &Matrix, d: &Matrix, out: &mut Matrix) {
        let r = d.rows();
        for i in 0..u.rows() {
            let urow = u.row(i);
            let orow = out.row_mut(i);
            for c in 0..r {
                let mut acc = 0.0;
                for t in 0..r {
                    acc += urow[t] * d.get(t, c);
                }
                orow[c] += 2.0 * acc;
            }
        }
    }

    fn whole_data_term(model: &TcssModel, w_minus: f64, loss: &mut f64, grads: &mut Grads) {
        let r = model.h.len();
        let g1 = gram_scalar(&model.u1);
        let g2 = gram_scalar(&model.u2);
        let g3 = gram_scalar(&model.u3);
        let mut d1 = Matrix::zeros(r, r);
        let mut d2 = Matrix::zeros(r, r);
        let mut d3 = Matrix::zeros(r, r);
        for r1 in 0..r {
            for r2 in 0..r {
                let w = w_minus * model.h[r1] * model.h[r2];
                *loss += w * (g1.get(r1, r2) * g2.get(r1, r2) * g3.get(r1, r2));
                *d1.get_mut(r1, r2) = w * g2.get(r1, r2) * g3.get(r1, r2);
                *d2.get_mut(r1, r2) = w * g1.get(r1, r2) * g3.get(r1, r2);
                *d3.get_mut(r1, r2) = w * g1.get(r1, r2) * g2.get(r1, r2);
            }
        }
        add_2ud(&model.u1, &d1, &mut grads.u1);
        add_2ud(&model.u2, &d2, &mut grads.u2);
        add_2ud(&model.u3, &d3, &mut grads.u3);
        for r1 in 0..r {
            let mut acc = 0.0;
            for r2 in 0..r {
                acc += model.h[r2] * g1.get(r1, r2) * g2.get(r1, r2) * g3.get(r1, r2);
            }
            grads.h[r1] += 2.0 * w_minus * acc;
        }
    }

    /// Scalar-arithmetic clone of `tcss_core::rewritten_loss_and_grad_ws`:
    /// same chunk grid, same sparse deltas, same pooling — only the inner
    /// loops differ.
    pub fn rewritten_loss_and_grad(
        model: &TcssModel,
        positives: &[TensorEntry],
        w_plus: f64,
        w_minus: f64,
        pools: &Pools,
        grads: &mut Grads,
    ) -> f64 {
        let partials = map_chunks_with(
            positives.len(),
            ENTRIES_PER_CHUNK,
            || {
                let mut s = pools.slots.acquire(|| Slots::for_model(model));
                s.ensure(model);
                s
            },
            |slots, range| {
                let mut delta = pools.deltas.take(Delta::default);
                delta.begin(model);
                let mut loss = 0.0;
                for e in &positives[range] {
                    let s = predict(model, e.i, e.j, e.k);
                    loss += (w_plus - w_minus) * s * s - 2.0 * w_plus * e.value * s;
                    let c = 2.0 * (w_plus - w_minus) * s - 2.0 * w_plus * e.value;
                    backprop(model, &mut delta, slots, e.i, e.j, e.k, c);
                }
                delta.detach(slots);
                (loss, delta)
            },
        );
        let mut loss = 0.0;
        for (l, delta) in partials {
            loss += l;
            delta.scatter_into(grads);
            pools.deltas.put(delta);
        }
        whole_data_term(model, w_minus, &mut loss, grads);
        loss
    }
}
