//! Figure 13 — score along the time dimension: for a fixed (user, POI)
//! pair, how does each model's score vary over the 12 months, (a) for an
//! observed interaction and (b) for a negative (never-observed) pair?
//!
//! Paper shape to reproduce: TCSS gives the observed pair high scores
//! (peaking at the observed months) and keeps the negative pair near 0;
//! baselines are flatter / noisier.

use tcss_baselines::{cp::CpConfig, ncf::NeuralConfig, CpModel, Ncf, TuckerModel};
use tcss_bench::prepare;
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;

fn main() {
    let p = prepare(SynthPreset::Gowalla);
    let trainer = TcssTrainer::new(
        &p.data,
        &p.split.train,
        p.granularity,
        TcssConfig::default(),
    );
    let tcss = trainer.train(|_, _| {});
    let cp = CpModel::fit(&p.data, &p.split.train, p.granularity, &CpConfig::default());
    let tucker = TuckerModel::fit(&p.data, &p.split.train, p.granularity, &CpConfig::default());
    let ncf = Ncf::fit(
        &p.data,
        &p.split.train,
        p.granularity,
        &NeuralConfig::default(),
    );

    // (a) an observed train entry the model fits well (the paper picks "a
    // randomly selected observed entry"; we additionally require a decent
    // fit so the curve is representative of recovered check-ins);
    // (b) a random negative pair.
    let obs = p
        .split
        .train
        .iter()
        .copied()
        .find(|c| tcss.predict(c.user, c.poi, c.month as usize) > 0.7)
        .unwrap_or(p.split.train[p.split.train.len() / 2]);
    let tensor = &trainer.tensor;
    let (mut ni, mut nj) = (obs.user, (obs.poi + 97) % p.data.n_pois());
    'outer: for cand_i in 0..p.data.n_users {
        for cand_j in 0..p.data.n_pois() {
            let any_obs = (0..12).any(|k| tensor.contains(cand_i, cand_j, k));
            if !any_obs {
                (ni, nj) = (cand_i, cand_j);
                break 'outer;
            }
        }
    }

    println!("=== Fig 13: score along the time dimension (Gowalla) ===");
    for (tag, (i, j)) in [
        (
            format!(
                "(a) observed entry: user {}, poi {} (checked in month {})",
                obs.user, obs.poi, obs.month
            ),
            (obs.user, obs.poi),
        ),
        (format!("(b) negative entry: user {ni}, poi {nj}"), (ni, nj)),
    ] {
        println!("\n{tag}");
        println!("{:<8} scores for months 0..12", "model");
        for (name, f) in [
            (
                "TCSS",
                Box::new(|k: usize| tcss.predict(i, j, k)) as Box<dyn Fn(usize) -> f64>,
            ),
            ("CP", Box::new(|k: usize| cp.score(i, j, k))),
            ("Tucker", Box::new(|k: usize| tucker.score(i, j, k))),
            ("NCF", Box::new(|k: usize| ncf.score(i, j, k))),
        ] {
            print!("{name:<8}");
            for k in 0..12 {
                print!(" {:>6.3}", f(k));
            }
            println!();
        }
    }
}
