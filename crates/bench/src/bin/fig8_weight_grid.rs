//! Figure 8 — effect of different weight combinations on the Gowalla
//! preset: RMSE and MRR as `w₊` varies with `w₋` fixed (two panels:
//! `w₋ = 0.1` and `w₋ = 0.01`).
//!
//! Paper shape to reproduce: for fixed `w₋`, MRR rises and RMSE falls as
//! `w₊` grows (positives need much more weight than the unlabeled mass).

use std::collections::HashSet;
use tcss_bench::prepare;
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::SynthPreset;
use tcss_eval::{evaluate_ranking, rmse_positive_negative};

fn main() {
    let p = prepare(SynthPreset::Gowalla);
    let observed: HashSet<(usize, usize, usize)> = p
        .data
        .checkins
        .iter()
        .map(|c| (c.user, c.poi, p.granularity.index(c)))
        .collect();
    println!("=== Fig 8: effect of weight combinations (Gowalla) ===");
    for wm in [0.1, 0.01] {
        println!("\n--- w- = {wm} ---");
        println!(
            "{:>6} {:>10} {:>10} {:>8} {:>8}",
            "w+", "RM-pos", "RM-neg", "Hit@10", "MRR"
        );
        for wp in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let cfg = TcssConfig {
                w_plus: wp,
                w_minus: wm,
                ..Default::default()
            };
            let trainer = TcssTrainer::new(&p.data, &p.split.train, p.granularity, cfg);
            let model = trainer.train(|_, _| {});
            let metrics = evaluate_ranking(&p.split.test, p.data.n_pois(), &p.eval, |i, j, k| {
                model.predict(i, j, k)
            });
            let (rm_pos, rm_neg) = rmse_positive_negative(
                &p.split.test,
                p.data.n_pois(),
                &p.eval,
                |i, j, k| model.predict(i, j, k),
                |i, j, k| observed.contains(&(i, j, k)),
            );
            println!(
                "{:>6} {:>10.4} {:>10.4} {:>8.4} {:>8.4}",
                wp, rm_pos, rm_neg, metrics.hit_at_k, metrics.mrr
            );
        }
    }
}
