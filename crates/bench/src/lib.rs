//! # tcss-bench
//!
//! The experiment harness: one binary per table/figure of the TCSS paper
//! (see `DESIGN.md` §4 for the index) plus Criterion microbenchmarks.
//!
//! Run an experiment with
//! `cargo run --release -p tcss-bench --bin <name>`; every binary prints
//! the rows/series of its table or figure to stdout. `EXPERIMENTS.md`
//! records the outputs next to the paper's numbers.

pub mod runner;

pub use runner::{
    prepare, prepare_dataset, prepare_with, row, run_model, run_tcss, ModelName, ModelResult,
    Prepared,
};
