//! Shared experiment plumbing: dataset preparation and the fit-and-evaluate
//! driver for every model in Table I.

use std::time::Instant;
use tcss_baselines::{
    cp::CpConfig, lfbca::LfbcaConfig, mcco::MccoConfig, ncf::NeuralConfig, ptucker::PTuckerConfig,
    CoStCo, CpModel, Lfbca, Mcco, Ncf, Ntm, PTucker, PureSvd, Stan, Stgn, Strnn, TuckerModel,
};
use tcss_core::{TcssConfig, TcssTrainer};
use tcss_data::{
    preprocess, train_test_split, Dataset, Granularity, PreprocessConfig, Split, SynthPreset,
};
use tcss_eval::{evaluate_ranking, EvalConfig, RankingMetrics};

/// A preprocessed dataset with its train/test split and eval protocol.
pub struct Prepared {
    /// Preset label (for printing).
    pub label: &'static str,
    /// Preprocessed dataset.
    pub data: Dataset,
    /// 80/20 per-user split.
    pub split: Split,
    /// Granularity (month unless an experiment overrides it).
    pub granularity: Granularity,
    /// Eval protocol.
    pub eval: EvalConfig,
}

/// Generate, preprocess and split a preset.
pub fn prepare(preset: SynthPreset) -> Prepared {
    prepare_with(preset, Granularity::Month)
}

/// Generate, preprocess and split a preset at a chosen granularity.
pub fn prepare_with(preset: SynthPreset, granularity: Granularity) -> Prepared {
    let raw = preset.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
    Prepared {
        label: preset.label(),
        data,
        split,
        granularity,
        eval: EvalConfig {
            granularity,
            ..Default::default()
        },
    }
}

/// Prepare an explicit dataset (already generated/filtered) without
/// additional preprocessing — used by the per-category experiments.
pub fn prepare_dataset(label: &'static str, data: Dataset, granularity: Granularity) -> Prepared {
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
    Prepared {
        label,
        data,
        split,
        granularity,
        eval: EvalConfig {
            granularity,
            ..Default::default()
        },
    }
}

/// Every model of Table I (plus TCSS itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelName {
    /// Nuclear-norm matrix completion (Soft-Impute solver).
    Mcco,
    /// Truncated-SVD matrix completion.
    PureSvd,
    /// Spatial-temporal RNN.
    Strnn,
    /// Spatio-temporal attention network.
    Stan,
    /// Spatio-temporal gated LSTM.
    Stgn,
    /// Location-friendship bookmark colouring.
    Lfbca,
    /// CP decomposition.
    Cp,
    /// Tucker decomposition.
    Tucker,
    /// Row-wise ALS Tucker.
    PTucker,
    /// Neural collaborative filtering.
    Ncf,
    /// Neural tensor machine.
    Ntm,
    /// Convolutional tensor completion.
    CoStCo,
    /// The paper's model.
    Tcss,
}

impl ModelName {
    /// Table I's presentation order.
    pub const ALL: [ModelName; 13] = [
        ModelName::Mcco,
        ModelName::PureSvd,
        ModelName::Strnn,
        ModelName::Stan,
        ModelName::Stgn,
        ModelName::Lfbca,
        ModelName::Cp,
        ModelName::Tucker,
        ModelName::PTucker,
        ModelName::Ncf,
        ModelName::Ntm,
        ModelName::CoStCo,
        ModelName::Tcss,
    ];

    /// Printable name matching the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            ModelName::Mcco => "MCCO",
            ModelName::PureSvd => "PureSVD",
            ModelName::Strnn => "STRNN",
            ModelName::Stan => "STAN",
            ModelName::Stgn => "STGN",
            ModelName::Lfbca => "LFBCA",
            ModelName::Cp => "CP",
            ModelName::Tucker => "Tucker",
            ModelName::PTucker => "P-Tucker",
            ModelName::Ncf => "NCF",
            ModelName::Ntm => "NTM",
            ModelName::CoStCo => "CoSTCo",
            ModelName::Tcss => "TCSS",
        }
    }
}

/// One model's evaluation on one dataset.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// Model identifier.
    pub model: ModelName,
    /// Ranking metrics under the paper's protocol.
    pub metrics: RankingMetrics,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

/// Fit a model on the prepared split and evaluate it.
pub fn run_model(name: ModelName, p: &Prepared) -> ModelResult {
    let start = Instant::now();
    let score: Box<dyn Fn(usize, usize, usize) -> f64> = match name {
        ModelName::Mcco => {
            let m = Mcco::fit(&p.data, &p.split.train, &MccoConfig::default());
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::PureSvd => {
            let m = PureSvd::fit(&p.data, &p.split.train, 10);
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Strnn => {
            let m = Strnn::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Stan => {
            let m = Stan::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Stgn => {
            let m = Stgn::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Lfbca => {
            let m = Lfbca::fit(&p.data, &p.split.train, &LfbcaConfig::default());
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Cp => {
            let m = CpModel::fit(&p.data, &p.split.train, p.granularity, &CpConfig::default());
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Tucker => {
            let m = TuckerModel::fit(&p.data, &p.split.train, p.granularity, &CpConfig::default());
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::PTucker => {
            let m = PTucker::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &PTuckerConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Ncf => {
            let m = Ncf::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Ntm => {
            let m = Ntm::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::CoStCo => {
            let m = CoStCo::fit(
                &p.data,
                &p.split.train,
                p.granularity,
                &NeuralConfig::default(),
            );
            Box::new(move |i, j, k| m.score(i, j, k))
        }
        ModelName::Tcss => return run_tcss(p, TcssConfig::default()),
    };
    let train_secs = start.elapsed().as_secs_f64();
    let metrics = evaluate_ranking(&p.split.test, p.data.n_pois(), &p.eval, |i, j, k| {
        score(i, j, k)
    });
    ModelResult {
        model: name,
        metrics,
        train_secs,
    }
}

/// Fit and evaluate TCSS under an arbitrary configuration (the ablation and
/// sweep experiments reuse this).
///
/// Runs under the divergence watchdog: a sweep point whose hyperparameters
/// blow up is retried with learning-rate backoff and, if it still diverges,
/// aborts the whole experiment with a clear message instead of scoring
/// NaN factors as if they were a result.
pub fn run_tcss(p: &Prepared, config: TcssConfig) -> ModelResult {
    let start = Instant::now();
    let trainer = TcssTrainer::new(&p.data, &p.split.train, p.granularity, config);
    let report = trainer
        .train_with_checkpoints(|_| {})
        .unwrap_or_else(|e| panic!("TCSS training on {} failed: {e}", p.label));
    let model = report.model;
    let train_secs = start.elapsed().as_secs_f64();
    let score = trainer.score_fn(&model);
    let metrics = evaluate_ranking(&p.split.test, p.data.n_pois(), &p.eval, score);
    ModelResult {
        model: ModelName::Tcss,
        metrics,
        train_secs,
    }
}

/// Format one `Model  Hit@10  MRR` table row.
pub fn row(r: &ModelResult) -> String {
    format!(
        "{:<10} {:>8.4} {:>8.4}   ({:>6.1}s train)",
        r.model.label(),
        r.metrics.hit_at_k,
        r.metrics.mrr,
        r.train_secs
    )
}
