//! The LBSN dataset container and its projections.

use tcss_geo::{DistanceMatrix, GeoPoint};
use tcss_graph::SocialGraph;
use tcss_sparse::SparseTensor3;

/// POI category, following the Gowalla grouping used in the paper's
/// category experiments (Figs 4, 5, 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Shopping POIs.
    Shopping,
    /// Entertainment POIs.
    Entertainment,
    /// Restaurants ("food" in the paper's figures).
    Food,
    /// Outdoor POIs (parks, trails, aquatics centers, ski resorts).
    Outdoor,
}

impl Category {
    /// All categories in the paper's presentation order.
    pub const ALL: [Category; 4] = [
        Category::Shopping,
        Category::Entertainment,
        Category::Food,
        Category::Outdoor,
    ];

    /// Lower-case label used in experiment printouts.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Shopping => "shopping",
            Category::Entertainment => "entertainment",
            Category::Food => "food",
            Category::Outdoor => "outdoor",
        }
    }
}

/// A point of interest: a location plus a category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poi {
    /// Geographic location.
    pub location: GeoPoint,
    /// Category label.
    pub category: Category,
}

/// One check-in event. Time is stored at every granularity the paper's
/// experiments use, so one dataset serves the month/week/hour comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckIn {
    /// User index.
    pub user: usize,
    /// POI index.
    pub poi: usize,
    /// Month of year, `0..12`.
    pub month: u8,
    /// Week of year, `0..53`.
    pub week: u8,
    /// Hour of day, `0..24`.
    pub hour: u8,
}

/// Time-axis granularity of the check-in tensor (§V-G of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Month of year (K = 12) — the paper's default.
    Month,
    /// Week of year (K = 53).
    Week,
    /// Hour of day (K = 24).
    Hour,
}

impl Granularity {
    /// Length of the time dimension.
    pub fn len(&self) -> usize {
        match self {
            Granularity::Month => 12,
            Granularity::Week => 53,
            Granularity::Hour => 24,
        }
    }

    /// Granularities are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The time index of a check-in at this granularity.
    pub fn index(&self, c: &CheckIn) -> usize {
        match self {
            Granularity::Month => c.month as usize,
            Granularity::Week => c.week as usize,
            Granularity::Hour => c.hour as usize,
        }
    }

    /// Label used in experiment printouts.
    pub fn label(&self) -> &'static str {
        match self {
            Granularity::Month => "month",
            Granularity::Week => "week",
            Granularity::Hour => "hour",
        }
    }
}

/// A complete LBSN dataset: users, POIs, check-ins, and the social graph.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. "gowalla-synth").
    pub name: String,
    /// Number of users `I` (users are dense indices `0..n_users`).
    pub n_users: usize,
    /// POIs, indexed `0..pois.len()`.
    pub pois: Vec<Poi>,
    /// All check-in events.
    pub checkins: Vec<CheckIn>,
    /// Friendship graph over the users.
    pub social: SocialGraph,
}

impl Dataset {
    /// Number of POIs `J`.
    pub fn n_pois(&self) -> usize {
        self.pois.len()
    }

    /// Build the binary check-in tensor `X ∈ {0,1}^{I×J×K}` from a list of
    /// check-ins (usually a train split) at the given granularity.
    pub fn tensor_from(&self, checkins: &[CheckIn], g: Granularity) -> SparseTensor3 {
        let dims = (self.n_users, self.n_pois(), g.len());
        SparseTensor3::from_entries(
            dims,
            checkins.iter().map(|c| (c.user, c.poi, g.index(c), 1.0)),
        )
        .expect("dataset check-ins are always in range")
        .binarized()
    }

    /// The full-data binary tensor.
    pub fn tensor(&self, g: Granularity) -> SparseTensor3 {
        self.tensor_from(&self.checkins, g)
    }

    /// Pairwise POI distance matrix (haversine km).
    pub fn distance_matrix(&self) -> DistanceMatrix {
        let points: Vec<GeoPoint> = self.pois.iter().map(|p| p.location).collect();
        DistanceMatrix::from_points(&points)
    }

    /// Location entropy per POI (paper Eq 11) over the given check-ins.
    pub fn location_entropy_from(&self, checkins: &[CheckIn]) -> Vec<f64> {
        tcss_geo::location_entropy(self.n_pois(), checkins.iter().map(|c| (c.user, c.poi)))
    }

    /// Restrict to one POI category: POIs are renumbered densely, check-ins
    /// at other categories dropped, users and the social graph kept as-is
    /// (the paper trains per-category tensors over the same user base).
    pub fn filter_category(&self, cat: Category) -> Dataset {
        let mut keep = vec![None; self.pois.len()];
        let mut pois = Vec::new();
        for (j, p) in self.pois.iter().enumerate() {
            if p.category == cat {
                keep[j] = Some(pois.len());
                pois.push(*p);
            }
        }
        let checkins = self
            .checkins
            .iter()
            .filter_map(|c| keep[c.poi].map(|nj| CheckIn { poi: nj, ..*c }))
            .collect();
        Dataset {
            name: format!("{}-{}", self.name, cat.label()),
            n_users: self.n_users,
            pois,
            checkins,
            social: self.social.clone(),
        }
    }

    /// Per-user check-in counts.
    pub fn user_checkin_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_users];
        for c in &self.checkins {
            counts[c.user] += 1;
        }
        counts
    }

    /// Per-POI distinct-visitor counts (the paper filters POIs with fewer
    /// than 50 visitors; our presets use a scaled threshold).
    pub fn poi_visitor_counts(&self) -> Vec<usize> {
        let mut visitors: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); self.n_pois()];
        for c in &self.checkins {
            visitors[c.poi].insert(c.user);
        }
        visitors.into_iter().map(|s| s.len()).collect()
    }

    /// One-line dataset summary (users / POIs / check-ins / density).
    pub fn summary(&self, g: Granularity) -> String {
        let t = self.tensor(g);
        format!(
            "{}: {} users, {} POIs, {} check-ins, K={} ({}), tensor density {:.4}%",
            self.name,
            self.n_users,
            self.n_pois(),
            self.checkins.len(),
            g.len(),
            g.label(),
            t.density() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let pois = vec![
            Poi {
                location: GeoPoint::new(0.0, 0.0),
                category: Category::Food,
            },
            Poi {
                location: GeoPoint::new(0.1, 0.1),
                category: Category::Outdoor,
            },
            Poi {
                location: GeoPoint::new(0.2, 0.0),
                category: Category::Food,
            },
        ];
        let checkins = vec![
            CheckIn {
                user: 0,
                poi: 0,
                month: 0,
                week: 1,
                hour: 12,
            },
            CheckIn {
                user: 0,
                poi: 1,
                month: 6,
                week: 26,
                hour: 9,
            },
            CheckIn {
                user: 1,
                poi: 2,
                month: 6,
                week: 27,
                hour: 20,
            },
            // Duplicate cell at month granularity.
            CheckIn {
                user: 1,
                poi: 2,
                month: 6,
                week: 28,
                hour: 21,
            },
        ];
        Dataset {
            name: "toy".into(),
            n_users: 2,
            pois,
            checkins,
            social: SocialGraph::from_edges(2, vec![(0, 1)]),
        }
    }

    #[test]
    fn tensor_shapes_by_granularity() {
        let d = toy_dataset();
        assert_eq!(d.tensor(Granularity::Month).dims(), (2, 3, 12));
        assert_eq!(d.tensor(Granularity::Week).dims(), (2, 3, 53));
        assert_eq!(d.tensor(Granularity::Hour).dims(), (2, 3, 24));
    }

    #[test]
    fn tensor_is_binary_with_duplicates_collapsed() {
        let d = toy_dataset();
        let t = d.tensor(Granularity::Month);
        // Two check-ins by user 1 at poi 2 in month 6 → single binary entry.
        assert_eq!(t.get(1, 2, 6), 1.0);
        assert_eq!(t.nnz(), 3);
        // Week granularity separates them.
        let tw = d.tensor(Granularity::Week);
        assert_eq!(tw.nnz(), 4);
    }

    #[test]
    fn category_filter_renumbers() {
        let d = toy_dataset();
        let food = d.filter_category(Category::Food);
        assert_eq!(food.n_pois(), 2);
        assert_eq!(food.checkins.len(), 3);
        // POI 2 became POI 1.
        assert!(food.checkins.iter().any(|c| c.user == 1 && c.poi == 1));
        let outdoor = d.filter_category(Category::Outdoor);
        assert_eq!(outdoor.n_pois(), 1);
        assert_eq!(outdoor.checkins.len(), 1);
        assert_eq!(outdoor.checkins[0].poi, 0);
    }

    #[test]
    fn counts_and_entropy() {
        let d = toy_dataset();
        assert_eq!(d.user_checkin_counts(), vec![2, 2]);
        assert_eq!(d.poi_visitor_counts(), vec![1, 1, 1]);
        let e = d.location_entropy_from(&d.checkins);
        // Every POI has a single visitor → zero entropy everywhere.
        assert!(e.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn summary_mentions_name_and_density() {
        let d = toy_dataset();
        let s = d.summary(Granularity::Month);
        assert!(s.contains("toy"));
        assert!(s.contains("2 users"));
    }
}
