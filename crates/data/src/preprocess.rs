//! Dataset preprocessing filters, mirroring §V-A of the paper:
//! keep users with ≥ `min_checkins` check-ins and ≥ `min_friends` friends;
//! keep POIs with ≥ `min_visitors` distinct visitors. Applied iteratively
//! until a fixed point, since dropping POIs can push users under the
//! check-in threshold and vice versa.

use crate::dataset::{CheckIn, Dataset};

/// Thresholds for [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Minimum check-ins per user (paper: 15).
    pub min_checkins: usize,
    /// Minimum friends per user (paper: 1).
    pub min_friends: usize,
    /// Minimum distinct visitors per POI (paper: 50; presets scale this
    /// down with the synthetic data size).
    pub min_visitors: usize,
    /// Maximum filter iterations (a fixed point is normally reached in 2–3).
    pub max_rounds: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            min_checkins: 15,
            min_friends: 1,
            min_visitors: 3,
            max_rounds: 10,
        }
    }
}

/// Apply the paper's preprocessing filters, renumbering users and POIs
/// densely. Returns the filtered dataset (possibly empty if thresholds are
/// too aggressive for the input).
pub fn preprocess(data: &Dataset, cfg: &PreprocessConfig) -> Dataset {
    let mut keep_user: Vec<bool> = vec![true; data.n_users];
    let mut keep_poi: Vec<bool> = vec![true; data.n_pois()];

    for _ in 0..cfg.max_rounds {
        let mut changed = false;

        // Per-user check-in counts and per-POI visitor sets, over kept rows.
        let mut user_counts = vec![0usize; data.n_users];
        let mut poi_visitors: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); data.n_pois()];
        for c in &data.checkins {
            if keep_user[c.user] && keep_poi[c.poi] {
                user_counts[c.user] += 1;
                poi_visitors[c.poi].insert(c.user);
            }
        }
        // Friend counts among kept users.
        for u in 0..data.n_users {
            if !keep_user[u] {
                continue;
            }
            let friends = data
                .social
                .neighbors(u)
                .iter()
                .filter(|&&f| keep_user[f])
                .count();
            if user_counts[u] < cfg.min_checkins || friends < cfg.min_friends {
                keep_user[u] = false;
                changed = true;
            }
        }
        for j in 0..data.n_pois() {
            if keep_poi[j] && poi_visitors[j].len() < cfg.min_visitors {
                keep_poi[j] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Dense renumbering.
    let mut user_map = vec![None; data.n_users];
    let mut next_u = 0;
    for (u, &k) in keep_user.iter().enumerate() {
        if k {
            user_map[u] = Some(next_u);
            next_u += 1;
        }
    }
    let mut poi_map = vec![None; data.n_pois()];
    let mut pois = Vec::new();
    for (j, &k) in keep_poi.iter().enumerate() {
        if k {
            poi_map[j] = Some(pois.len());
            pois.push(data.pois[j]);
        }
    }
    let checkins: Vec<CheckIn> = data
        .checkins
        .iter()
        .filter_map(|c| match (user_map[c.user], poi_map[c.poi]) {
            (Some(u), Some(p)) => Some(CheckIn {
                user: u,
                poi: p,
                ..*c
            }),
            _ => None,
        })
        .collect();
    let social = data.social.remap(&user_map, next_u);

    Dataset {
        name: data.name.clone(),
        n_users: next_u,
        pois,
        checkins,
        social,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Category, Poi};
    use crate::synth::SynthPreset;
    use tcss_geo::GeoPoint;
    use tcss_graph::SocialGraph;

    fn poi() -> Poi {
        Poi {
            location: GeoPoint::new(0.0, 0.0),
            category: Category::Food,
        }
    }

    fn checkin(user: usize, poi: usize) -> CheckIn {
        CheckIn {
            user,
            poi,
            month: 0,
            week: 0,
            hour: 0,
        }
    }

    #[test]
    fn drops_users_without_friends() {
        let data = Dataset {
            name: "t".into(),
            n_users: 3,
            pois: vec![poi()],
            // All users active enough, but user 2 has no friends.
            checkins: (0..3)
                .flat_map(|u| (0..3).map(move |_| checkin(u, 0)))
                .collect(),
            social: SocialGraph::from_edges(3, vec![(0, 1)]),
        };
        let cfg = PreprocessConfig {
            min_checkins: 2,
            min_friends: 1,
            min_visitors: 1,
            max_rounds: 5,
        };
        let out = preprocess(&data, &cfg);
        assert_eq!(out.n_users, 2);
        assert!(out.social.has_edge(0, 1));
    }

    #[test]
    fn drops_inactive_users_and_cold_pois() {
        let data = Dataset {
            name: "t".into(),
            n_users: 2,
            pois: vec![poi(), poi()],
            // User 0 very active at POI 0; user 1 one check-in at POI 1.
            checkins: vec![checkin(0, 0), checkin(0, 0), checkin(0, 0), checkin(1, 1)],
            social: SocialGraph::from_edges(2, vec![(0, 1)]),
        };
        let cfg = PreprocessConfig {
            min_checkins: 2,
            min_friends: 0,
            min_visitors: 1,
            max_rounds: 5,
        };
        let out = preprocess(&data, &cfg);
        // User 1 dropped (1 check-in < 2); POI 1 then has no visitors.
        assert_eq!(out.n_users, 1);
        assert_eq!(out.n_pois(), 1);
        assert_eq!(out.checkins.len(), 3);
    }

    #[test]
    fn cascading_fixed_point() {
        // User 1's only check-ins are at a POI that gets dropped, which
        // must then drop user 1 (and the edge to user 0 must survive only
        // if user 0 still qualifies with min_friends=0).
        let data = Dataset {
            name: "t".into(),
            n_users: 2,
            pois: vec![poi(), poi()],
            checkins: vec![
                checkin(0, 0),
                checkin(0, 0),
                checkin(1, 1), // POI 1: single visitor
                checkin(1, 1),
            ],
            social: SocialGraph::from_edges(2, vec![(0, 1)]),
        };
        let cfg = PreprocessConfig {
            min_checkins: 2,
            min_friends: 0,
            min_visitors: 2,
            max_rounds: 5,
        };
        let out = preprocess(&data, &cfg);
        // POI 1 has 1 visitor < 2 → dropped → user 1 has 0 check-ins → dropped.
        // POI 0 has only user 0 → 1 visitor < 2 → dropped → everything empty.
        assert_eq!(out.n_pois(), 0);
        assert_eq!(out.n_users, 0);
    }

    #[test]
    fn synthetic_presets_survive_preprocessing() {
        for preset in SynthPreset::ALL {
            let d = preset.generate();
            let out = preprocess(&d, &PreprocessConfig::default());
            assert!(
                out.n_users as f64 > d.n_users as f64 * 0.5,
                "{}: too many users filtered ({} of {})",
                d.name,
                out.n_users,
                d.n_users
            );
            assert!(out.n_pois() > 0);
            // Every surviving user meets the thresholds.
            let counts = out.user_checkin_counts();
            for (u, &c) in counts.iter().enumerate() {
                assert!(c >= 15, "user {u} has {c} check-ins");
                assert!(out.social.degree(u) >= 1);
            }
        }
    }
}
