//! Deterministic synthetic LBSN generator.
//!
//! See the crate docs and `DESIGN.md` §3 for the generative process and the
//! rationale for each planted signal. All sampling is driven by a seeded
//! `StdRng`, so every preset is fully reproducible.

use crate::dataset::{Category, CheckIn, Dataset, Poi};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_geo::GeoPoint;
use tcss_graph::SocialGraph;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name (presets use `<paper-dataset>-synth`).
    pub name: String,
    /// RNG seed; same seed ⇒ identical dataset.
    pub seed: u64,
    /// Number of users.
    pub n_users: usize,
    /// Number of POIs.
    pub n_pois: usize,
    /// Number of geographic clusters POIs concentrate in.
    pub n_clusters: usize,
    /// Number of user interest communities.
    pub n_communities: usize,
    /// Mean check-ins per user (actual counts vary ±50%).
    pub avg_checkins_per_user: usize,
    /// Mean friends per user.
    pub avg_friends: usize,
    /// Probability a check-in copies a friend's earlier POI (plants the
    /// social-Hausdorff signal).
    pub social_copy_prob: f64,
    /// Zipf exponent of POI popularity (plants the location-entropy signal).
    pub zipf_exponent: f64,
    /// Bounding box `(lon_min, lon_max, lat_min, lat_max)` in degrees.
    pub bbox: (f64, f64, f64, f64),
    /// Standard deviation of POI scatter around cluster centres (degrees).
    pub cluster_sigma_deg: f64,
    /// Relative frequency of [Shopping, Entertainment, Food, Outdoor] POIs.
    pub category_weights: [f64; 4],
    /// Multiplicative preference boost for POIs in the user's *home*
    /// cluster (one of their community's preferred clusters). This plants
    /// Tobler's-law locality: each user's check-ins concentrate
    /// geographically, which Fig 12's case study and the zero-out ablation
    /// both measure.
    pub home_bias: f64,
    /// Probability a friendship edge stays inside the interest community.
    /// Cross-community friendships (the remainder) carry social signal that
    /// no low-rank community structure can explain — exactly the signal the
    /// social-Hausdorff head exists to exploit.
    pub intra_community_prob: f64,
    /// Size of each user's personal POI repertoire (the places they
    /// habitually revisit). People return to the same POIs — this is what
    /// makes individual check-ins predictable at all.
    pub repertoire: usize,
    /// Probability a (non-social-copy) check-in stays inside the
    /// repertoire; the rest explore the community distribution.
    pub repertoire_prob: f64,
}

/// Named presets mirroring the paper's four datasets at laptop scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthPreset {
    /// Gowalla analogue: mid-size, strong social signal.
    Gowalla,
    /// Yelp analogue: the sparsest tensor (the paper attributes Yelp's lower
    /// scores to its lower density).
    Yelp,
    /// Foursquare analogue: most users, slightly fewer POIs.
    Foursquare,
    /// GMU-5K analogue: the densest tensor (simulated patterns-of-life).
    Gmu5k,
}

impl SynthPreset {
    /// All presets in the paper's table order.
    pub const ALL: [SynthPreset; 4] = [
        SynthPreset::Gowalla,
        SynthPreset::Yelp,
        SynthPreset::Foursquare,
        SynthPreset::Gmu5k,
    ];

    /// Label used in experiment printouts.
    pub fn label(&self) -> &'static str {
        match self {
            SynthPreset::Gowalla => "Gowalla",
            SynthPreset::Yelp => "Yelp",
            SynthPreset::Foursquare => "Foursquare",
            SynthPreset::Gmu5k => "GMU-5K",
        }
    }

    /// The preset's generator configuration.
    pub fn config(&self) -> SynthConfig {
        let base = SynthConfig {
            name: format!("{}-synth", self.label().to_lowercase()),
            seed: 2022,
            n_users: 200,
            n_pois: 140,
            n_clusters: 10,
            n_communities: 8,
            avg_checkins_per_user: 40,
            avg_friends: 8,
            social_copy_prob: 0.25,
            zipf_exponent: 1.0,
            bbox: (-98.0, -88.0, 30.0, 38.0),
            cluster_sigma_deg: 0.15,
            category_weights: [0.34, 0.30, 0.21, 0.15], // paper's Gowalla mix
            home_bias: 6.0,
            intra_community_prob: 0.6,
            repertoire: 15,
            repertoire_prob: 0.38,
        };
        // POI counts are kept well above the 100-negative protocol size so
        // sampled negatives are mostly genuinely-unvisited POIs, matching
        // the regime of the paper's datasets (thousands of POIs).
        match self {
            SynthPreset::Gowalla => SynthConfig {
                n_users: 220,
                n_pois: 520,
                avg_checkins_per_user: 45,
                seed: 2022,
                ..base
            },
            SynthPreset::Yelp => SynthConfig {
                name: "yelp-synth".into(),
                n_users: 180,
                n_pois: 500,
                avg_checkins_per_user: 24, // sparsest
                social_copy_prob: 0.22,
                seed: 2023,
                ..base
            },
            SynthPreset::Foursquare => SynthConfig {
                name: "foursquare-synth".into(),
                n_users: 240,
                n_pois: 460,
                avg_checkins_per_user: 40,
                seed: 2024,
                ..base
            },
            SynthPreset::Gmu5k => SynthConfig {
                name: "gmu5k-synth".into(),
                n_users: 120,
                n_pois: 220,
                n_clusters: 6,
                n_communities: 5,
                avg_checkins_per_user: 90, // densest
                social_copy_prob: 0.30,
                seed: 2025,
                ..base
            },
        }
    }

    /// Generate the preset's dataset.
    pub fn generate(&self) -> Dataset {
        generate(&self.config())
    }
}

/// Standard normal sample via Box–Muller (rand 0.8 ships no distributions).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample an index proportionally to `weights` (need not be normalized).
fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Circular "von Mises-like" profile over `n` bins with the given peak and
/// concentration: `w_b ∝ exp(κ · cos(2π (b − peak)/n))`.
fn circular_profile(n: usize, peak: f64, kappa: f64) -> Vec<f64> {
    (0..n)
        .map(|b| (kappa * (2.0 * std::f64::consts::PI * (b as f64 - peak) / n as f64).cos()).exp())
        .collect()
}

struct PoiProfile {
    month: Vec<f64>,
    hour: Vec<f64>,
    popularity: f64,
    cluster: usize,
}

/// Seasonal and daily visit profiles per category.
///
/// These plant the paper's Figs 4–7 signals: outdoor POIs are sharply
/// seasonal (the paper finds the *strongest* performance there), food is
/// nearly uniform over the year (weakest), and every category has a
/// distinctive hour-of-day shape.
fn category_profiles(cat: Category, rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let (peak_m, kappa_m) = match cat {
        // Half the outdoor POIs peak in summer (m≈6), half in winter (m≈0).
        Category::Outdoor => {
            if rng.gen_bool(0.5) {
                (6.0, 6.0)
            } else {
                (0.0, 6.0)
            }
        }
        Category::Shopping => (11.0, 3.0), // holiday bump
        Category::Entertainment => (rng.gen_range(0.0..12.0), 2.8),
        Category::Food => (rng.gen_range(0.0..12.0), 0.9), // near-uniform
    };
    let (peak_h, kappa_h) = match cat {
        Category::Outdoor => (10.0, 3.0),
        Category::Shopping => (15.0, 2.5),
        Category::Entertainment => (21.0, 3.5),
        Category::Food => (13.0 + 6.0 * rng.gen_range(0.0..1.0), 2.0), // lunch..dinner
    };
    (
        circular_profile(12, peak_m, kappa_m),
        circular_profile(24, peak_h, kappa_h),
    )
}

/// Generate a dataset from an explicit configuration.
pub fn generate(cfg: &SynthConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (lon_min, lon_max, lat_min, lat_max) = cfg.bbox;

    // 1. Geographic cluster centres.
    let centres: Vec<GeoPoint> = (0..cfg.n_clusters)
        .map(|_| {
            GeoPoint::new(
                rng.gen_range(lon_min..lon_max),
                rng.gen_range(lat_min..lat_max),
            )
        })
        .collect();

    // 2. POIs: cluster, scatter, category, popularity, time profiles.
    let mut pois = Vec::with_capacity(cfg.n_pois);
    let mut profiles = Vec::with_capacity(cfg.n_pois);
    // Shuffle ranks for the Zipf popularity so popular POIs are spread
    // across clusters and categories.
    let mut ranks: Vec<usize> = (0..cfg.n_pois).collect();
    for i in (1..ranks.len()).rev() {
        ranks.swap(i, rng.gen_range(0..=i));
    }
    for &rank in ranks.iter().take(cfg.n_pois) {
        let cluster = rng.gen_range(0..cfg.n_clusters);
        let c = centres[cluster];
        let location = GeoPoint::new(
            (c.lon + normal(&mut rng) * cfg.cluster_sigma_deg).clamp(lon_min, lon_max),
            (c.lat + normal(&mut rng) * cfg.cluster_sigma_deg).clamp(lat_min, lat_max),
        );
        let category = Category::ALL[weighted_choice(&mut rng, &cfg.category_weights)];
        let (month, hour) = category_profiles(category, &mut rng);
        pois.push(Poi { location, category });
        profiles.push(PoiProfile {
            month,
            hour,
            popularity: 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent),
            cluster,
        });
    }

    // 3. Communities: preferred clusters and a boosted category.
    let community_of = |u: usize| u % cfg.n_communities;
    let community_clusters: Vec<[usize; 2]> = (0..cfg.n_communities)
        .map(|_| {
            [
                rng.gen_range(0..cfg.n_clusters),
                rng.gen_range(0..cfg.n_clusters),
            ]
        })
        .collect();
    let community_category: Vec<Category> = (0..cfg.n_communities)
        .map(|_| Category::ALL[rng.gen_range(0..4usize)])
        .collect();

    // 4. Social graph: mostly intra-community edges.
    let mut social = SocialGraph::new(cfg.n_users);
    let target_edges = cfg.n_users * cfg.avg_friends / 2;
    let mut guard = 0;
    while social.edge_count() < target_edges && guard < target_edges * 50 {
        guard += 1;
        let a = rng.gen_range(0..cfg.n_users);
        let b = if rng.gen_bool(cfg.intra_community_prob) {
            // Same community: members of community `c` are {c, c+C, c+2C, …}.
            let com = community_of(a);
            let members = (cfg.n_users - com).div_ceil(cfg.n_communities);
            com + cfg.n_communities * rng.gen_range(0..members.max(1))
        } else {
            rng.gen_range(0..cfg.n_users)
        };
        let b = b.min(cfg.n_users - 1);
        social.add_edge(a, b);
    }

    // Per-POI sampling weights for each community: popularity × cluster
    // preference × category affinity.
    let mut community_poi_weights: Vec<Vec<f64>> = Vec::with_capacity(cfg.n_communities);
    for com in 0..cfg.n_communities {
        let prefers = community_clusters[com];
        let fav_cat = community_category[com];
        let w = profiles
            .iter()
            .zip(pois.iter())
            .map(|(prof, poi)| {
                let cluster_boost = if prefers.contains(&prof.cluster) {
                    4.0
                } else {
                    1.0
                };
                let cat_boost = if poi.category == fav_cat { 2.5 } else { 1.0 };
                prof.popularity * cluster_boost * cat_boost
            })
            .collect();
        community_poi_weights.push(w);
    }

    // 5. Check-ins, user by user, with social copying from friends that
    //    already have history (lower user index). Each user first draws a
    //    personal repertoire of habitually-revisited POIs (with a personal
    //    Zipf weighting), which most non-social check-ins stay inside.
    let mut checkins: Vec<CheckIn> = Vec::new();
    let mut user_start = vec![0usize; cfg.n_users + 1];
    for u in 0..cfg.n_users {
        user_start[u] = checkins.len();
        let com = community_of(u);
        // Home cluster: one of the community's two preferred clusters.
        let home = community_clusters[com][u / cfg.n_communities % 2];
        let com_weights: Vec<f64> = community_poi_weights[com]
            .iter()
            .zip(profiles.iter())
            .map(|(&w, prof)| {
                if prof.cluster == home {
                    w * cfg.home_bias
                } else {
                    w
                }
            })
            .collect();
        let com_weights = &com_weights;
        let repertoire: Vec<usize> = (0..cfg.repertoire.max(1))
            .map(|_| weighted_choice(&mut rng, com_weights))
            .collect();
        let repertoire_weights: Vec<f64> = (0..repertoire.len())
            .map(|rank| 1.0 / (rank + 1) as f64)
            .collect();
        let lo = cfg.avg_checkins_per_user / 2;
        let hi = cfg.avg_checkins_per_user * 3 / 2;
        let n = rng.gen_range(lo..=hi.max(lo + 1));
        for _ in 0..n {
            let poi = if rng.gen_bool(cfg.social_copy_prob) {
                // Copy a friend's earlier POI, if any friend has history.
                let friends: Vec<usize> = social
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&f| f < u && user_start[f + 1] > user_start[f])
                    .collect();
                if friends.is_empty() {
                    repertoire[weighted_choice(&mut rng, &repertoire_weights)]
                } else {
                    let f = friends[rng.gen_range(0..friends.len())];
                    let pick = rng.gen_range(user_start[f]..user_start[f + 1]);
                    checkins[pick].poi
                }
            } else if rng.gen_bool(cfg.repertoire_prob) {
                repertoire[weighted_choice(&mut rng, &repertoire_weights)]
            } else {
                weighted_choice(&mut rng, com_weights)
            };
            let month = weighted_choice(&mut rng, &profiles[poi].month) as u8;
            let hour = weighted_choice(&mut rng, &profiles[poi].hour) as u8;
            // Week consistent with the month (~4.4 weeks per month).
            let week = ((month as f64 * 4.42) as u8 + rng.gen_range(0..5u8)).min(52);
            checkins.push(CheckIn {
                user: u,
                poi,
                month,
                week,
                hour,
            });
        }
        user_start[u + 1] = checkins.len();
    }

    Dataset {
        name: cfg.name.clone(),
        n_users: cfg.n_users,
        pois,
        checkins,
        social,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Granularity;

    #[test]
    fn deterministic_given_seed() {
        let a = SynthPreset::Gowalla.generate();
        let b = SynthPreset::Gowalla.generate();
        assert_eq!(a.checkins, b.checkins);
        assert_eq!(a.social.edge_count(), b.social.edge_count());
    }

    #[test]
    fn presets_have_declared_sizes() {
        for preset in SynthPreset::ALL {
            let cfg = preset.config();
            let d = preset.generate();
            assert_eq!(d.n_users, cfg.n_users);
            assert_eq!(d.n_pois(), cfg.n_pois);
            assert!(!d.checkins.is_empty());
            // Every check-in is in range.
            for c in &d.checkins {
                assert!(c.user < d.n_users && c.poi < d.n_pois());
                assert!(c.month < 12 && c.week < 53 && c.hour < 24);
            }
        }
    }

    #[test]
    fn gmu5k_is_densest_yelp_sparsest() {
        let densities: Vec<f64> = SynthPreset::ALL
            .iter()
            .map(|p| p.generate().tensor(Granularity::Month).density())
            .collect();
        let (gowalla, yelp, foursquare, gmu) =
            (densities[0], densities[1], densities[2], densities[3]);
        assert!(gmu > gowalla, "gmu {gmu} !> gowalla {gowalla}");
        assert!(gmu > foursquare);
        assert!(yelp < gowalla, "yelp {yelp} !< gowalla {gowalla}");
    }

    #[test]
    fn outdoor_pois_are_more_seasonal_than_food() {
        // Measure seasonality as the max/mean ratio of the month histogram.
        let d = SynthPreset::Gowalla.generate();
        let seasonality = |cat: Category| -> f64 {
            let mut hist = [0.0f64; 12];
            let mut total = 0.0;
            for c in &d.checkins {
                if d.pois[c.poi].category == cat {
                    hist[c.month as usize] += 1.0;
                    total += 1.0;
                }
            }
            if total == 0.0 {
                return 0.0;
            }
            let mean = total / 12.0;
            hist.iter().cloned().fold(0.0, f64::max) / mean
        };
        let outdoor = seasonality(Category::Outdoor);
        let food = seasonality(Category::Food);
        assert!(
            outdoor > food * 1.3,
            "outdoor seasonality {outdoor} should exceed food {food}"
        );
    }

    #[test]
    fn friends_covisit_more_than_strangers() {
        // The homophily signal the social Hausdorff head exploits: the
        // Jaccard overlap of visited-POI sets is higher for friend pairs.
        let d = SynthPreset::Gowalla.generate();
        let mut visited: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); d.n_users];
        for c in &d.checkins {
            visited[c.user].insert(c.poi);
        }
        let jaccard = |a: usize, b: usize| -> f64 {
            let inter = visited[a].intersection(&visited[b]).count() as f64;
            let uni = visited[a].union(&visited[b]).count() as f64;
            if uni == 0.0 {
                0.0
            } else {
                inter / uni
            }
        };
        let mut friend_sum = 0.0;
        let mut friend_n = 0.0;
        for (a, b) in d.social.edges() {
            friend_sum += jaccard(a, b);
            friend_n += 1.0;
        }
        // Strangers: shifted pairs, skipping actual friends.
        let mut stranger_sum = 0.0;
        let mut stranger_n = 0.0;
        for a in 0..d.n_users {
            let b = (a + d.n_users / 2 + 1) % d.n_users;
            if a != b && !d.social.has_edge(a, b) {
                stranger_sum += jaccard(a, b);
                stranger_n += 1.0;
            }
        }
        let friend_avg = friend_sum / friend_n;
        let stranger_avg = stranger_sum / stranger_n;
        assert!(
            friend_avg > stranger_avg * 1.2,
            "friend overlap {friend_avg} should exceed stranger overlap {stranger_avg}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let d = SynthPreset::Gowalla.generate();
        let mut counts = vec![0usize; d.n_pois()];
        for c in &d.checkins {
            counts[c.poi] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(d.n_pois() / 10).sum();
        let total: usize = counts.iter().sum();
        // Zipf-ish: the top decile of POIs draws far more than its share.
        assert!(
            top10 as f64 > total as f64 * 0.25,
            "top-decile share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn social_graph_is_nontrivial() {
        let d = SynthPreset::Gowalla.generate();
        let with_friends = d.social.users_with_friends().len();
        assert!(with_friends as f64 > d.n_users as f64 * 0.8);
    }
}
