//! # tcss-data
//!
//! LBSN datasets for the TCSS reproduction: the dataset container, a
//! deterministic synthetic data generator, preprocessing filters matching
//! §V-A of the paper, train/test splitting, and CSV persistence.
//!
//! ## The substitution this crate implements
//!
//! The paper evaluates on Gowalla, Yelp, Foursquare and GMU-5K — downloads
//! we cannot ship. [`synth`] generates datasets that reproduce the
//! *statistical structure* those datasets contribute to the paper's
//! mechanisms (see `DESIGN.md` §2/§3):
//!
//! 1. **Seasonality per POI category** — outdoor POIs peak sharply in
//!    summer/winter, food is near-uniform (drives Figs 4–7);
//! 2. **Social-spatial homophily** — friends share interest communities and
//!    visit geographically co-located POIs (drives the social Hausdorff
//!    head);
//! 3. **Power-law POI popularity** — drives location entropy;
//! 4. **Per-preset density** — GMU-5K densest, Yelp sparsest (drives the
//!    cross-dataset ordering in Table I).

pub mod dataset;
pub mod io;
pub mod preprocess;
pub mod split;
pub mod synth;

pub use dataset::{Category, CheckIn, Dataset, Granularity, Poi};
pub use io::{load_dataset, load_dataset_lenient, save_dataset, DataIoError, LoadReport};
pub use preprocess::{preprocess, PreprocessConfig};
pub use split::{train_test_split, Split};
pub use synth::{SynthConfig, SynthPreset};
