//! CSV persistence for datasets.
//!
//! Two files describe a dataset (plus a tiny header file):
//!
//! * `<stem>.pois.csv` — `poi_id,lon,lat,category`
//! * `<stem>.checkins.csv` — `user,poi,month,week,hour`
//! * `<stem>.edges.csv` — `user_a,user_b`
//!
//! The format intentionally mirrors the shape of the public Gowalla /
//! Foursquare dumps so real data can be dropped in by writing these three
//! files.
//!
//! Real dumps are messy, so loading comes in two strictnesses:
//! [`load_dataset`] fails on the first malformed record, while
//! [`load_dataset_lenient`] skips malformed check-in and edge rows and
//! reports how many were dropped in a [`LoadReport`]. POI-file errors are
//! fatal in both modes: every check-in indexes into the POI table, so a
//! dropped POI row would silently shift all later indices.
//!
//! Every error carries the full offending file path and (for parse
//! errors) the 1-based line number, so a bad record in a hand-edited dump
//! is one click away.

use crate::dataset::{Category, CheckIn, Dataset, Poi};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tcss_geo::GeoPoint;
use tcss_graph::SocialGraph;

/// Errors raised by dataset (de)serialization.
#[derive(Debug)]
pub enum DataIoError {
    /// Underlying filesystem error on a specific file.
    Fs {
        /// File being read or written.
        path: PathBuf,
        /// The OS-level failure.
        source: std::io::Error,
    },
    /// A malformed line or field.
    Parse {
        /// File in which the error occurred.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for DataIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataIoError::Fs { path, source } => {
                write!(f, "{}: io error: {source}", path.display())
            }
            DataIoError::Parse {
                path,
                line,
                message,
            } => {
                write!(f, "{}:{line}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for DataIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataIoError::Fs { source, .. } => Some(source),
            DataIoError::Parse { .. } => None,
        }
    }
}

/// What [`load_dataset_lenient`] dropped on the floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Malformed or out-of-range check-in rows skipped.
    pub skipped_checkins: usize,
    /// Malformed social-edge rows skipped.
    pub skipped_edges: usize,
}

fn category_code(c: Category) -> &'static str {
    c.label()
}

fn parse_category(s: &str) -> Option<Category> {
    Category::ALL.into_iter().find(|c| c.label() == s)
}

fn write_file(path: PathBuf, contents: &str) -> Result<(), DataIoError> {
    std::fs::write(&path, contents).map_err(|source| DataIoError::Fs { path, source })
}

fn read_file(path: PathBuf) -> Result<(PathBuf, String), DataIoError> {
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok((path, text)),
        Err(source) => Err(DataIoError::Fs { path, source }),
    }
}

/// Write a dataset to `<stem>.pois.csv`, `<stem>.checkins.csv` and
/// `<stem>.edges.csv`.
pub fn save_dataset(data: &Dataset, stem: &Path) -> Result<(), DataIoError> {
    let mut pois = String::from("poi_id,lon,lat,category\n");
    for (j, p) in data.pois.iter().enumerate() {
        let _ = writeln!(
            pois,
            "{j},{},{},{}",
            p.location.lon,
            p.location.lat,
            category_code(p.category)
        );
    }
    write_file(with_suffix(stem, ".pois.csv"), &pois)?;

    let mut checks = String::from("user,poi,month,week,hour\n");
    for c in &data.checkins {
        let _ = writeln!(
            checks,
            "{},{},{},{},{}",
            c.user, c.poi, c.month, c.week, c.hour
        );
    }
    write_file(with_suffix(stem, ".checkins.csv"), &checks)?;

    let mut edges = String::from("user_a,user_b\n");
    for (a, b) in data.social.edges() {
        let _ = writeln!(edges, "{a},{b}");
    }
    write_file(with_suffix(stem, ".edges.csv"), &edges)?;
    Ok(())
}

/// Load a dataset previously written by [`save_dataset`] (or hand-authored
/// in the same format). `n_users` is inferred as 1 + the largest user index.
///
/// Strict: the first malformed record anywhere aborts the load. For messy
/// real-world dumps, see [`load_dataset_lenient`].
pub fn load_dataset(name: &str, stem: &Path) -> Result<Dataset, DataIoError> {
    load_dataset_impl(name, stem, false).map(|(data, _)| data)
}

/// [`load_dataset`], but malformed check-in and edge rows are skipped
/// (and counted in the returned [`LoadReport`]) instead of aborting the
/// load. POI-file errors remain fatal — check-ins index into the POI
/// table, so dropping a POI row would corrupt every later index.
pub fn load_dataset_lenient(name: &str, stem: &Path) -> Result<(Dataset, LoadReport), DataIoError> {
    load_dataset_impl(name, stem, true)
}

fn load_dataset_impl(
    name: &str,
    stem: &Path,
    lenient: bool,
) -> Result<(Dataset, LoadReport), DataIoError> {
    let mut report = LoadReport::default();

    let (pois_path, pois_txt) = read_file(with_suffix(stem, ".pois.csv"))?;
    let mut pois = Vec::new();
    for (ln, line) in pois_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        // POI rows are positional (row index == POI id), so even in
        // lenient mode a bad row here is unrecoverable.
        pois.push(parse_poi_row(line, &pois_path, ln)?);
    }

    let (checks_path, checks_txt) = read_file(with_suffix(stem, ".checkins.csv"))?;
    let mut checkins = Vec::new();
    let mut max_user = 0usize;
    for (ln, line) in checks_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        match parse_checkin_row(line, pois.len(), &checks_path, ln) {
            Ok(c) => {
                max_user = max_user.max(c.user);
                checkins.push(c);
            }
            Err(_) if lenient => report.skipped_checkins += 1,
            Err(e) => return Err(e),
        }
    }
    let n_users = if checkins.is_empty() { 0 } else { max_user + 1 };

    let (edges_path, edges_txt) = read_file(with_suffix(stem, ".edges.csv"))?;
    let mut edges = Vec::new();
    for (ln, line) in edges_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        match parse_edge_row(line, &edges_path, ln) {
            Ok(pair) => edges.push(pair),
            Err(_) if lenient => report.skipped_edges += 1,
            Err(e) => return Err(e),
        }
    }

    let data = Dataset {
        name: name.to_string(),
        n_users,
        pois,
        checkins,
        social: SocialGraph::from_edges(n_users, edges),
    };
    Ok((data, report))
}

fn split_fields<'a>(
    line: &'a str,
    expect: usize,
    path: &Path,
    ln: usize,
) -> Result<Vec<&'a str>, DataIoError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != expect {
        return Err(DataIoError::Parse {
            path: path.to_path_buf(),
            line: ln + 1,
            message: format!("expected {expect} fields, got {}", fields.len()),
        });
    }
    Ok(fields)
}

fn parse_poi_row(line: &str, path: &Path, ln: usize) -> Result<Poi, DataIoError> {
    let fields = split_fields(line, 4, path, ln)?;
    let lon: f64 = parse_field(&fields, 1, path, ln)?;
    let lat: f64 = parse_field(&fields, 2, path, ln)?;
    let category = parse_category(fields[3]).ok_or_else(|| DataIoError::Parse {
        path: path.to_path_buf(),
        line: ln + 1,
        message: format!("unknown category {:?}", fields[3]),
    })?;
    Ok(Poi {
        location: GeoPoint::new(lon, lat),
        category,
    })
}

fn parse_checkin_row(
    line: &str,
    n_pois: usize,
    path: &Path,
    ln: usize,
) -> Result<CheckIn, DataIoError> {
    let fields = split_fields(line, 5, path, ln)?;
    let c = CheckIn {
        user: parse_field(&fields, 0, path, ln)?,
        poi: parse_field(&fields, 1, path, ln)?,
        month: parse_field(&fields, 2, path, ln)?,
        week: parse_field(&fields, 3, path, ln)?,
        hour: parse_field(&fields, 4, path, ln)?,
    };
    if c.poi >= n_pois {
        return Err(DataIoError::Parse {
            path: path.to_path_buf(),
            line: ln + 1,
            message: format!("poi {} out of range ({n_pois} POIs)", c.poi),
        });
    }
    Ok(c)
}

fn parse_edge_row(line: &str, path: &Path, ln: usize) -> Result<(usize, usize), DataIoError> {
    let fields = split_fields(line, 2, path, ln)?;
    let a: usize = parse_field(&fields, 0, path, ln)?;
    let b: usize = parse_field(&fields, 1, path, ln)?;
    Ok((a, b))
}

fn with_suffix(stem: &Path, suffix: &str) -> PathBuf {
    let mut s = stem.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

fn parse_field<T: std::str::FromStr>(
    fields: &[&str],
    idx: usize,
    path: &Path,
    ln: usize,
) -> Result<T, DataIoError> {
    fields[idx].trim().parse().map_err(|_| DataIoError::Parse {
        path: path.to_path_buf(),
        line: ln + 1,
        message: format!("cannot parse field {idx} ({:?})", fields[idx]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthPreset;

    #[test]
    fn save_load_roundtrip() {
        let d = SynthPreset::Gmu5k.generate();
        let dir = std::env::temp_dir().join("tcss_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("gmu");
        save_dataset(&d, &stem).unwrap();
        let loaded = load_dataset("gmu5k-synth", &stem).unwrap();
        assert_eq!(loaded.n_users, d.n_users);
        assert_eq!(loaded.n_pois(), d.n_pois());
        assert_eq!(loaded.checkins, d.checkins);
        assert_eq!(loaded.social.edge_count(), d.social.edge_count());
        for (a, b) in d.social.edges() {
            assert!(loaded.social.has_edge(a, b));
        }
        // POI geometry survives the float round-trip.
        for (p, q) in d.pois.iter().zip(loaded.pois.iter()) {
            assert!((p.location.lon - q.location.lon).abs() < 1e-9);
            assert_eq!(p.category, q.category);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    fn write_stem(dir: &str, pois: &str, checkins: &str, edges: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("data");
        std::fs::write(with_suffix(&stem, ".pois.csv"), pois).unwrap();
        std::fs::write(with_suffix(&stem, ".checkins.csv"), checkins).unwrap();
        std::fs::write(with_suffix(&stem, ".edges.csv"), edges).unwrap();
        stem
    }

    #[test]
    fn malformed_csv_is_reported_with_path_and_line() {
        let stem = write_stem(
            "tcss_io_badtest",
            "poi_id,lon,lat,category\n0,not_a_float,2.0,food\n",
            "user,poi,month,week,hour\n",
            "user_a,user_b\n",
        );
        let err = load_dataset("bad", &stem).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pois"), "{msg}");
        assert!(msg.contains(".pois.csv:2:"), "full path + line: {msg}");
        match err {
            DataIoError::Parse { path, line, .. } => {
                assert!(path.ends_with("data.pois.csv"), "{path:?}");
                assert_eq!(line, 2);
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        std::fs::remove_dir_all(stem.parent().unwrap()).ok();
    }

    #[test]
    fn missing_file_error_names_the_file() {
        let dir = std::env::temp_dir().join("tcss_io_missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = load_dataset("missing", &dir.join("nope")).unwrap_err();
        match &err {
            DataIoError::Fs { path, .. } => {
                assert!(path.ends_with("nope.pois.csv"), "{path:?}")
            }
            other => panic!("expected Fs, got {other:?}"),
        }
        assert!(err.to_string().contains("nope.pois.csv"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_poi_rejected() {
        let stem = write_stem(
            "tcss_io_oortest",
            "poi_id,lon,lat,category\n0,1.0,2.0,food\n",
            "user,poi,month,week,hour\n0,5,0,0,0\n",
            "user_a,user_b\n",
        );
        assert!(load_dataset("oor", &stem).is_err());
        std::fs::remove_dir_all(stem.parent().unwrap()).ok();
    }

    #[test]
    fn lenient_mode_skips_and_counts_bad_rows() {
        let stem = write_stem(
            "tcss_io_lenient",
            "poi_id,lon,lat,category\n0,1.0,2.0,food\n1,1.5,2.5,outdoor\n",
            "user,poi,month,week,hour\n\
             0,0,0,0,0\n\
             0,99,0,0,0\n\
             1,not_a_poi,0,0,0\n\
             1,1,1,1,1\n\
             too,few\n",
            "user_a,user_b\n0,1\nbad_edge\n1,0\n",
        );
        let (data, report) = load_dataset_lenient("lenient", &stem).unwrap();
        assert_eq!(data.checkins.len(), 2, "good rows survive");
        assert_eq!(report.skipped_checkins, 3);
        assert_eq!(report.skipped_edges, 1);
        assert!(data.social.has_edge(0, 1));
        // Strict mode rejects the very same files.
        assert!(load_dataset("lenient", &stem).is_err());
        std::fs::remove_dir_all(stem.parent().unwrap()).ok();
    }

    #[test]
    fn lenient_mode_still_fails_on_poi_errors() {
        let stem = write_stem(
            "tcss_io_lenient_poi",
            "poi_id,lon,lat,category\n0,broken,2.0,food\n",
            "user,poi,month,week,hour\n",
            "user_a,user_b\n",
        );
        let err = load_dataset_lenient("bad-pois", &stem).unwrap_err();
        assert!(
            matches!(err, DataIoError::Parse { .. }),
            "POI errors are fatal even leniently: {err:?}"
        );
        std::fs::remove_dir_all(stem.parent().unwrap()).ok();
    }

    #[test]
    fn clean_load_reports_zero_skips() {
        let d = SynthPreset::Gmu5k.generate();
        let dir = std::env::temp_dir().join("tcss_io_clean_lenient");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("clean");
        save_dataset(&d, &stem).unwrap();
        let (_, report) = load_dataset_lenient("clean", &stem).unwrap();
        assert_eq!(report, LoadReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
