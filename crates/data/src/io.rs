//! CSV persistence for datasets.
//!
//! Two files describe a dataset (plus a tiny header file):
//!
//! * `<stem>.pois.csv` — `poi_id,lon,lat,category`
//! * `<stem>.checkins.csv` — `user,poi,month,week,hour`
//! * `<stem>.edges.csv` — `user_a,user_b`
//!
//! The format intentionally mirrors the shape of the public Gowalla /
//! Foursquare dumps so real data can be dropped in by writing these three
//! files.

use crate::dataset::{Category, CheckIn, Dataset, Poi};
use std::fmt::Write as _;
use std::path::Path;
use tcss_geo::GeoPoint;
use tcss_graph::SocialGraph;

/// Errors raised by dataset (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// A malformed line or field.
    Parse {
        /// File stem in which the error occurred.
        file: String,
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "io error: {e}"),
            IoError::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "{file}:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

fn category_code(c: Category) -> &'static str {
    c.label()
}

fn parse_category(s: &str) -> Option<Category> {
    Category::ALL.into_iter().find(|c| c.label() == s)
}

/// Write a dataset to `<stem>.pois.csv`, `<stem>.checkins.csv` and
/// `<stem>.edges.csv`.
pub fn save_dataset(data: &Dataset, stem: &Path) -> Result<(), IoError> {
    let mut pois = String::from("poi_id,lon,lat,category\n");
    for (j, p) in data.pois.iter().enumerate() {
        writeln!(
            pois,
            "{j},{},{},{}",
            p.location.lon,
            p.location.lat,
            category_code(p.category)
        )
        .expect("writing to String cannot fail");
    }
    std::fs::write(with_suffix(stem, ".pois.csv"), pois)?;

    let mut checks = String::from("user,poi,month,week,hour\n");
    for c in &data.checkins {
        writeln!(
            checks,
            "{},{},{},{},{}",
            c.user, c.poi, c.month, c.week, c.hour
        )
        .expect("writing to String cannot fail");
    }
    std::fs::write(with_suffix(stem, ".checkins.csv"), checks)?;

    let mut edges = String::from("user_a,user_b\n");
    for (a, b) in data.social.edges() {
        writeln!(edges, "{a},{b}").expect("writing to String cannot fail");
    }
    std::fs::write(with_suffix(stem, ".edges.csv"), edges)?;
    Ok(())
}

/// Load a dataset previously written by [`save_dataset`] (or hand-authored
/// in the same format). `n_users` is inferred as 1 + the largest user index.
pub fn load_dataset(name: &str, stem: &Path) -> Result<Dataset, IoError> {
    let pois_txt = std::fs::read_to_string(with_suffix(stem, ".pois.csv"))?;
    let mut pois = Vec::new();
    for (ln, line) in pois_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(IoError::Parse {
                file: "pois".into(),
                line: ln + 1,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let lon: f64 = parse_field(&fields, 1, "pois", ln)?;
        let lat: f64 = parse_field(&fields, 2, "pois", ln)?;
        let category = parse_category(fields[3]).ok_or_else(|| IoError::Parse {
            file: "pois".into(),
            line: ln + 1,
            message: format!("unknown category {:?}", fields[3]),
        })?;
        pois.push(Poi {
            location: GeoPoint::new(lon, lat),
            category,
        });
    }

    let checks_txt = std::fs::read_to_string(with_suffix(stem, ".checkins.csv"))?;
    let mut checkins = Vec::new();
    let mut max_user = 0usize;
    for (ln, line) in checks_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(IoError::Parse {
                file: "checkins".into(),
                line: ln + 1,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let c = CheckIn {
            user: parse_field(&fields, 0, "checkins", ln)?,
            poi: parse_field(&fields, 1, "checkins", ln)?,
            month: parse_field(&fields, 2, "checkins", ln)?,
            week: parse_field(&fields, 3, "checkins", ln)?,
            hour: parse_field(&fields, 4, "checkins", ln)?,
        };
        if c.poi >= pois.len() {
            return Err(IoError::Parse {
                file: "checkins".into(),
                line: ln + 1,
                message: format!("poi {} out of range ({} POIs)", c.poi, pois.len()),
            });
        }
        max_user = max_user.max(c.user);
        checkins.push(c);
    }
    let n_users = if checkins.is_empty() { 0 } else { max_user + 1 };

    let edges_txt = std::fs::read_to_string(with_suffix(stem, ".edges.csv"))?;
    let mut edges = Vec::new();
    for (ln, line) in edges_txt.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 2 {
            return Err(IoError::Parse {
                file: "edges".into(),
                line: ln + 1,
                message: format!("expected 2 fields, got {}", fields.len()),
            });
        }
        let a: usize = parse_field(&fields, 0, "edges", ln)?;
        let b: usize = parse_field(&fields, 1, "edges", ln)?;
        edges.push((a, b));
    }

    Ok(Dataset {
        name: name.to_string(),
        n_users,
        pois,
        checkins,
        social: SocialGraph::from_edges(n_users, edges),
    })
}

fn with_suffix(stem: &Path, suffix: &str) -> std::path::PathBuf {
    let mut s = stem.as_os_str().to_os_string();
    s.push(suffix);
    std::path::PathBuf::from(s)
}

fn parse_field<T: std::str::FromStr>(
    fields: &[&str],
    idx: usize,
    file: &str,
    ln: usize,
) -> Result<T, IoError> {
    fields[idx].trim().parse().map_err(|_| IoError::Parse {
        file: file.to_string(),
        line: ln + 1,
        message: format!("cannot parse field {idx} ({:?})", fields[idx]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthPreset;

    #[test]
    fn save_load_roundtrip() {
        let d = SynthPreset::Gmu5k.generate();
        let dir = std::env::temp_dir().join("tcss_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("gmu");
        save_dataset(&d, &stem).unwrap();
        let loaded = load_dataset("gmu5k-synth", &stem).unwrap();
        assert_eq!(loaded.n_users, d.n_users);
        assert_eq!(loaded.n_pois(), d.n_pois());
        assert_eq!(loaded.checkins, d.checkins);
        assert_eq!(loaded.social.edge_count(), d.social.edge_count());
        for (a, b) in d.social.edges() {
            assert!(loaded.social.has_edge(a, b));
        }
        // POI geometry survives the float round-trip.
        for (p, q) in d.pois.iter().zip(loaded.pois.iter()) {
            assert!((p.location.lon - q.location.lon).abs() < 1e-9);
            assert_eq!(p.category, q.category);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_csv_is_reported_with_line() {
        let dir = std::env::temp_dir().join("tcss_io_badtest");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("bad");
        std::fs::write(
            with_suffix(&stem, ".pois.csv"),
            "poi_id,lon,lat,category\n0,not_a_float,2.0,food\n",
        )
        .unwrap();
        std::fs::write(
            with_suffix(&stem, ".checkins.csv"),
            "user,poi,month,week,hour\n",
        )
        .unwrap();
        std::fs::write(with_suffix(&stem, ".edges.csv"), "user_a,user_b\n").unwrap();
        let err = load_dataset("bad", &stem).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("pois"), "{msg}");
        assert!(msg.contains('2'), "{msg}"); // line number
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_poi_rejected() {
        let dir = std::env::temp_dir().join("tcss_io_oortest");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("oor");
        std::fs::write(
            with_suffix(&stem, ".pois.csv"),
            "poi_id,lon,lat,category\n0,1.0,2.0,food\n",
        )
        .unwrap();
        std::fs::write(
            with_suffix(&stem, ".checkins.csv"),
            "user,poi,month,week,hour\n0,5,0,0,0\n",
        )
        .unwrap();
        std::fs::write(with_suffix(&stem, ".edges.csv"), "user_a,user_b\n").unwrap();
        assert!(load_dataset("oor", &stem).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
