//! Train/test splitting.
//!
//! The paper uses 80% of check-ins as the observed training tensor and the
//! rest as the test set (§V-C). We split *per user* so every user retains
//! training history (a global split can strand users with zero observed
//! check-ins, which no model in the comparison could score meaningfully).

use crate::dataset::CheckIn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A train/test partition of a dataset's check-ins.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training check-ins (the observed tensor `X`).
    pub train: Vec<CheckIn>,
    /// Held-out test check-ins.
    pub test: Vec<CheckIn>,
}

/// Split `checkins` per user: each user's check-ins are shuffled and the
/// first `train_fraction` go to train. Users with a single check-in keep it
/// in train.
pub fn train_test_split(
    checkins: &[CheckIn],
    n_users: usize,
    train_fraction: f64,
    seed: u64,
) -> Split {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_user: Vec<Vec<CheckIn>> = vec![Vec::new(); n_users];
    for c in checkins {
        per_user[c.user].push(*c);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut list in per_user {
        // Fisher–Yates shuffle.
        for i in (1..list.len()).rev() {
            list.swap(i, rng.gen_range(0..=i));
        }
        let n_train = if list.len() <= 1 {
            list.len()
        } else {
            ((list.len() as f64 * train_fraction).round() as usize).clamp(1, list.len() - 1)
        };
        for (idx, c) in list.into_iter().enumerate() {
            if idx < n_train {
                train.push(c);
            } else {
                test.push(c);
            }
        }
    }
    Split { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_checkins(per_user: &[usize]) -> Vec<CheckIn> {
        let mut out = Vec::new();
        for (u, &n) in per_user.iter().enumerate() {
            for k in 0..n {
                out.push(CheckIn {
                    user: u,
                    poi: k,
                    month: (k % 12) as u8,
                    week: (k % 53) as u8,
                    hour: (k % 24) as u8,
                });
            }
        }
        out
    }

    #[test]
    fn split_preserves_all_checkins() {
        let cs = make_checkins(&[10, 5, 20]);
        let s = train_test_split(&cs, 3, 0.8, 1);
        assert_eq!(s.train.len() + s.test.len(), cs.len());
    }

    #[test]
    fn split_ratio_approximately_respected() {
        let cs = make_checkins(&[100]);
        let s = train_test_split(&cs, 1, 0.8, 2);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn every_user_keeps_training_history() {
        let cs = make_checkins(&[2, 3, 10]);
        let s = train_test_split(&cs, 3, 0.5, 3);
        for u in 0..3 {
            assert!(
                s.train.iter().any(|c| c.user == u),
                "user {u} lost all training data"
            );
        }
    }

    #[test]
    fn single_checkin_user_stays_in_train() {
        let cs = make_checkins(&[1]);
        let s = train_test_split(&cs, 1, 0.8, 4);
        assert_eq!(s.train.len(), 1);
        assert!(s.test.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let cs = make_checkins(&[30, 30]);
        let a = train_test_split(&cs, 2, 0.8, 7);
        let b = train_test_split(&cs, 2, 0.8, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = train_test_split(&cs, 2, 0.8, 8);
        assert_ne!(a.train, c.train); // different seed, different shuffle
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn rejects_bad_fraction() {
        train_test_split(&[], 0, 1.5, 0);
    }
}
