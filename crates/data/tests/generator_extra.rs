//! Additional statistical checks of the synthetic LBSN generator — these
//! pin the *planted signals* the experiments rely on, so a generator
//! regression surfaces here rather than as a mysterious experiment shift.

use tcss_data::{preprocess, synth, Category, Granularity, PreprocessConfig, SynthPreset};

#[test]
fn week_is_consistent_with_month() {
    let d = SynthPreset::Gowalla.generate();
    for c in &d.checkins {
        // ~4.42 weeks per month; allow the +0..5 jitter the generator adds.
        let base = (c.month as f64 * 4.42) as u8;
        assert!(
            c.week >= base && c.week <= base.saturating_add(5).min(52),
            "week {} inconsistent with month {}",
            c.week,
            c.month
        );
    }
}

#[test]
fn users_have_geographically_local_repertoires() {
    // Tobler's law in the generated data: a user's median check-in distance
    // to their own centroid is much smaller than the catalogue spread.
    let d = SynthPreset::Gowalla.generate();
    let dist = d.distance_matrix();
    let catalogue_spread = dist.max_distance();
    let mut local = 0usize;
    let mut total = 0usize;
    for u in 0..d.n_users {
        let pois: Vec<usize> = d
            .checkins
            .iter()
            .filter(|c| c.user == u)
            .map(|c| c.poi)
            .collect();
        if pois.len() < 5 {
            continue;
        }
        // Median pairwise distance within the user's visited POIs.
        let mut pairwise = Vec::new();
        for (idx, &a) in pois.iter().enumerate() {
            for &b in &pois[idx + 1..] {
                pairwise.push(dist.get(a, b));
            }
        }
        pairwise.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = pairwise[pairwise.len() / 2];
        total += 1;
        if median < catalogue_spread * 0.5 {
            local += 1;
        }
    }
    assert!(
        local as f64 > total as f64 * 0.6,
        "only {local}/{total} users are geographically local"
    );
}

#[test]
fn all_presets_have_all_categories() {
    for preset in SynthPreset::ALL {
        let d = preset.generate();
        for cat in Category::ALL {
            let n = d.pois.iter().filter(|p| p.category == cat).count();
            assert!(n > 0, "{}: no {} POIs", d.name, cat.label());
        }
    }
}

#[test]
fn custom_config_is_respected() {
    let cfg = synth::SynthConfig {
        name: "tiny".into(),
        n_users: 30,
        n_pois: 20,
        n_clusters: 2,
        n_communities: 2,
        avg_checkins_per_user: 10,
        ..SynthPreset::Gowalla.config()
    };
    let d = synth::generate(&cfg);
    assert_eq!(d.name, "tiny");
    assert_eq!(d.n_users, 30);
    assert_eq!(d.n_pois(), 20);
    let per_user = d.checkins.len() as f64 / 30.0;
    assert!(
        (5.0..=16.0).contains(&per_user),
        "mean check-ins {per_user}"
    );
}

#[test]
fn preprocessing_is_idempotent() {
    let d = SynthPreset::Yelp.generate();
    let cfg = PreprocessConfig::default();
    let once = preprocess(&d, &cfg);
    let twice = preprocess(&once, &cfg);
    assert_eq!(once.n_users, twice.n_users);
    assert_eq!(once.n_pois(), twice.n_pois());
    assert_eq!(once.checkins.len(), twice.checkins.len());
}

#[test]
fn tensor_entries_match_checkin_cells() {
    let d = SynthPreset::Gmu5k.generate();
    let t = d.tensor(Granularity::Month);
    // Every check-in has its cell set…
    for c in d.checkins.iter().take(500) {
        assert_eq!(t.get(c.user, c.poi, c.month as usize), 1.0);
    }
    // …and every entry traces back to at least one check-in.
    let cells: std::collections::HashSet<(usize, usize, usize)> = d
        .checkins
        .iter()
        .map(|c| (c.user, c.poi, c.month as usize))
        .collect();
    assert_eq!(t.nnz(), cells.len());
}

#[test]
fn different_presets_are_different_datasets() {
    let a = SynthPreset::Gowalla.generate();
    let b = SynthPreset::Foursquare.generate();
    assert_ne!(a.n_users, b.n_users);
    assert_ne!(a.checkins.len(), b.checkins.len());
}

#[test]
fn social_copies_create_shared_poi_visits() {
    // With social_copy_prob > 0, a visible share of each user's POIs must
    // also appear in some friend's history.
    let d = SynthPreset::Gowalla.generate();
    let mut visited: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); d.n_users];
    for c in &d.checkins {
        visited[c.user].insert(c.poi);
    }
    let mut shared = 0.0;
    let mut total = 0.0;
    for u in 0..d.n_users {
        let friends = d.social.neighbors(u);
        if friends.is_empty() {
            continue;
        }
        for &j in &visited[u] {
            total += 1.0;
            if friends.iter().any(|&f| visited[f].contains(&j)) {
                shared += 1.0;
            }
        }
    }
    assert!(
        shared / total > 0.25,
        "only {:.1}% of visited POIs shared with friends",
        100.0 * shared / total
    );
}
