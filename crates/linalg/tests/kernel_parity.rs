//! Bitwise parity for the fixed-lane kernels (`tcss_linalg::kernels`).
//!
//! The kernels' module docs pin a canonical reduction order (lane `l` sums
//! every `LANES`-th term ascending; lanes combine as a fixed pairwise tree;
//! the tail folds in sequentially). This suite re-implements that order
//! naively — straight from the documented contract, sharing no code with
//! the kernels — and pins every kernel to it with `f64::to_bits` equality,
//! at sizes straddling the lane boundary (0, 1, LANES±1, …) and the 64-wide
//! matrix tiles (63/64/65).
//!
//! The blocked `matmul`/`gram` consumers are additionally pinned to be
//! thread-count independent at tile-boundary shapes: the kernels define a
//! fixed order, so 1/2/4 threads must agree bit-for-bit.

use proptest::prelude::*;
use tcss_linalg::kernels::{
    axpy, dequant_i16, dot, dot4, dot_f32, dot_f32_i16, fused_mul3_axpy, fused_mul_axpy, mul3_f32,
    sum, update_row_quad,
};
use tcss_linalg::{lowp, set_num_threads, Matrix, LANES, LANES_F32};

/// Sizes straddling the lane boundary and the 64-wide tile boundary.
const BOUNDARY_SIZES: [usize; 11] = [0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65];

/// The documented canonical reduction order, applied to precomputed terms.
/// This is the *reference* the kernels are pinned against; it is written
/// from the module-docs pseudocode, not from the kernel code.
fn lanes_reduce(terms: &[f64]) -> f64 {
    let n = terms.len() - terms.len() % LANES;
    let mut lane = [0.0f64; LANES];
    for (i, &t) in terms[..n].iter().enumerate() {
        lane[i % LANES] += t;
    }
    let mut s = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    for &t in &terms[n..] {
        s += t;
    }
    s
}

/// A strategy over vector lengths: draws every boundary size (weighted
/// heavily) plus arbitrary lengths past the last boundary.
fn len_strategy() -> impl Strategy<Value = usize> {
    (0usize..108).prop_map(|i| {
        if i < 44 {
            BOUNDARY_SIZES[i % BOUNDARY_SIZES.len()]
        } else {
            i + 22 // 66..130
        }
    })
}

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot` follows the canonical order exactly, for every length class.
    #[test]
    fn dot_is_canonical_order(
        (a, b) in len_strategy().prop_flat_map(|n| (vec_strategy(n), vec_strategy(n)))
    ) {
        let terms: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        prop_assert_eq!(dot(&a, &b).to_bits(), lanes_reduce(&terms).to_bits());
    }

    /// `dot4` (the Eq 6 scoring kernel): left-to-right product association
    /// per term, canonical summation order across terms.
    #[test]
    fn dot4_is_canonical_order(
        (a, b, c, d) in len_strategy().prop_flat_map(|n| {
            (vec_strategy(n), vec_strategy(n), vec_strategy(n), vec_strategy(n))
        })
    ) {
        let terms: Vec<f64> = (0..a.len())
            .map(|i| ((a[i] * b[i]) * c[i]) * d[i])
            .collect();
        prop_assert_eq!(
            dot4(&a, &b, &c, &d).to_bits(),
            lanes_reduce(&terms).to_bits()
        );
    }

    /// `sum` follows the canonical order exactly.
    #[test]
    fn sum_is_canonical_order(
        a in len_strategy().prop_flat_map(vec_strategy)
    ) {
        prop_assert_eq!(sum(&a).to_bits(), lanes_reduce(&a).to_bits());
    }

    /// The elementwise kernels are bit-for-bit the scalar loops they
    /// replaced: no cross-element reduction, so the lane structure must be
    /// invisible.
    #[test]
    fn elementwise_kernels_match_scalar_loops(
        (s, a, b, d, y0) in (len_strategy(), -2.0f64..2.0).prop_flat_map(|(n, s)| {
            (
                Just(s),
                vec_strategy(n),
                vec_strategy(n),
                vec_strategy(n),
                vec_strategy(n),
            )
        })
    ) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let mut got = y0.clone();
        let mut want = y0.clone();
        axpy(s, &a, &mut got);
        for (yi, &xi) in want.iter_mut().zip(&a) {
            *yi += s * xi;
        }
        prop_assert_eq!(bits(&got), bits(&want));

        fused_mul_axpy(s, &a, &b, &mut got);
        for i in 0..want.len() {
            want[i] += (s * a[i]) * b[i];
        }
        prop_assert_eq!(bits(&got), bits(&want));

        fused_mul3_axpy(s, &a, &b, &d, &mut got);
        for i in 0..want.len() {
            want[i] += ((s * a[i]) * b[i]) * d[i];
        }
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// `update_row_quad` is four sequential adds per element — bitwise
    /// identical to four consecutive scalar axpy loops in ascending row
    /// order.
    #[test]
    fn update_row_quad_matches_sequential_axpys(
        (w, r0, r1, r2, r3, y0) in len_strategy().prop_flat_map(|n| {
            (
                (-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0)
                    .prop_map(|(w0, w1, w2, w3)| [w0, w1, w2, w3]),
                vec_strategy(n),
                vec_strategy(n),
                vec_strategy(n),
                vec_strategy(n),
                vec_strategy(n),
            )
        })
    ) {
        let mut got = y0.clone();
        let mut want = y0;
        update_row_quad(&mut got, w, &r0, &r1, &r2, &r3);
        for (wk, row) in w.iter().zip([&r0, &r1, &r2, &r3]) {
            for (yi, &xi) in want.iter_mut().zip(row) {
                *yi += wk * xi;
            }
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&got), bits(&want));
    }
}

/// Sizes straddling the f32 lane boundary (`LANES_F32` = 8) and the 64-wide
/// blocking boundary of the low-precision matmuls.
const BOUNDARY_SIZES_F32: [usize; 12] = [0, 1, 7, 8, 9, 15, 16, 17, 23, 63, 64, 65];

/// The documented canonical f32 reduction order, applied to precomputed
/// terms: lane `l` sums every `LANES_F32`-th term ascending, lanes combine
/// as `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`, the tail folds in
/// sequentially. Written from the module-docs pseudocode, sharing no code
/// with the kernels.
fn lanes_reduce_f32(terms: &[f32]) -> f32 {
    let n = terms.len() - terms.len() % LANES_F32;
    let mut lane = [0.0f32; LANES_F32];
    for (i, &t) in terms[..n].iter().enumerate() {
        lane[i % LANES_F32] += t;
    }
    let mut s =
        ((lane[0] + lane[1]) + (lane[2] + lane[3])) + ((lane[4] + lane[5]) + (lane[6] + lane[7]));
    for &t in &terms[n..] {
        s += t;
    }
    s
}

fn len_strategy_f32() -> impl Strategy<Value = usize> {
    (0usize..108).prop_map(|i| {
        if i < 48 {
            BOUNDARY_SIZES_F32[i % BOUNDARY_SIZES_F32.len()]
        } else {
            i + 18 // 66..126
        }
    })
}

fn vec_strategy_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f64..2.0, len)
        .prop_map(|v| v.into_iter().map(|x| x as f32).collect())
}

fn i16_strategy(len: usize) -> impl Strategy<Value = Vec<i16>> {
    proptest::collection::vec(-32767i32..=32767, len)
        .prop_map(|v| v.into_iter().map(|x| x as i16).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot_f32` follows the canonical eight-lane order exactly.
    #[test]
    fn dot_f32_is_canonical_order(
        (a, b) in len_strategy_f32().prop_flat_map(|n| (vec_strategy_f32(n), vec_strategy_f32(n)))
    ) {
        let terms: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        prop_assert_eq!(dot_f32(&a, &b).to_bits(), lanes_reduce_f32(&terms).to_bits());
    }

    /// `dot_f32_i16`: each term widens the i16 operand to f32 in-register,
    /// then the canonical order applies unchanged.
    #[test]
    fn dot_f32_i16_is_canonical_order(
        (a, q) in len_strategy_f32().prop_flat_map(|n| (vec_strategy_f32(n), i16_strategy(n)))
    ) {
        let terms: Vec<f32> = a.iter().zip(&q).map(|(&x, &qi)| x * f32::from(qi)).collect();
        prop_assert_eq!(dot_f32_i16(&a, &q).to_bits(), lanes_reduce_f32(&terms).to_bits());
    }

    /// The elementwise f32 kernels are bit-for-bit the scalar loops they
    /// replaced — no cross-element reduction, so lanes must be invisible.
    #[test]
    fn elementwise_f32_kernels_match_scalar_loops(
        (a, b, c, q, s) in len_strategy_f32().prop_flat_map(|n| {
            (
                vec_strategy_f32(n),
                vec_strategy_f32(n),
                vec_strategy_f32(n),
                i16_strategy(n),
                -2.0f64..2.0,
            )
        })
    ) {
        let s = s as f32;
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let mut got = vec![0.0f32; a.len()];
        mul3_f32(&a, &b, &c, &mut got);
        let want: Vec<f32> = (0..a.len()).map(|i| (a[i] * b[i]) * c[i]).collect();
        prop_assert_eq!(bits(&got), bits(&want));

        dequant_i16(&q, s, &mut got);
        let want: Vec<f32> = q.iter().map(|&qi| f32::from(qi) * s).collect();
        prop_assert_eq!(bits(&got), bits(&want));
    }
}

/// The low-precision batched matmuls are bitwise identical at 1/2/4
/// threads at blocking-boundary shapes: every output element is one
/// fixed-order dot, and parallelism splits only the output grid.
#[test]
fn lowp_matmul_thread_parity_at_block_boundaries() {
    for &(b_rows, j_rows, r) in &[
        (1usize, 1usize, 1usize),
        (63, 65, 8),
        (65, 129, 9),
        (64, 64, 16),
    ] {
        let w: Vec<f32> = (0..b_rows * r)
            .map(|i| ((i * 7) as f32 * 0.013).sin())
            .collect();
        let u: Vec<f32> = (0..j_rows * r)
            .map(|i| ((i * 3) as f32 * 0.029).cos())
            .collect();
        let q: Vec<i16> = (0..j_rows * r)
            .map(|i| ((i * 241) % 501) as i16 - 250)
            .collect();
        let scales: Vec<f32> = (0..j_rows).map(|j| 1.0e-3 + j as f32 * 1.0e-5).collect();
        set_num_threads(Some(1));
        let mut want_f = vec![0.0f32; b_rows * j_rows];
        let mut want_q = vec![0.0f32; b_rows * j_rows];
        lowp::matmul_nt_f32(&w, b_rows, &u, j_rows, r, &mut want_f);
        lowp::matmul_nt_i16(&w, b_rows, &q, &scales, j_rows, r, &mut want_q);
        for threads in [2usize, 4] {
            set_num_threads(Some(threads));
            let mut got_f = vec![0.0f32; b_rows * j_rows];
            let mut got_q = vec![0.0f32; b_rows * j_rows];
            lowp::matmul_nt_f32(&w, b_rows, &u, j_rows, r, &mut got_f);
            lowp::matmul_nt_i16(&w, b_rows, &q, &scales, j_rows, r, &mut got_q);
            let same = want_f
                .iter()
                .zip(&got_f)
                .all(|(x, y)| x.to_bits() == y.to_bits())
                && want_q
                    .iter()
                    .zip(&got_q)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "lowp matmul {b_rows}x{j_rows}x{r} differs at {threads} threads"
            );
        }
    }
    set_num_threads(None);
}

fn filled(rows: usize, cols: usize, phase: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * cols + j) as f64 * 0.137 + phase).sin()
    })
}

/// Blocked `matmul` at tile-boundary shapes: bitwise identical at 1/2/4
/// threads (the quad kernel's order is a function of shape only), and
/// numerically the textbook product.
#[test]
fn matmul_thread_parity_at_tile_boundaries() {
    for &(m, k, n) in &[
        (1usize, 5usize, 3usize),
        (63, 65, 64),
        (64, 64, 64),
        (65, 63, 66),
        (65, 129, 4),
    ] {
        let a = filled(m, k, 0.3);
        let b = filled(k, n, 1.1);
        set_num_threads(Some(1));
        let want = a.matmul(&b).expect("shapes agree");
        for threads in [2usize, 4] {
            set_num_threads(Some(threads));
            let got = a.matmul(&b).expect("shapes agree");
            let same = want
                .as_slice()
                .iter()
                .zip(got.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "matmul {m}x{k}x{n} differs at {threads} threads");
        }
        // Value correctness against the textbook triple loop.
        for i in 0..m {
            for j in 0..n {
                let naive: f64 = (0..k).map(|t| a.get(i, t) * b.get(t, j)).sum();
                assert!(
                    (want.get(i, j) - naive).abs() <= 1e-12 * (1.0 + naive.abs()),
                    "matmul {m}x{k}x{n} wrong at ({i},{j})"
                );
            }
        }
    }
    set_num_threads(None);
}

/// Blocked `gram` at tile-boundary shapes: bitwise identical at 1/2/4
/// threads, bitwise symmetric, and numerically `AᵀA`.
#[test]
fn gram_thread_parity_at_tile_boundaries() {
    for &(rows, cols) in &[(1usize, 3usize), (63, 5), (64, 4), (65, 4), (129, 3)] {
        let a = filled(rows, cols, 0.7);
        set_num_threads(Some(1));
        let want = a.gram();
        for threads in [2usize, 4] {
            set_num_threads(Some(threads));
            let got = a.gram();
            let same = want
                .as_slice()
                .iter()
                .zip(got.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "gram {rows}x{cols} differs at {threads} threads");
        }
        for p in 0..cols {
            for q in 0..cols {
                let naive: f64 = (0..rows).map(|t| a.get(t, p) * a.get(t, q)).sum();
                assert!(
                    (want.get(p, q) - naive).abs() <= 1e-12 * (1.0 + naive.abs()),
                    "gram {rows}x{cols} wrong at ({p},{q})"
                );
                assert_eq!(
                    want.get(p, q).to_bits(),
                    want.get(q, p).to_bits(),
                    "gram asymmetric at ({p},{q})"
                );
            }
        }
    }
    set_num_threads(None);
}
