//! Additional numerical stress tests for the linear-algebra kernels.

// Index loops mirror the table/axis layout here; see tcss-linalg's
// crate-level rationale for the same allow.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_linalg::eigen::OrthIterConfig;
use tcss_linalg::{
    jacobi_eigen, qr_thin, solve_linear_system, top_r_eigenvectors, truncated_svd, DenseSymOp,
    Matrix,
};

fn random_symmetric(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = Matrix::random_uniform(n, n, 1.0, &mut rng);
    a.add(&a.transpose()).unwrap().scaled(0.5)
}

#[test]
fn jacobi_reconstructs_matrix() {
    // A = V Λ Vᵀ must hold to machine precision.
    for seed in [1u64, 2, 3] {
        let a = random_symmetric(8, seed);
        let (vals, vecs) = jacobi_eigen(&a, 200).unwrap();
        let mut lambda = Matrix::zeros(8, 8);
        for (i, &v) in vals.iter().enumerate() {
            lambda.set(i, i, v);
        }
        let rec = vecs
            .matmul(&lambda)
            .unwrap()
            .matmul(&vecs.transpose())
            .unwrap();
        assert!(
            rec.approx_eq(&a, 1e-9),
            "seed {seed}: reconstruction error {}",
            rec.sub(&a).unwrap().max_abs()
        );
    }
}

#[test]
fn jacobi_handles_repeated_eigenvalues() {
    // 2·I has a fourfold-repeated eigenvalue; any orthonormal basis works.
    let a = Matrix::identity(4).scaled(2.0);
    let (vals, vecs) = jacobi_eigen(&a, 50).unwrap();
    for v in vals {
        assert!((v - 2.0).abs() < 1e-12);
    }
    assert!(vecs.gram().approx_eq(&Matrix::identity(4), 1e-10));
}

#[test]
fn orth_iter_on_clustered_spectrum() {
    // Eigenvalues 10, 9.99 (nearly degenerate pair) + well-separated tail:
    // the invariant subspace is still found (Ritz values match Jacobi).
    let mut a = Matrix::zeros(5, 5);
    for (i, v) in [10.0, 9.99, 1.0, 0.5, 0.1].into_iter().enumerate() {
        a.set(i, i, v);
    }
    // Rotate with a random orthogonal basis so it isn't trivially diagonal.
    let mut rng = StdRng::seed_from_u64(5);
    let mut q = Matrix::random_uniform(5, 5, 1.0, &mut rng);
    tcss_linalg::orthonormalize(&mut q, &mut rng).unwrap();
    let rotated = q.matmul(&a).unwrap().matmul(&q.transpose()).unwrap();
    let sym = rotated.add(&rotated.transpose()).unwrap().scaled(0.5);
    let op = DenseSymOp::new(&sym);
    let cfg = OrthIterConfig {
        max_iters: 2000,
        ..Default::default()
    };
    let (vals, vecs) = top_r_eigenvectors(&op, 2, &cfg).unwrap();
    assert!((vals[0] - 10.0).abs() < 1e-4, "{vals:?}");
    assert!((vals[1] - 9.99).abs() < 1e-4, "{vals:?}");
    // Residual check over the subspace.
    for j in 0..2 {
        let v = vecs.col(j);
        let av = sym.matvec(&v).unwrap();
        let mut resid = 0.0;
        for i in 0..5 {
            resid += (av[i] - vals[j] * v[i]).powi(2);
        }
        assert!(resid.sqrt() < 1e-3, "pair {j} residual {}", resid.sqrt());
    }
}

#[test]
fn svd_error_is_optimal_among_tested_ranks() {
    // Eckart–Young sanity: higher rank never reconstructs worse.
    let mut rng = StdRng::seed_from_u64(7);
    let a = Matrix::random_uniform(10, 6, 1.0, &mut rng);
    let mut prev_err = f64::MAX;
    for r in 1..=6 {
        let svd = truncated_svd(&a, r, &OrthIterConfig::default()).unwrap();
        let err = svd.reconstruct().unwrap().sub(&a).unwrap().frobenius_norm();
        assert!(
            err <= prev_err + 1e-9,
            "rank {r}: error {err} grew from {prev_err}"
        );
        prev_err = err;
    }
    assert!(prev_err < 1e-7, "full-rank SVD should be exact: {prev_err}");
}

#[test]
fn qr_of_nearly_singular_matrix() {
    // Columns nearly parallel: QR must still give an orthonormal Q.
    let mut a = Matrix::zeros(5, 2);
    for i in 0..5 {
        a.set(i, 0, 1.0 + i as f64);
        a.set(i, 1, 1.0 + i as f64 + 1e-9 * (i as f64).sin());
    }
    let (q, r) = qr_thin(&a).unwrap();
    assert!(q.gram().approx_eq(&Matrix::identity(2), 1e-8));
    assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-9));
}

#[test]
fn solve_hilbert_like_system() {
    // Moderately ill-conditioned system: residual (not solution error)
    // should stay small with partial pivoting.
    let n = 6;
    let a = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
    let rhs: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let x = solve_linear_system(&a, &rhs).unwrap();
    let ax = a.matvec(&x).unwrap();
    for i in 0..n {
        assert!(
            (ax[i] - rhs[i]).abs() < 1e-6,
            "residual {} at row {i}",
            (ax[i] - rhs[i]).abs()
        );
    }
}

#[test]
fn gram_of_orthonormal_matrix_is_identity() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut q = Matrix::random_uniform(12, 5, 1.0, &mut rng);
    tcss_linalg::orthonormalize(&mut q, &mut rng).unwrap();
    assert!(q.gram().approx_eq(&Matrix::identity(5), 1e-10));
}

#[test]
fn eigenvalue_sum_equals_trace_on_random_matrices() {
    for seed in 20..25u64 {
        let a = random_symmetric(7, seed);
        let trace: f64 = (0..7).map(|i| a.get(i, i)).sum();
        let (vals, _) = jacobi_eigen(&a, 200).unwrap();
        let sum: f64 = vals.iter().sum();
        assert!((sum - trace).abs() < 1e-9, "seed {seed}");
    }
}
