//! Statistical helpers: cosine similarity (for the time-factor heatmaps of
//! Figs 6–7), softmax, and simple summaries.

use crate::{vector, Matrix, Result};

/// Cosine similarity between two vectors; 0.0 when either has zero norm.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = vector::norm2(a);
    let nb = vector::norm2(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        vector::dot(a, b) / (na * nb)
    }
}

/// Pairwise cosine similarity between the **rows** of `m`.
///
/// For the paper's Fig 6 the rows are the time-unit embeddings `U³ₖ`; the
/// output is the `K × K` heatmap matrix.
pub fn cosine_similarity_matrix(m: &Matrix) -> Matrix {
    let n = m.rows();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        out.set(i, i, 1.0);
        for j in (i + 1)..n {
            let s = cosine_similarity(m.row(i), m.row(j));
            out.set(i, j, s);
            out.set(j, i, s);
        }
    }
    out
}

/// Numerically-stable softmax (subtracts the max before exponentiating).
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Sample mean and (population) standard deviation.
pub fn mean_std(x: &[f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mean = vector::mean(x);
    let var = x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
    (mean, var.sqrt())
}

/// Root-mean-squared error between paired predictions and targets.
pub fn rmse(pred: &[f64], target: &[f64]) -> Result<f64> {
    if pred.len() != target.len() {
        return Err(crate::LinalgError::ShapeMismatch {
            expected: format!("{} elements", target.len()),
            got: format!("{} elements", pred.len()),
        });
    }
    if pred.is_empty() {
        return Ok(0.0);
    }
    let mse = pred
        .iter()
        .zip(target.iter())
        .map(|(&p, &t)| (p - t).powi(2))
        .sum::<f64>()
        / pred.len() as f64;
    Ok(mse.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn similarity_matrix_symmetric_unit_diagonal() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        let s = cosine_similarity_matrix(&m);
        for i in 0..3 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((s.get(i, j) - s.get(j, i)).abs() < 1e-12);
            }
        }
        assert!((s.get(0, 1) - (1.0 / 2.0_f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 1002.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn rmse_known_value() {
        let e = rmse(&[1.0, 2.0], &[0.0, 4.0]).unwrap();
        assert!((e - (2.5_f64).sqrt()).abs() < 1e-12);
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert_eq!(rmse(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn mean_std_constant_slice() {
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 0.0);
    }
}
