//! Small vector kernels shared across the workspace.

/// Dot product of two equal-length slices.
///
/// Delegates to the fixed-lane kernel [`crate::kernels::dot`]; the
/// summation order is that kernel's canonical lane order (a pure function
/// of the length, so still deterministic across thread counts).
///
/// Debug-asserts equal lengths; in release builds the shorter length wins,
/// which is never exercised by callers in this workspace.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dot(a, b)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` (delegates to [`crate::kernels::axpy`]; elementwise,
/// bitwise identical to the scalar loop).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernels::axpy(alpha, x, y)
}

/// Scale a vector in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Normalize to unit L2 norm in place; returns the original norm.
///
/// A zero vector is left untouched (returns 0.0) so callers can detect and
/// re-randomize degenerate iterates.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
    n
}

/// Elementwise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Mean of a slice; 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Index and value of the maximum entry; `None` for an empty slice.
/// NaN entries are never selected.
pub fn argmax(a: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[1.0, f64::NAN, 3.0, 2.0]), Some((2, 3.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
