//! Fixed-lane f64 micro-kernels for the training and scoring hot paths.
//!
//! Every primitive here is plain safe Rust — no intrinsics, no `unsafe`.
//! Two implementation shapes, chosen by what blocks autovectorization:
//!
//! * **Reductions** ([`dot`], [`dot4`], [`sum`]) carry a serial dependency
//!   through their accumulator, which LLVM must not reassociate; they are
//!   written over [`slice::chunks_exact`] with [`LANES`] independent
//!   accumulators plus an explicit remainder loop, which both breaks the
//!   dependency chain and eliminates per-element bounds checks.
//! * **Elementwise kernels** ([`axpy`] and friends) have no cross-element
//!   dependency, so vectorization is legal as-is; the only obstacle is
//!   bounds checking. They are plain index loops over slices re-sliced to
//!   a common length up front — after that normalization LLVM proves every
//!   index in range and vectorizes the loop directly. (A manual lane
//!   structure here only obscures the loop; measured, it was *slower* than
//!   the normalized scalar form.)
//!
//! # Lane width
//!
//! [`LANES`] is 4: four f64 lanes fill one 256-bit AVX2 register, and on
//! narrower targets (128-bit SSE2/NEON) LLVM splits each 4-wide operation
//! into two 2-wide ones without changing the arithmetic. Widening to 8
//! would double the remainder-loop cost for the rank-sized (`r ≤ 16`)
//! vectors that dominate this workspace while only helping AVX-512 hosts.
//! Tile widths upstream ([`crate::Matrix`]'s 64-wide blocks) are multiples
//! of `LANES`, so full reduction tiles never enter a remainder loop;
//! [`update_row_quad`] likewise fuses `LANES` source rows per pass.
//!
//! # Reduction-order contract
//!
//! Kernels come in two families with different determinism obligations:
//!
//! * **Elementwise kernels** ([`axpy`], [`fused_mul_axpy`],
//!   [`fused_mul3_axpy`], [`update_row_quad`]) perform no cross-element
//!   reduction: each output element is an independent chain of adds in
//!   the documented order. They are **bit-for-bit identical** to the
//!   scalar loops they replaced — vectorizing across elements never
//!   reorders any per-element float chain.
//! * **Reduction kernels** ([`dot`], [`dot4`], [`sum`]) use `LANES`
//!   independent accumulators and therefore define a **new canonical
//!   summation order** (see below). It is a *fixed* order — a pure
//!   function of the input length, never of the thread count or the
//!   caller — so the workspace-wide bitwise determinism contract
//!   (`tcss_linalg::parallel`) is preserved: every path that consumes a
//!   reduction kernel produces the same bits at 1, 2, or 4 threads.
//!
//! The canonical reduction order, pinned by the proptests in
//! `tests/kernel_parity.rs`:
//!
//! ```text
//! n   = len - len % LANES            (the "main" prefix)
//! s_l = Σ_{i < n, i ≡ l (mod LANES)} term(i)     for l = 0..LANES
//! out = ((s_0 + s_1) + (s_2 + s_3)) + term(n) + term(n+1) + …
//! ```
//!
//! i.e. lane `l` accumulates every `LANES`-th term starting at `l`, in
//! ascending index order; the four lane sums combine as a fixed pairwise
//! tree; the tail terms are folded in sequentially, ascending. For
//! `len < LANES` the main prefix is empty and the kernel degenerates to
//! the plain left-to-right sum.

/// Fixed vector width (f64 lanes) of every kernel in this module.
pub const LANES: usize = 4;

/// Fixed vector width (f32 lanes) of the single-precision kernels.
///
/// Eight f32 lanes fill the same 256-bit AVX2 register four f64 lanes do,
/// so the f32 family runs at **double the effective SIMD width** of the
/// f64 family on the same hardware — the whole point of the quantized
/// serving snapshots that consume these kernels. The canonical reduction
/// order mirrors the f64 contract with eight lanes instead of four:
///
/// ```text
/// n   = len - len % LANES_F32
/// s_l = Σ_{i < n, i ≡ l (mod 8)} term(i)          for l = 0..8
/// out = (((s_0+s_1)+(s_2+s_3)) + ((s_4+s_5)+(s_6+s_7))) + term(n) + …
/// ```
///
/// i.e. lane `l` accumulates every 8th term ascending, the eight lane
/// sums combine as a fixed three-level pairwise tree, and tail terms fold
/// in sequentially. For `len < 8` the kernel degenerates to the plain
/// left-to-right sum. The order is a pure function of the input length —
/// never of the thread count — so the workspace-wide bitwise determinism
/// contract extends to the f32 lanes unchanged (pinned by the reference
/// implementations in `tests/kernel_parity.rs`).
pub const LANES_F32: usize = 8;

/// Multi-accumulator dot product `Σ a[i]·b[i]` in the canonical lane order
/// (see the module docs). Slices must have equal length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(n);
    let (b_main, b_tail) = b.split_at(n);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        s += x * y;
    }
    s
}

/// Fused four-slice dot `Σ ((a[i]·b[i])·c[i])·d[i]` in the canonical lane
/// order. This is the model's scoring kernel (`X̂ = Σ_t h_t U¹ U² U³`, paper
/// Eq 6): the per-term product association matches the scalar loop it
/// replaced (left-to-right), only the summation order is the lane tree.
#[inline]
pub fn dot4(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    debug_assert_eq!(a.len(), d.len());
    let n = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(n);
    let (b_main, b_tail) = b.split_at(n);
    let (c_main, c_tail) = c.split_at(n);
    let (d_main, d_tail) = d.split_at(n);
    let mut acc = [0.0f64; LANES];
    for (((ca, cb), cc), cd) in a_main
        .chunks_exact(LANES)
        .zip(b_main.chunks_exact(LANES))
        .zip(c_main.chunks_exact(LANES))
        .zip(d_main.chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += ((ca[l] * cb[l]) * cc[l]) * cd[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in 0..a_tail.len() {
        s += ((a_tail[i] * b_tail[i]) * c_tail[i]) * d_tail[i];
    }
    s
}

/// Multi-accumulator sum `Σ a[i]` in the canonical lane order.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    let n = a.len() - a.len() % LANES;
    let (main, tail) = a.split_at(n);
    let mut acc = [0.0f64; LANES];
    for chunk in main.chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += chunk[l];
        }
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &x in tail {
        s += x;
    }
    s
}

/// `y[i] += alpha · x[i]` (elementwise — bitwise identical to the scalar
/// loop).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let x = &x[..n];
    for i in 0..n {
        y[i] += alpha * x[i];
    }
}

/// Fused elementwise-product-accumulate `y[i] += (c·a[i])·b[i]`
/// (elementwise — bitwise identical to the scalar loop, left-to-right
/// product association).
#[inline]
pub fn fused_mul_axpy(c: f64, a: &[f64], b: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.len(), y.len());
    debug_assert_eq!(b.len(), y.len());
    let n = y.len();
    let (a, b) = (&a[..n], &b[..n]);
    for i in 0..n {
        y[i] += (c * a[i]) * b[i];
    }
}

/// Fused triple-product accumulate `y[i] += ((c·a[i])·b[i])·d[i]`
/// (elementwise — bitwise identical to the scalar loop, left-to-right
/// product association). This is the shape of every factor-gradient inner
/// loop in the entry backprop (`g += c·h⊙U⊙U`, paper Eq 16–19).
#[inline]
pub fn fused_mul3_axpy(c: f64, a: &[f64], b: &[f64], d: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.len(), y.len());
    debug_assert_eq!(b.len(), y.len());
    debug_assert_eq!(d.len(), y.len());
    let n = y.len();
    let (a, b, d) = (&a[..n], &b[..n], &d[..n]);
    for i in 0..n {
        y[i] += ((c * a[i]) * b[i]) * d[i];
    }
}

/// `LANES`-wide tile micro-kernel: accumulate four weighted rows into an
/// output row in one pass,
///
/// ```text
/// out[j] = (((out[j] + w[0]·r0[j]) + w[1]·r1[j]) + w[2]·r2[j]) + w[3]·r3[j]
/// ```
///
/// The four adds per element are **sequential** (not a pairwise tree), so
/// the result is bit-for-bit identical to four consecutive [`axpy`] calls
/// — and hence to the scalar ascending-`k` loops the tiled `matmul`/`gram`
/// kernels and the per-user slice evaluation were built from. What the
/// fusion buys is memory traffic: the output row is loaded and stored once
/// per four source rows instead of once per row, and the four independent
/// products per element fill the FMA pipeline.
#[inline]
pub fn update_row_quad(
    out: &mut [f64],
    w: [f64; 4],
    r0: &[f64],
    r1: &[f64],
    r2: &[f64],
    r3: &[f64],
) {
    debug_assert_eq!(out.len(), r0.len());
    debug_assert_eq!(out.len(), r1.len());
    debug_assert_eq!(out.len(), r2.len());
    debug_assert_eq!(out.len(), r3.len());
    let n = out.len();
    let (r0, r1, r2, r3) = (&r0[..n], &r1[..n], &r2[..n], &r3[..n]);
    for i in 0..n {
        let mut acc = out[i];
        acc += w[0] * r0[i];
        acc += w[1] * r1[i];
        acc += w[2] * r2[i];
        acc += w[3] * r3[i];
        out[i] = acc;
    }
}

/// Adam's first-moment decay β₁ (the optimizer literature default).
pub const ADAM_B1: f64 = 0.9;
/// Adam's second-moment decay β₂.
pub const ADAM_B2: f64 = 0.999;
/// Adam's denominator guard ε.
pub const ADAM_EPS: f64 = 1e-8;

/// Scalar inputs of one [`adam_update`] call: learning rate, weight decay,
/// the β/ε constants and the step-`t` bias corrections `1 − βᵗ`. Bundled so
/// every caller — the in-process trainer and the tail-sharded distributed
/// workers alike — derives them through [`AdamParams::for_step`] and cannot
/// drift in how `t` turns into `bc1`/`bc2`.
#[derive(Debug, Clone, Copy)]
pub struct AdamParams {
    /// Effective learning rate (base rate × any backoff scale).
    pub lr: f64,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f64,
    /// First-moment bias correction `1 − β₁ᵗ`.
    pub bc1: f64,
    /// Second-moment bias correction `1 − β₂ᵗ`.
    pub bc2: f64,
}

impl AdamParams {
    /// Parameters for step `t` (the *post-increment* step counter: the
    /// first update passes `t = 1`).
    #[inline]
    pub fn for_step(lr: f64, weight_decay: f64, t: u64) -> Self {
        AdamParams {
            lr,
            weight_decay,
            bc1: 1.0 - ADAM_B1.powi(t as i32),
            bc2: 1.0 - ADAM_B2.powi(t as i32),
        }
    }
}

/// One Adam step over a parameter slice: moment update plus parameter
/// write-back,
///
/// ```text
/// m[i] = β₁·m[i] + (1−β₁)·g[i]
/// v[i] = β₂·v[i] + (1−β₂)·g[i]·g[i]
/// w[i] -= lr · (m̂/(√v̂ + ε) + weight_decay·w[i])      m̂ = m[i]/bc1, v̂ = v[i]/bc2
/// ```
///
/// Elementwise — no cross-element reduction, so the result is bit-for-bit
/// identical to the scalar loop *and* decomposes freely over any row range:
/// updating `[0, n)` in one call equals updating `[0, k)` then `[k, n)`.
/// That range-splittability is what lets the distributed tail-sharded mode
/// run this kernel per owned row range on different processes and still
/// land on the single-process bits.
#[inline]
pub fn adam_update(w: &mut [f64], g: &[f64], m: &mut [f64], v: &mut [f64], p: &AdamParams) {
    debug_assert_eq!(w.len(), g.len());
    debug_assert_eq!(w.len(), m.len());
    debug_assert_eq!(w.len(), v.len());
    let n = w.len();
    let g = &g[..n];
    let (m, v) = (&mut m[..n], &mut v[..n]);
    for i in 0..n {
        m[i] = ADAM_B1 * m[i] + (1.0 - ADAM_B1) * g[i];
        v[i] = ADAM_B2 * v[i] + (1.0 - ADAM_B2) * g[i] * g[i];
        let mhat = m[i] / p.bc1;
        let vhat = v[i] / p.bc2;
        w[i] -= p.lr * (mhat / (vhat.sqrt() + ADAM_EPS) + p.weight_decay * w[i]);
    }
}

/// Multi-accumulator f32 dot product `Σ a[i]·b[i]` in the canonical
/// eight-lane order (see [`LANES_F32`]). Slices must have equal length.
///
/// This is the snapshot-serving score kernel: with `a` a request's
/// quantized weight vector and `b` an f32 POI row straight out of an
/// mmap-ed snapshot, one call produces one score.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() - a.len() % LANES_F32;
    let (a_main, a_tail) = a.split_at(n);
    let (b_main, b_tail) = b.split_at(n);
    let mut acc = [0.0f32; LANES_F32];
    for (ca, cb) in a_main
        .chunks_exact(LANES_F32)
        .zip(b_main.chunks_exact(LANES_F32))
    {
        for l in 0..LANES_F32 {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&x, &y) in a_tail.iter().zip(b_tail.iter()) {
        s += x * y;
    }
    s
}

/// Mixed-precision dot `Σ a[i]·f32(q[i])` in the canonical eight-lane
/// order: each i16 term widens to f32 in-register before the multiply.
///
/// This is the fixed-point snapshot score kernel — the quantized POI row
/// `q` stays i16 in memory (half the f32 footprint) and the caller folds
/// the row's dequantization scale into the *result*
/// (`score = scale · dot_f32_i16(w, q)`), so the full-precision row never
/// materializes anywhere.
#[inline]
pub fn dot_f32_i16(a: &[f32], q: &[i16]) -> f32 {
    debug_assert_eq!(a.len(), q.len());
    let n = a.len() - a.len() % LANES_F32;
    let (a_main, a_tail) = a.split_at(n);
    let (q_main, q_tail) = q.split_at(n);
    let mut acc = [0.0f32; LANES_F32];
    for (ca, cq) in a_main
        .chunks_exact(LANES_F32)
        .zip(q_main.chunks_exact(LANES_F32))
    {
        for l in 0..LANES_F32 {
            acc[l] += ca[l] * f32::from(cq[l]);
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&x, &qv) in a_tail.iter().zip(q_tail.iter()) {
        s += x * f32::from(qv);
    }
    s
}

/// Elementwise triple product `out[i] = (a[i]·b[i])·c[i]` (left-to-right
/// association, no cross-element reduction — bitwise equal to the scalar
/// loop). This builds the f32 weight vector `h ⊙ U¹ᵢ ⊙ U³ₖ` of the
/// snapshot scoring path.
#[inline]
pub fn mul3_f32(a: &[f32], b: &[f32], c: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), out.len());
    debug_assert_eq!(b.len(), out.len());
    debug_assert_eq!(c.len(), out.len());
    let n = out.len();
    let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
    for i in 0..n {
        out[i] = (a[i] * b[i]) * c[i];
    }
}

/// Elementwise dequantization `out[i] = f32(q[i]) · scale` (no reduction;
/// bitwise equal to the scalar loop). Used for the i16 snapshot rows that
/// feed the weight-vector build, where the dequantized row *is* needed.
#[inline]
pub fn dequant_i16(q: &[i16], scale: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len());
    let n = out.len();
    let q = &q[..n];
    for i in 0..n {
        out[i] = f32::from(q[i]) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    /// Naive implementation of the canonical lane order (module docs).
    fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() - a.len() % LANES;
        let mut lanes = [0.0f64; LANES];
        for i in 0..n {
            lanes[i % LANES] += a[i] * b[i];
        }
        let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for i in n..a.len() {
            s += a[i] * b[i];
        }
        s
    }

    #[test]
    fn dot_matches_canonical_order_bitwise() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 63, 64, 65] {
            let a = v(n, |i| (i as f64 * 0.37 - 1.0).sin());
            let b = v(n, |i| (i as f64 * 0.11 + 0.3).cos());
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn dot4_short_lengths_are_sequential() {
        // Below LANES the kernel must be the plain left-to-right sum.
        let a = [0.5, -1.25, 2.0];
        let want = ((a[0] * a[0]) * a[0]) * a[0]
            + ((a[1] * a[1]) * a[1]) * a[1]
            + ((a[2] * a[2]) * a[2]) * a[2];
        assert_eq!(dot4(&a, &a, &a, &a).to_bits(), want.to_bits());
    }

    #[test]
    fn elementwise_kernels_match_scalar_bitwise() {
        for n in [0usize, 1, 3, 4, 5, 8, 11, 64, 65] {
            let a = v(n, |i| (i as f64 * 0.7 - 2.0).sin());
            let b = v(n, |i| (i as f64 * 0.3 + 1.0).cos());
            let d = v(n, |i| i as f64 * 0.01 - 0.2);
            let c = -0.8125;
            let mut y1 = v(n, |i| i as f64 * 0.5);
            let mut y2 = y1.clone();
            axpy(c, &a, &mut y1);
            for i in 0..n {
                y2[i] += c * a[i];
            }
            assert_eq!(y1, y2, "axpy n = {n}");
            fused_mul_axpy(c, &a, &b, &mut y1);
            for i in 0..n {
                y2[i] += (c * a[i]) * b[i];
            }
            assert_eq!(y1, y2, "fused_mul_axpy n = {n}");
            fused_mul3_axpy(c, &a, &b, &d, &mut y1);
            for i in 0..n {
                y2[i] += ((c * a[i]) * b[i]) * d[i];
            }
            assert_eq!(y1, y2, "fused_mul3_axpy n = {n}");
        }
    }

    #[test]
    fn update_row_quad_equals_four_axpys_bitwise() {
        for n in [0usize, 1, 3, 4, 5, 12, 63, 64, 65] {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| v(n, |i| ((i * 7 + r * 13) as f64 * 0.19).sin()))
                .collect();
            let w = [1.5, -0.25, 0.75, 2.0];
            let mut got = v(n, |i| i as f64 * 0.1);
            let mut want = got.clone();
            update_row_quad(&mut got, w, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (k, row) in rows.iter().enumerate() {
                axpy(w[k], row, &mut want);
            }
            let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&got), bits(&want), "n = {n}");
        }
    }

    #[test]
    fn adam_update_matches_scalar_and_splits_by_range() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 65] {
            let g = v(n, |i| (i as f64 * 0.23 - 0.7).sin());
            let mut w1 = v(n, |i| (i as f64 * 0.41).cos());
            let mut m1 = v(n, |i| i as f64 * 0.003 - 0.1);
            let mut v1 = v(n, |i| (i as f64 * 0.002 + 0.05).abs());
            let (mut w2, mut m2, mut v2) = (w1.clone(), m1.clone(), v1.clone());
            let (mut w3, mut m3, mut v3) = (w1.clone(), m1.clone(), v1.clone());
            let p = AdamParams::for_step(0.05, 0.01, 3);
            adam_update(&mut w1, &g, &mut m1, &mut v1, &p);
            // Scalar reference, written as the pre-kernel inline loop was.
            for i in 0..n {
                m2[i] = ADAM_B1 * m2[i] + (1.0 - ADAM_B1) * g[i];
                v2[i] = ADAM_B2 * v2[i] + (1.0 - ADAM_B2) * g[i] * g[i];
                let mhat = m2[i] / p.bc1;
                let vhat = v2[i] / p.bc2;
                w2[i] -= p.lr * (mhat / (vhat.sqrt() + ADAM_EPS) + p.weight_decay * w2[i]);
            }
            let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&w1), bits(&w2), "w n = {n}");
            assert_eq!(bits(&m1), bits(&m2), "m n = {n}");
            assert_eq!(bits(&v1), bits(&v2), "v n = {n}");
            // Range-splittability: [0, k) then [k, n) equals one call.
            let k = n / 3;
            adam_update(&mut w3[..k], &g[..k], &mut m3[..k], &mut v3[..k], &p);
            adam_update(&mut w3[k..], &g[k..], &mut m3[k..], &mut v3[k..], &p);
            assert_eq!(bits(&w3), bits(&w1), "split w n = {n}");
            assert_eq!(bits(&m3), bits(&m1), "split m n = {n}");
            assert_eq!(bits(&v3), bits(&v1), "split v n = {n}");
        }
    }

    #[test]
    fn sum_empty_and_tiny() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(sum(&[2.5]), 2.5);
        assert_eq!(
            sum(&[1.0, 2.0, 3.0, 4.0, 5.0]),
            ((1.0 + 5.0) + (2.0 + 0.0)) + (3.0 + 4.0) - 0.0
        );
    }
}
