//! Row-major dense matrix type and core algebra.

use crate::{LinalgError, Result};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// This is deliberately a small, predictable type: contiguous storage,
/// `O(1)` indexing, and explicit shape checks that return
/// [`LinalgError::ShapeMismatch`] instead of panicking on user input.
/// Internal invariant: `data.len() == rows * cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns a shape error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::ShapeMismatch {
                    expected: format!("rows of length {c}"),
                    got: format!("row of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Build a matrix whose entries are produced by `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor. Panics on out-of-bounds in debug builds only.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable entry accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }

    /// Set entry `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Replace column `j` with the values in `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) -> Result<()> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements", self.rows),
                got: format!("{} elements", v.len()),
            });
        }
        for (i, &x) in v.iter().enumerate() {
            self.set(i, j, x);
        }
        Ok(())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Rows of `self` per parallel chunk in [`Self::matmul`] / [`Self::gram`].
    /// A multiple of the quad micro-kernel width (4), so only the final
    /// ragged chunk of a matrix ever takes the scalar remainder path.
    const ROWS_PER_CHUNK: usize = 64;

    /// Column tile width of the output in [`Self::matmul`] (`j` blocking).
    /// 64×64 f64 tiles of the right operand are 32 KiB — one L1 load per
    /// `(k, j)` tile pass instead of one per output row. 64 is also
    /// 16 × [`crate::kernels::LANES`], so a full tile row divides evenly
    /// into vector lanes and the lane kernels' remainder loops only run on
    /// the ragged final tile of a non-multiple-of-64 matrix.
    const J_BLOCK: usize = 64;

    /// Inner-dimension tile depth in [`Self::matmul`] (`k` blocking).
    /// A multiple of 4 so full tiles decompose exactly into
    /// [`crate::kernels::update_row_quad`] calls with no ragged `k` tail.
    const K_BLOCK: usize = 64;

    /// Matrix product `self * other`, cache-blocked.
    ///
    /// The row-chunk parallel split of PR 1 stays on top: output rows are
    /// cut into fixed chunks and computed independently. Within a chunk the
    /// kernel is tiled `(j, k, i, k')` — the `K_BLOCK × J_BLOCK` tile of
    /// `other` stays L1-resident while every row of the chunk streams over
    /// it, instead of being re-fetched once per row as in the untiled i-k-j
    /// order. The `k'` loop runs four rows of `other` at a time through
    /// [`crate::kernels::update_row_quad`], which performs the four
    /// weighted-row adds *sequentially* per element. Each output element
    /// therefore still accumulates its `k` products in strictly ascending
    /// order (tiles visited in ascending `k`, quads and the remainder in
    /// ascending `k` within a tile), so the result is **bit-for-bit**
    /// identical to the untiled scalar kernel and independent of the
    /// thread count. (The old kernel skipped exact-zero `a_ik`; the quad
    /// kernel does not. This is bitwise-neutral: an accumulator that
    /// starts at `+0.0` can never become `-0.0` under IEEE-754 addition,
    /// and adding `±0.0` to it never changes its bits.)
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("lhs cols == rhs rows ({} )", self.cols),
                got: format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let n = other.cols;
        let m = self.cols;
        let chunks = crate::parallel::map_chunks(self.rows, Self::ROWS_PER_CHUNK, |range| {
            let mut block = vec![0.0; range.len() * n];
            let mut jb = 0;
            while jb < n {
                let j_hi = (jb + Self::J_BLOCK).min(n);
                let mut kb = 0;
                while kb < m {
                    let k_hi = (kb + Self::K_BLOCK).min(m);
                    for (bi, i) in range.clone().enumerate() {
                        let a_row = &self.data[i * m + kb..i * m + k_hi];
                        let out_row = &mut block[bi * n + jb..bi * n + j_hi];
                        let span = k_hi - kb;
                        let quads = span - span % 4;
                        let mut kk = 0;
                        while kk < quads {
                            let k0 = kb + kk;
                            crate::kernels::update_row_quad(
                                out_row,
                                [a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]],
                                &other.data[k0 * n + jb..k0 * n + j_hi],
                                &other.data[(k0 + 1) * n + jb..(k0 + 1) * n + j_hi],
                                &other.data[(k0 + 2) * n + jb..(k0 + 2) * n + j_hi],
                                &other.data[(k0 + 3) * n + jb..(k0 + 3) * n + j_hi],
                            );
                            kk += 4;
                        }
                        while kk < span {
                            let k0 = kb + kk;
                            crate::kernels::axpy(
                                a_row[kk],
                                &other.data[k0 * n + jb..k0 * n + j_hi],
                                out_row,
                            );
                            kk += 1;
                        }
                    }
                    kb = k_hi;
                }
                jb = j_hi;
            }
            block
        });
        let mut data = Vec::with_capacity(self.rows * n);
        for block in chunks {
            data.extend_from_slice(&block);
        }
        Ok(Matrix::from_vec(self.rows, n, data).expect("chunks cover all rows"))
    }

    /// One row of a matrix product: accumulate `a_row · self` into `out`.
    ///
    /// **Bitwise contract:** this is row `i` of [`Self::matmul`] extracted
    /// as a standalone kernel. The tile walk (`j` blocks outer, `k` blocks
    /// inner) and the quad/remainder split within a tile are copied from
    /// `matmul`'s inner loop verbatim, and in `matmul` each output row's
    /// accumulation sequence is independent of every other row in its
    /// chunk — so `row_product_into(lhs.row(i), out)` produces bits equal
    /// to row `i` of `lhs.matmul(self)` for any `i`, regardless of how
    /// `matmul` chunked its rows. The tail-sharded trainer leans on this:
    /// workers rebuild their owned rows of the whole-data gradient
    /// `2·U·D` locally from the broadcast `r × r` D matrix and must land
    /// on the coordinator's floats exactly (pinned by
    /// `row_product_matches_matmul_rows` below).
    ///
    /// `out` is accumulated into (callers wanting the plain product zero
    /// it first), matching `matmul`'s zero-initialized output block.
    pub fn row_product_into(&self, a_row: &[f64], out: &mut [f64]) -> Result<()> {
        if a_row.len() != self.rows || out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("row of {} and out of {}", self.rows, self.cols),
                got: format!("row of {} and out of {}", a_row.len(), out.len()),
            });
        }
        let n = self.cols;
        let m = self.rows;
        let mut jb = 0;
        while jb < n {
            let j_hi = (jb + Self::J_BLOCK).min(n);
            let mut kb = 0;
            while kb < m {
                let k_hi = (kb + Self::K_BLOCK).min(m);
                let a_seg = &a_row[kb..k_hi];
                let out_row = &mut out[jb..j_hi];
                let span = k_hi - kb;
                let quads = span - span % 4;
                let mut kk = 0;
                while kk < quads {
                    let k0 = kb + kk;
                    crate::kernels::update_row_quad(
                        out_row,
                        [a_seg[kk], a_seg[kk + 1], a_seg[kk + 2], a_seg[kk + 3]],
                        &self.data[k0 * n + jb..k0 * n + j_hi],
                        &self.data[(k0 + 1) * n + jb..(k0 + 1) * n + j_hi],
                        &self.data[(k0 + 2) * n + jb..(k0 + 2) * n + j_hi],
                        &self.data[(k0 + 3) * n + jb..(k0 + 3) * n + j_hi],
                    );
                    kk += 4;
                }
                while kk < span {
                    let k0 = kb + kk;
                    crate::kernels::axpy(
                        a_seg[kk],
                        &self.data[k0 * n + jb..k0 * n + j_hi],
                        out_row,
                    );
                    kk += 1;
                }
                kb = k_hi;
            }
            jb = j_hi;
        }
        Ok(())
    }

    /// Rows of `other` per L1-resident block in [`Self::matmul_nt`]. With
    /// ranks `r ≤ 64` a 64-row block of the right operand is ≤ 32 KiB, so
    /// it stays cache-hot while every row of a left-operand chunk streams
    /// over it.
    const NT_ROWS_BLOCK: usize = 64;

    /// Transposed-right matrix product `self · otherᵀ` for two row-major
    /// operands sharing an inner dimension (`self.cols == other.cols`).
    ///
    /// This is the batched-scoring entry point of the serving layer: with
    /// `self = W` (one `h ⊙ U¹ᵢ ⊙ U³ₖ` weight vector per row) and
    /// `other = U²` (POI embeddings), row `b` of the product is the full
    /// score vector of request `b`. Both operands are read along their
    /// contiguous rows — no transpose is materialized.
    ///
    /// **Bitwise contract:** every output element is exactly
    /// `kernels::dot(self.row(i), other.row(j))` — the canonical lane-order
    /// reduction of [`crate::kernels`]. That is the same kernel, with the
    /// same operand order, as the per-POI scoring loop in
    /// `TcssModel::scores_for`, so a batched row is **bit-for-bit** equal
    /// to the per-request score vector. Parallelism splits only the
    /// *output* grid (rows of `self`, via [`crate::parallel::map_chunks`]),
    /// never a reduction, so results are thread-count independent.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("lhs cols == rhs cols ({})", self.cols),
                got: format!(
                    "{}x{} * ({}x{})^T",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let n = other.rows;
        let r = self.cols;
        let chunks = crate::parallel::map_chunks(self.rows, Self::ROWS_PER_CHUNK, |range| {
            let mut block = vec![0.0; range.len() * n];
            // Block over rows of `other` so each ≤ 32 KiB slab of U² is
            // fetched once per chunk and reused by every request row in
            // the chunk — the batch-amortization the serving layer buys.
            let mut jb = 0;
            while jb < n {
                let j_hi = (jb + Self::NT_ROWS_BLOCK).min(n);
                for (bi, i) in range.clone().enumerate() {
                    let a_row = &self.data[i * r..(i + 1) * r];
                    let out_row = &mut block[bi * n + jb..bi * n + j_hi];
                    let b_rows = other.data[jb * r..j_hi * r].chunks_exact(r);
                    for (out, b_row) in out_row.iter_mut().zip(b_rows) {
                        *out = crate::kernels::dot(a_row, b_row);
                    }
                }
                jb = j_hi;
            }
            block
        });
        let mut data = Vec::with_capacity(self.rows * n);
        for block in chunks {
            data.extend_from_slice(&block);
        }
        Ok(Matrix::from_vec(self.rows, n, data).expect("chunks cover all rows"))
    }

    /// Column tile width in [`Self::gram`] (`a`/`b` blocking). At the
    /// training ranks (`r ≤ 10`) the whole Gram fits in a single tile and
    /// the blocking never triggers; it exists to keep the kernel
    /// cache-resident for the wide matrices the eigen/SVD paths produce.
    /// Like [`Self::J_BLOCK`], it is a multiple of
    /// [`crate::kernels::LANES`], so full off-diagonal tiles vectorize
    /// with no lane remainder (the diagonal tile's triangular rows are
    /// ragged by construction and take the remainder path for their last
    /// `< LANES` elements).
    const GRAM_BLOCK: usize = 64;

    /// Gram matrix `selfᵀ * self` (`cols × cols`), exploiting symmetry.
    ///
    /// This is the kernel behind the rewritten loss of the paper (Eq 15):
    /// `U¹ᵀU¹`, `U²ᵀU²`, `U³ᵀU³` are all `r × r` Gram matrices. The row sum
    /// is a deterministic chunked reduction: per-chunk partial Grams merged
    /// in chunk order, so the floats never depend on the thread count.
    /// Within a chunk the upper triangle is computed per `(a, b)` column
    /// tile, streaming rows four at a time through
    /// [`crate::kernels::update_row_quad`] (sequential adds per element),
    /// so each output element accumulates its per-row products in strictly
    /// ascending row order exactly as the untiled scalar kernel did —
    /// tiling and the quad micro-kernel are bitwise-invisible. (The old
    /// kernel's exact-zero skip is gone; see [`Self::matmul`] for why that
    /// is bitwise-neutral.)
    pub fn gram(&self) -> Matrix {
        let r = self.cols;
        let mut g = crate::parallel::fold_chunks(
            self.rows,
            Self::ROWS_PER_CHUNK,
            Matrix::zeros(r, r),
            |range| {
                let mut part = Matrix::zeros(r, r);
                let mut ab = 0;
                while ab < r {
                    let a_hi = (ab + Self::GRAM_BLOCK).min(r);
                    let mut bb = ab;
                    while bb < r {
                        let b_hi = (bb + Self::GRAM_BLOCK).min(r);
                        let quads = range.len() - range.len() % 4;
                        let mut i = range.start;
                        while i < range.start + quads {
                            let r0 = self.row(i);
                            let r1 = self.row(i + 1);
                            let r2 = self.row(i + 2);
                            let r3 = self.row(i + 3);
                            for a in ab..a_hi {
                                let lo = a.max(bb);
                                crate::kernels::update_row_quad(
                                    &mut part.data[a * r + lo..a * r + b_hi],
                                    [r0[a], r1[a], r2[a], r3[a]],
                                    &r0[lo..b_hi],
                                    &r1[lo..b_hi],
                                    &r2[lo..b_hi],
                                    &r3[lo..b_hi],
                                );
                            }
                            i += 4;
                        }
                        while i < range.end {
                            let row = self.row(i);
                            for a in ab..a_hi {
                                let lo = a.max(bb);
                                crate::kernels::axpy(
                                    row[a],
                                    &row[lo..b_hi],
                                    &mut part.data[a * r + lo..a * r + b_hi],
                                );
                            }
                            i += 1;
                        }
                        bb = b_hi;
                    }
                    ab = a_hi;
                }
                part
            },
            |mut acc: Matrix, part| {
                for (o, &p) in acc.data.iter_mut().zip(part.data.iter()) {
                    *o += p;
                }
                acc
            },
        );
        for a in 0..r {
            for b in 0..a {
                g.data[a * r + b] = g.data[b * r + a];
            }
        }
        g
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{} elements", self.cols),
                got: format!("{} elements", x.len()),
            });
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vector::dot(self.row(i), x);
        }
        Ok(y)
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: format!("{}x{}", other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every entry by `s` (in place).
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scaled copy `s * self`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// `self += s * other` (AXPY on matrices).
    pub fn axpy_mut(&mut self, s: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: format!("{}x{}", other.rows, other.cols),
            });
        }
        crate::kernels::axpy(s, &other.data, &mut self.data);
        Ok(())
    }

    /// Frobenius norm (lane-kernel reduction; see
    /// [`crate::kernels`] for the canonical summation order).
    pub fn frobenius_norm(&self) -> f64 {
        crate::kernels::dot(&self.data, &self.data).sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Zero out the diagonal (used by the spectral initializer: the paper
    /// zeroes the Gram diagonal because it "bears too much influence on the
    /// principal directions").
    pub fn zero_diagonal(&mut self) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] = 0.0;
        }
    }

    /// Extract the `cols`-leading submatrix of columns `[0, k)`.
    pub fn leading_columns(&self, k: usize) -> Result<Matrix> {
        if k > self.cols {
            return Err(LinalgError::RankTooLarge {
                requested: k,
                max: self.cols,
            });
        }
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..k]);
        }
        Ok(out)
    }

    /// Fill with independent uniform samples in `[-scale, scale]`.
    pub fn random_uniform(rows: usize, cols: usize, scale: f64, rng: &mut impl rand::Rng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// True when all entries of `self` and `other` differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>10.4}", self.get(i, j))?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 7.0]]).unwrap();
        let i = Matrix::identity(3);
        assert!(a.matmul(&i).unwrap().approx_eq(&a, 1e-12));
    }

    /// Pin of the `row_product_into` bitwise contract: every row of
    /// `a.matmul(b)` must be bit-for-bit reproducible from the standalone
    /// row kernel. Shapes cross the `J_BLOCK`/`K_BLOCK` tile boundaries
    /// and include ragged quad remainders so every code path is compared.
    #[test]
    fn row_product_matches_matmul_rows() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for &(rows, inner, cols) in &[(7, 16, 16), (3, 66, 65), (130, 70, 5), (4, 3, 1)] {
            let a =
                Matrix::from_vec(rows, inner, (0..rows * inner).map(|_| next()).collect()).unwrap();
            let b =
                Matrix::from_vec(inner, cols, (0..inner * cols).map(|_| next()).collect()).unwrap();
            let want = a.matmul(&b).unwrap();
            let mut out = vec![0.0; cols];
            for i in 0..rows {
                out.iter_mut().for_each(|v| *v = 0.0);
                b.row_product_into(a.row(i), &mut out).unwrap();
                for (j, &got) in out.iter().enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.get(i, j).to_bits(),
                        "row {i} col {j} of {rows}x{inner}x{cols}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_product_shape_mismatch() {
        let b = Matrix::zeros(3, 2);
        assert!(b.row_product_into(&[1.0; 4], &mut [0.0; 2]).is_err());
        assert!(b.row_product_into(&[1.0; 3], &mut [0.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn zero_diagonal_only_touches_diagonal() {
        let mut a = Matrix::filled(3, 3, 2.0);
        a.zero_diagonal();
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(0, 1), 2.0);
    }

    #[test]
    fn frobenius_and_max_abs() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn leading_columns_truncates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let l = a.leading_columns(2).unwrap();
        assert_eq!(l.shape(), (2, 2));
        assert_eq!(l.get(1, 1), 5.0);
        assert!(a.leading_columns(4).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy_mut(0.5, &b).unwrap();
        assert!(a.approx_eq(&Matrix::filled(2, 2, 2.0), 1e-12));
    }

    /// The tiled matmul/gram kernels must agree with a naive triple loop on
    /// shapes that straddle the 64-wide tile boundaries (including the
    /// ragged final tiles) — and bit-for-bit with ascending-k accumulation.
    #[test]
    fn blocked_kernels_match_naive_across_tile_boundaries() {
        for (m, k, n) in [(3usize, 5usize, 4usize), (70, 65, 130), (64, 128, 64)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
            let c = a.matmul(&b).unwrap();
            for i in 0..m {
                for j in 0..n {
                    // Plain ascending-k accumulation — the summation order
                    // the kernel promises to preserve. (The quad micro-
                    // kernel adds its four rows sequentially per element,
                    // so no reduction tree appears here.)
                    let mut want = 0.0;
                    for t in 0..k {
                        want += a.get(i, t) * b.get(t, j);
                    }
                    assert_eq!(
                        c.get(i, j).to_bits(),
                        want.to_bits(),
                        "({m}x{k}x{n}) element ({i},{j})"
                    );
                }
            }
            let g = a.gram();
            let explicit = a.transpose().matmul(&a).unwrap();
            assert!(g.approx_eq(&explicit, 1e-9), "gram mismatch at {m}x{k}");
        }
    }

    /// `matmul_nt` must equal `self * other.transpose()` numerically, and
    /// bit-for-bit equal the per-element lane-order dot it promises —
    /// across tile boundaries and thread counts.
    #[test]
    fn matmul_nt_matches_contract() {
        for (m, r, n) in [(1usize, 3usize, 2usize), (5, 10, 7), (70, 16, 130)] {
            let a = Matrix::from_fn(m, r, |i, j| ((i * 13 + j * 37) % 17) as f64 * 0.21 - 1.0);
            let b = Matrix::from_fn(n, r, |i, j| ((i * 11 + j * 23) % 19) as f64 * 0.17 - 0.8);
            let explicit = a.matmul(&b.transpose()).unwrap();
            for threads in [1usize, 2, 4] {
                crate::parallel::set_num_threads(Some(threads));
                let c = a.matmul_nt(&b).unwrap();
                assert_eq!(c.shape(), (m, n));
                assert!(c.approx_eq(&explicit, 1e-12), "{m}x{r}x{n} t{threads}");
                for i in 0..m {
                    for j in 0..n {
                        assert_eq!(
                            c.get(i, j).to_bits(),
                            crate::kernels::dot(a.row(i), b.row(j)).to_bits(),
                            "({m}x{r}x{n}) element ({i},{j}) at {threads} threads"
                        );
                    }
                }
            }
            crate::parallel::set_num_threads(None);
        }
    }

    #[test]
    fn matmul_nt_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        assert!(a.matmul_nt(&b).is_err());
        // Same inner dimension works even when row counts differ.
        assert!(Matrix::zeros(2, 3).matmul_nt(&Matrix::zeros(7, 3)).is_ok());
    }

    #[test]
    fn set_col_roundtrip() {
        let mut a = Matrix::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0, 0.0, 0.0]);
        assert!(a.set_col(0, &[1.0]).is_err());
    }
}
