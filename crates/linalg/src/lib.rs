//! # tcss-linalg
//!
//! Dense linear-algebra substrate for the TCSS reproduction.
//!
//! The TCSS paper (Hui et al., ICDE 2022) relies on a handful of dense
//! linear-algebra kernels: matrix products for the rewritten loss, a
//! symmetric eigendecomposition for the spectral embedding initialization
//! (Eq 4 of the paper), a truncated SVD for the PureSVD / MCCO baselines and
//! cosine similarities for the time-factor heatmaps (Figs 6–7).
//!
//! Everything here is implemented from scratch over `Vec<f64>` — no external
//! linear-algebra dependencies — and sized for the laptop-scale experiments
//! this repository runs (matrices up to a few thousand rows).
//!
//! ## Entry points
//!
//! * [`Matrix`] — row-major dense matrix with the usual algebra.
//! * [`kernels`] — fixed-lane ([`LANES`] = 4) autovectorized f64 primitives
//!   that the hot paths (tiled `matmul`/`gram`, model scoring, gradient
//!   backprop) are built on; see its docs for the reduction-order contract.
//!   The serving-snapshot layer adds f32 lanes ([`LANES_F32`] = 8) and the
//!   [`lowp`] batched low-precision `W · U²ᵀ` paths over f32 / i16 operands.
//! * [`qr::qr_thin`] / [`qr::orthonormalize`] — Householder QR.
//! * [`eigen::jacobi_eigen`] — full symmetric eigendecomposition.
//! * [`eigen::top_r_eigenvectors`] — blocked orthogonal iteration over an
//!   implicit symmetric operator ([`eigen::SymOp`]); this is how the spectral
//!   initializer avoids materializing the `I × I` Gram matrix.
//! * [`svd::truncated_svd`] — rank-`r` SVD built on the eigen machinery.
//! * [`stats`] — cosine similarity, standardization and friends.
//! * [`parallel`] — the deterministic chunked thread-pool primitive every
//!   parallel hot path in the workspace is built on (see its module docs
//!   for the determinism contract and the `TCSS_NUM_THREADS` knob).

pub mod eigen;
pub mod kernels;
pub mod lowp;
pub mod matrix;
pub mod parallel;
pub mod qr;
pub mod solve;
pub mod stats;
pub mod svd;
pub mod vector;

pub use eigen::{jacobi_eigen, top_r_eigenvectors, DenseSymOp, SymOp};
pub use kernels::{LANES, LANES_F32};
pub use matrix::Matrix;
pub use parallel::{
    chunk_count, chunk_ranges, fold_chunks, map_chunks, map_chunks_with, num_threads,
    set_num_threads, PoolGuard, WorkspacePool,
};
pub use qr::{orthonormalize, qr_thin};
pub use solve::solve_linear_system;
pub use stats::{cosine_similarity, cosine_similarity_matrix};
pub use svd::{truncated_svd, Svd};

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shapes.
        expected: String,
        /// Human-readable description of the shapes that were provided.
        got: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The requested rank exceeds what the operand can support.
    RankTooLarge {
        /// Rank requested by the caller.
        requested: usize,
        /// Maximum rank supported by the operand.
        max: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
            LinalgError::RankTooLarge { requested, max } => {
                write!(f, "requested rank {requested} exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
