//! Symmetric eigendecomposition.
//!
//! Two tools live here:
//!
//! * [`jacobi_eigen`] — the classic cyclic Jacobi method for small dense
//!   symmetric matrices (used on `r × r` Rayleigh–Ritz projections and in the
//!   Tucker/PureSVD baselines).
//! * [`top_r_eigenvectors`] — blocked orthogonal iteration with a final
//!   Rayleigh–Ritz rotation, over an *implicit* symmetric operator
//!   ([`SymOp`]). The TCSS spectral initializer (paper Eq 4) uses this with
//!   the matrix-free operator `x ↦ A(Aᵀx) − d ⊙ x` so the `I × I` Gram matrix
//!   `(A Aᵀ)|off-diag` is never materialized.

use crate::{qr, LinalgError, Matrix, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A symmetric linear operator exposed only through matrix–vector products.
pub trait SymOp {
    /// Dimension `n` of the operator (it maps `ℝⁿ → ℝⁿ`).
    fn dim(&self) -> usize;

    /// Compute `y = A x`. `y` has been zeroed by the caller.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Trivial [`SymOp`] wrapper around a dense symmetric [`Matrix`].
pub struct DenseSymOp<'a> {
    mat: &'a Matrix,
}

impl<'a> DenseSymOp<'a> {
    /// Wrap a dense symmetric matrix. Symmetry is the caller's contract;
    /// only the lower/upper agreement actually used by matvecs matters.
    pub fn new(mat: &'a Matrix) -> Self {
        debug_assert_eq!(mat.rows(), mat.cols());
        DenseSymOp { mat }
    }
}

impl SymOp for DenseSymOp<'_> {
    fn dim(&self) -> usize {
        self.mat.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = crate::vector::dot(self.mat.row(i), x);
        }
    }
}

/// Full eigendecomposition of a small dense symmetric matrix via cyclic
/// Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by **descending** eigenvalue;
/// eigenvectors are the *columns* of the returned matrix.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> Result<(Vec<f64>, Matrix)> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".to_string(),
            got: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    if n <= 1 {
        let vals = (0..n).map(|i| m.get(i, i)).collect();
        return Ok((vals, v));
    }
    let tol = 1e-14 * a.frobenius_norm().max(1.0);
    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).abs();
            }
        }
        if off < tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < tol / (n * n) as f64 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    if !converged {
        // One more check: Jacobi converges fast; only genuinely pathological
        // inputs land here.
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).abs();
            }
        }
        if off >= tol * 1e3 {
            return Err(LinalgError::NoConvergence {
                routine: "jacobi_eigen",
                iterations: max_sweeps,
            });
        }
    }
    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let vals: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vecs = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vecs.set(i, new_j, v.get(i, old_j));
        }
    }
    Ok((vals, vecs))
}

/// Configuration for [`top_r_eigenvectors`].
#[derive(Debug, Clone)]
pub struct OrthIterConfig {
    /// Maximum number of power sweeps.
    pub max_iters: usize,
    /// Convergence tolerance on the subspace change (Frobenius norm of the
    /// difference between consecutive orthonormal iterates after alignment).
    pub tol: f64,
    /// RNG seed for the random starting block.
    pub seed: u64,
}

impl Default for OrthIterConfig {
    fn default() -> Self {
        OrthIterConfig {
            max_iters: 300,
            tol: 1e-9,
            seed: 0x5eed,
        }
    }
}

/// Top-`r` eigenpairs of a symmetric operator via blocked orthogonal
/// iteration with a Rayleigh–Ritz finish.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as columns of an
/// `n × r` matrix, sorted by descending eigenvalue of the Ritz projection.
///
/// Orthogonal iteration converges to the invariant subspace of the `r`
/// eigenvalues largest in magnitude; for the (entrywise non-negative) Gram
/// operators used by the spectral initializer these coincide with the
/// algebraically largest ones, which is what the paper's `eigen(·, r)` means.
pub fn top_r_eigenvectors(
    op: &dyn SymOp,
    r: usize,
    cfg: &OrthIterConfig,
) -> Result<(Vec<f64>, Matrix)> {
    let n = op.dim();
    if r > n {
        return Err(LinalgError::RankTooLarge {
            requested: r,
            max: n,
        });
    }
    if r == 0 {
        return Ok((Vec::new(), Matrix::zeros(n, 0)));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut q = Matrix::random_uniform(n, r, 1.0, &mut rng);
    qr::orthonormalize(&mut q, &mut rng)?;

    let mut prev_proj = Matrix::zeros(r, r);
    let mut xbuf = vec![0.0; n];
    for _iter in 0..cfg.max_iters {
        // Y = A Q, column by column.
        let mut y = Matrix::zeros(n, r);
        for j in 0..r {
            let col = q.col(j);
            xbuf.iter_mut().for_each(|v| *v = 0.0);
            op.apply(&col, &mut xbuf);
            y.set_col(j, &xbuf)?;
        }
        qr::orthonormalize(&mut y, &mut rng)?;
        // Subspace convergence test: compare projectors via QᵀY.
        let proj = q.transpose().matmul(&y)?;
        // When the subspace has converged, QᵀY is orthogonal, and its
        // difference from the previous projection stabilizes.
        let delta = proj
            .sub(&prev_proj)
            .map(|d| d.frobenius_norm())
            .unwrap_or(f64::MAX);
        q = y;
        if delta < cfg.tol {
            break;
        }
        prev_proj = proj;
    }

    // Rayleigh–Ritz: T = Qᵀ A Q, eigendecompose, rotate Q.
    let mut aq = Matrix::zeros(n, r);
    for j in 0..r {
        let col = q.col(j);
        xbuf.iter_mut().for_each(|v| *v = 0.0);
        op.apply(&col, &mut xbuf);
        aq.set_col(j, &xbuf)?;
    }
    let t = q.transpose().matmul(&aq)?;
    // Symmetrize to wash out round-off before Jacobi.
    let t_sym = t.add(&t.transpose())?.scaled(0.5);
    let (vals, w) = jacobi_eigen(&t_sym, 100)?;
    let vecs = q.matmul(&w)?;
    Ok((vals, vecs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_from_rows(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = sym_from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 50).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // Eigenvectors are signed unit basis vectors.
        assert!((vecs.get(0, 0).abs() - 1.0).abs() < 1e-12);
        assert!((vecs.get(1, 1).abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = sym_from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 50).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // A v = λ v for the dominant pair.
        let v0 = vecs.col(0);
        let av = a.matvec(&v0).unwrap();
        for i in 0..2 {
            assert!((av[i] - 3.0 * v0[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        let a = sym_from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let (vals, vecs) = jacobi_eigen(&a, 100).unwrap();
        assert!(vecs.gram().approx_eq(&Matrix::identity(3), 1e-10));
        // Trace preserved.
        let trace: f64 = vals.iter().sum();
        assert!((trace - 9.0).abs() < 1e-9);
        // Sorted descending.
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
    }

    #[test]
    fn jacobi_handles_negative_eigenvalues() {
        let a = sym_from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]); // eigenvalues ±2
        let (vals, _) = jacobi_eigen(&a, 50).unwrap();
        assert!((vals[0] - 2.0).abs() < 1e-10);
        assert!((vals[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_rejects_non_square() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn orth_iter_matches_jacobi_on_psd_matrix() {
        // PSD matrix with well-separated eigenvalues.
        let a = sym_from_rows(&[
            &[10.0, 2.0, 0.5, 0.0],
            &[2.0, 7.0, 1.0, 0.3],
            &[0.5, 1.0, 4.0, 0.2],
            &[0.0, 0.3, 0.2, 1.0],
        ]);
        let (full_vals, _) = jacobi_eigen(&a, 100).unwrap();
        let op = DenseSymOp::new(&a);
        let (vals, vecs) = top_r_eigenvectors(&op, 2, &OrthIterConfig::default()).unwrap();
        assert!(
            (vals[0] - full_vals[0]).abs() < 1e-7,
            "{vals:?} vs {full_vals:?}"
        );
        assert!((vals[1] - full_vals[1]).abs() < 1e-7);
        // Residual check: ‖A v − λ v‖ small.
        for (j, &lambda) in vals.iter().enumerate() {
            let v = vecs.col(j);
            let av = a.matvec(&v).unwrap();
            let mut resid = 0.0;
            for (&avi, &vi) in av.iter().zip(v.iter()) {
                resid += (avi - lambda * vi).powi(2);
            }
            assert!(resid.sqrt() < 1e-6, "residual too large for pair {j}");
        }
    }

    #[test]
    fn orth_iter_rank_too_large() {
        let a = Matrix::identity(3);
        let op = DenseSymOp::new(&a);
        assert!(top_r_eigenvectors(&op, 4, &OrthIterConfig::default()).is_err());
    }

    #[test]
    fn orth_iter_rank_zero() {
        let a = Matrix::identity(3);
        let op = DenseSymOp::new(&a);
        let (vals, vecs) = top_r_eigenvectors(&op, 0, &OrthIterConfig::default()).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.shape(), (3, 0));
    }
}
