//! Truncated singular value decomposition.
//!
//! Built on the symmetric eigen machinery: for `A: m × n` with `m >= n` we
//! eigendecompose the implicit normal operator `AᵀA` (or `AAᵀ` in the wide
//! case) and recover the other factor by projection. This is exactly the
//! classical route PureSVD takes, and it is accurate enough for the
//! recommendation workloads here where only the top few singular triplets
//! matter and singular values are well separated from the noise floor.

use crate::eigen::{top_r_eigenvectors, OrthIterConfig, SymOp};
use crate::{Matrix, Result};

/// A rank-`r` truncated SVD `A ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × r` (columns).
    pub u: Matrix,
    /// Singular values, descending, length `r`.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × r` (columns).
    pub v: Matrix,
}

impl Svd {
    /// Reconstruct the rank-`r` approximation `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            let row = us.row_mut(i);
            for (j, s) in self.sigma.iter().enumerate() {
                row[j] *= s;
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Predicted entry `(i, j)` of the reconstruction without materializing it.
    pub fn predict(&self, i: usize, j: usize) -> f64 {
        let mut acc = 0.0;
        for (k, s) in self.sigma.iter().enumerate() {
            acc += self.u.get(i, k) * s * self.v.get(j, k);
        }
        acc
    }
}

/// Normal operator `x ↦ Aᵀ(A x)` for a dense matrix (n-dimensional).
struct NormalOp<'a> {
    a: &'a Matrix,
}

impl SymOp for NormalOp<'_> {
    fn dim(&self) -> usize {
        self.a.cols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // y = Aᵀ (A x); stream row-wise over A for both products.
        let m = self.a.rows();
        let mut ax = vec![0.0; m];
        for (i, axi) in ax.iter_mut().enumerate() {
            *axi = crate::vector::dot(self.a.row(i), x);
        }
        for (i, &axi) in ax.iter().enumerate() {
            if axi == 0.0 {
                continue;
            }
            crate::kernels::axpy(axi, self.a.row(i), y);
        }
    }
}

/// Rank-`r` truncated SVD of a dense matrix.
///
/// Negative Ritz values (possible only through round-off, since `AᵀA` is PSD)
/// are clamped to zero before the square root.
pub fn truncated_svd(a: &Matrix, r: usize, cfg: &OrthIterConfig) -> Result<Svd> {
    let (m, n) = a.shape();
    if n <= m {
        let op = NormalOp { a };
        let (vals, v) = top_r_eigenvectors(&op, r, cfg)?;
        let sigma: Vec<f64> = vals.iter().map(|&l| l.max(0.0).sqrt()).collect();
        // U = A V Σ⁻¹ (columns with σ=0 are left as zero vectors).
        let av = a.matmul(&v)?;
        let mut u = Matrix::zeros(m, r);
        for (j, &sj) in sigma.iter().enumerate() {
            if sj > 1e-12 {
                for i in 0..m {
                    u.set(i, j, av.get(i, j) / sj);
                }
            }
        }
        Ok(Svd { u, sigma, v })
    } else {
        // Wide matrix: factorize the transpose and swap factors.
        let t = a.transpose();
        let svd_t = truncated_svd(&t, r, cfg)?;
        Ok(Svd {
            u: svd_t.v,
            sigma: svd_t.sigma,
            v: svd_t.u,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::OrthIterConfig;

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]).unwrap();
        let svd = truncated_svd(&a, 2, &OrthIterConfig::default()).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-8);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-8);
        let rec = svd.reconstruct().unwrap();
        assert!(rec.approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_rank1_exact() {
        // Outer product uvᵀ has a single nonzero singular value ‖u‖‖v‖.
        let u = [1.0, 2.0, 2.0];
        let v = [3.0, 4.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let svd = truncated_svd(&a, 1, &OrthIterConfig::default()).unwrap();
        assert!((svd.sigma[0] - 15.0).abs() < 1e-7); // ‖u‖=3, ‖v‖=5
        let rec = svd.reconstruct().unwrap();
        assert!(rec.approx_eq(&a, 1e-7));
    }

    #[test]
    fn svd_wide_matrix_matches_tall_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[0.0, 1.0, -1.0, 2.0]]).unwrap();
        let svd = truncated_svd(&a, 2, &OrthIterConfig::default()).unwrap();
        let svd_t = truncated_svd(&a.transpose(), 2, &OrthIterConfig::default()).unwrap();
        for k in 0..2 {
            assert!((svd.sigma[k] - svd_t.sigma[k]).abs() < 1e-8);
        }
        assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-7));
    }

    #[test]
    fn predict_matches_reconstruct() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.2, 2.0], &[0.0, 1.0]]).unwrap();
        let svd = truncated_svd(&a, 2, &OrthIterConfig::default()).unwrap();
        let rec = svd.reconstruct().unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert!((svd.predict(i, j) - rec.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn truncation_drops_small_directions() {
        // Rank-2 matrix with σ₁ ≫ σ₂; rank-1 truncation keeps only σ₁.
        let a = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 0.1]]).unwrap();
        let svd = truncated_svd(&a, 1, &OrthIterConfig::default()).unwrap();
        assert_eq!(svd.sigma.len(), 1);
        assert!((svd.sigma[0] - 10.0).abs() < 1e-6);
    }
}
