//! Low-precision batched scoring: `W · U²ᵀ` over f32 and per-row-scaled
//! i16 operands.
//!
//! These are the serving-snapshot counterparts of
//! [`Matrix::matmul_nt`](crate::Matrix::matmul_nt): the left operand `W`
//! packs one f32 weight vector per request row, the right operand is a
//! factor matrix straight out of a quantized snapshot (f32 rows, or i16
//! rows with one dequantization scale per row), and row `b` of the output
//! is the full score vector of request `b`.
//!
//! **Bitwise contract.** Every output element is exactly
//! [`kernels::dot_f32`] (f32 operand) or
//! `scale[j] · kernels::dot_f32_i16(w_row, q_row)` (i16 operand) — the
//! canonical eight-lane reduction order of [`kernels::LANES_F32`]. That is
//! the same kernel, in the same operand order, as the per-POI scoring loop
//! of the snapshot model's `scores_for`, so a batched row is **bit-for-
//! bit** equal to the per-request path. Parallelism splits only the output
//! grid (rows of `W`, via [`crate::parallel::map_chunks`]), never a
//! reduction, so results are thread-count independent — the f64 layer's
//! determinism contract, carried over unchanged.
//!
//! Operands are plain slices (row-major, row stride = `r`) rather than a
//! dedicated f32 matrix type: the right operand is borrowed directly from
//! an `mmap`-ed snapshot section and never owned by this crate.

use crate::kernels;

/// Rows of the right operand per cache-resident block. A 64-row f32 block
/// at rank ≤ 64 is ≤ 16 KiB — half the f64 footprint — so it stays L1-hot
/// while every request row of a chunk streams over it.
const NT_ROWS_BLOCK: usize = 64;

/// Rows of `W` (requests) per parallel chunk; matches the f64 matmul's
/// chunk grid so thread-count-independence arguments carry over verbatim.
const ROWS_PER_CHUNK: usize = 64;

/// `out[b*j_rows + j] = dot_f32(w[b], u[j])` for row-major `w` (`b_rows ×
/// r`) and `u` (`j_rows × r`).
///
/// Panics on shape mismatch (`debug_assert` in release-hot paths would
/// hide real layout bugs in the snapshot borrow chain).
pub fn matmul_nt_f32(
    w: &[f32],
    b_rows: usize,
    u: &[f32],
    j_rows: usize,
    r: usize,
    out: &mut [f32],
) {
    assert_eq!(w.len(), b_rows * r, "W shape mismatch");
    assert_eq!(u.len(), j_rows * r, "U shape mismatch");
    assert_eq!(out.len(), b_rows * j_rows, "output shape mismatch");
    let chunks = crate::parallel::map_chunks(b_rows, ROWS_PER_CHUNK, |range| {
        let mut block = vec![0.0f32; range.len() * j_rows];
        let mut jb = 0;
        while jb < j_rows {
            let j_hi = (jb + NT_ROWS_BLOCK).min(j_rows);
            for (bi, b) in range.clone().enumerate() {
                let w_row = &w[b * r..(b + 1) * r];
                let out_row = &mut block[bi * j_rows + jb..bi * j_rows + j_hi];
                let u_rows = u[jb * r..j_hi * r].chunks_exact(r);
                for (o, u_row) in out_row.iter_mut().zip(u_rows) {
                    *o = kernels::dot_f32(w_row, u_row);
                }
            }
            jb = j_hi;
        }
        block
    });
    let mut off = 0;
    for block in chunks {
        out[off..off + block.len()].copy_from_slice(&block);
        off += block.len();
    }
}

/// Fixed-point variant: `out[b*j_rows + j] = scales[j] ·
/// dot_f32_i16(w[b], q[j])` for row-major i16 `q` (`j_rows × r`) with one
/// f32 dequantization scale per row. The quantized operand is read as
/// i16 — the full-precision matrix never materializes.
pub fn matmul_nt_i16(
    w: &[f32],
    b_rows: usize,
    q: &[i16],
    scales: &[f32],
    j_rows: usize,
    r: usize,
    out: &mut [f32],
) {
    assert_eq!(w.len(), b_rows * r, "W shape mismatch");
    assert_eq!(q.len(), j_rows * r, "Q shape mismatch");
    assert_eq!(scales.len(), j_rows, "one scale per Q row");
    assert_eq!(out.len(), b_rows * j_rows, "output shape mismatch");
    let chunks = crate::parallel::map_chunks(b_rows, ROWS_PER_CHUNK, |range| {
        let mut block = vec![0.0f32; range.len() * j_rows];
        let mut jb = 0;
        while jb < j_rows {
            let j_hi = (jb + NT_ROWS_BLOCK).min(j_rows);
            for (bi, b) in range.clone().enumerate() {
                let w_row = &w[b * r..(b + 1) * r];
                let out_row = &mut block[bi * j_rows + jb..bi * j_rows + j_hi];
                let q_rows = q[jb * r..j_hi * r].chunks_exact(r);
                let s_rows = scales[jb..j_hi].iter();
                for ((o, q_row), &s) in out_row.iter_mut().zip(q_rows).zip(s_rows) {
                    *o = s * kernels::dot_f32_i16(w_row, q_row);
                }
            }
            jb = j_hi;
        }
        block
    });
    let mut off = 0;
    for block in chunks {
        out[off..off + block.len()].copy_from_slice(&block);
        off += block.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wv(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn f32_elements_match_dot_kernel_bitwise() {
        for (b, j, r) in [(1, 1, 1), (3, 5, 4), (7, 70, 9), (65, 130, 16)] {
            let w = wv(b * r, |i| ((i * 7) as f32 * 0.013).sin());
            let u = wv(j * r, |i| ((i * 3) as f32 * 0.029).cos());
            let mut out = vec![0.0f32; b * j];
            matmul_nt_f32(&w, b, &u, j, r, &mut out);
            for bi in 0..b {
                for ji in 0..j {
                    let want = kernels::dot_f32(&w[bi * r..(bi + 1) * r], &u[ji * r..(ji + 1) * r]);
                    assert_eq!(out[bi * j + ji].to_bits(), want.to_bits(), "({bi},{ji})");
                }
            }
        }
    }

    #[test]
    fn i16_elements_match_scaled_dot_kernel_bitwise() {
        for (b, j, r) in [(1, 1, 1), (4, 66, 8), (9, 63, 11)] {
            let w = wv(b * r, |i| (i as f32 * 0.11).sin());
            let q: Vec<i16> = (0..j * r).map(|i| ((i * 241) % 501) as i16 - 250).collect();
            let scales = wv(j, |i| 1.0e-3 + i as f32 * 1.0e-5);
            let mut out = vec![0.0f32; b * j];
            matmul_nt_i16(&w, b, &q, &scales, j, r, &mut out);
            for bi in 0..b {
                for ji in 0..j {
                    let want = scales[ji]
                        * kernels::dot_f32_i16(&w[bi * r..(bi + 1) * r], &q[ji * r..(ji + 1) * r]);
                    assert_eq!(out[bi * j + ji].to_bits(), want.to_bits(), "({bi},{ji})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = vec![0.0f32; 4];
        matmul_nt_f32(&[0.0; 3], 1, &[0.0; 8], 4, 2, &mut out);
    }
}
