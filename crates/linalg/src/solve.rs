//! Dense linear-system solver (Gaussian elimination with partial pivoting).
//!
//! Used by the ALS baselines (P-Tucker row updates solve one `r × r`
//! normal-equation system per factor row).

use crate::{LinalgError, Matrix, Result};

/// Solve `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns an error for non-square systems or (numerically)
/// singular matrices.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: "square matrix".into(),
            got: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: format!("rhs of length {n}"),
            got: format!("{}", b.len()),
        });
    }
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if m.get(row, col).abs() > m.get(pivot, col).abs() {
                pivot = row;
            }
        }
        let pv = m.get(pivot, col);
        if pv.abs() < 1e-12 {
            return Err(LinalgError::NoConvergence {
                routine: "solve_linear_system (singular matrix)",
                iterations: col,
            });
        }
        if pivot != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot, c));
                m.set(pivot, c, tmp);
            }
            x.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = m.get(row, col) / m.get(col, col);
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(row, c) - factor * m.get(col, c);
                m.set(row, c, v);
            }
            x[row] -= factor * x[col];
        }
    }
    // Back substitution. The index loop is intentional: `c` addresses the
    // strict upper triangle of row `col`, an offset range an iterator over
    // `x` would only obscure.
    #[allow(clippy::needless_range_loop)]
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= m.get(col, c) * x[c];
        }
        x[col] = acc / m.get(col, col);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Matrix::identity(3);
        let x = solve_linear_system(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve_linear_system(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve_linear_system(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn residual_check_random_spd() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let b_mat = Matrix::random_uniform(5, 5, 1.0, &mut rng);
        let a = {
            // SPD: BᵀB + I.
            let g = b_mat.gram();
            g.add(&Matrix::identity(5)).unwrap()
        };
        let rhs: Vec<f64> = (0..5).map(|i| i as f64 + 1.0).collect();
        let x = solve_linear_system(&a, &rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..5 {
            assert!((ax[i] - rhs[i]).abs() < 1e-9);
        }
    }
}
