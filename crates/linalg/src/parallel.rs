//! Deterministic chunked parallel execution.
//!
//! Every parallel hot path in the workspace (the rewritten whole-data loss,
//! the social-Hausdorff head, dense matmul/Gram, the implicit mode-Gram
//! matvec) runs through this module instead of hand-rolled threading. The
//! scheduler is intentionally tiny — `std::thread::scope`, one atomic chunk
//! counter, no external dependencies — and built around one contract:
//!
//! # The deterministic-reduction contract
//!
//! 1. The index space `0..n_items` is cut into **fixed chunks** whose
//!    boundaries depend only on `(n_items, chunk_size)` — never on the
//!    thread count or on scheduling order.
//! 2. Each chunk is mapped to a value by a pure function of its range;
//!    workers claim chunks dynamically (work stealing via an atomic
//!    counter), but *which worker* computes a chunk cannot affect its value.
//! 3. Per-chunk results are merged **in ascending chunk order** by the
//!    caller ([`map_chunks`] returns them in that order; [`fold_chunks`]
//!    folds them in that order).
//!
//! Consequently every result is a deterministic function of the inputs and
//! the chunk grid: bit-for-bit identical across runs, across thread counts
//! (1 thread and 64 threads produce the same floats), and across the
//! serial-fallback and threaded code paths — the serial path executes the
//! *same* chunked fold, just inline. Floating-point summation order is
//! pinned by the grid, not by the race winner.
//!
//! # Thread-count resolution
//!
//! [`num_threads`] resolves, in order: the process-wide programmatic
//! override ([`set_num_threads`], used by `TcssConfig::num_threads` and the
//! parity tests), the `TCSS_NUM_THREADS` environment variable, and finally
//! `std::thread::available_parallelism()`. A resolved count of 1 bypasses
//! thread spawning entirely.

use std::ops::{Deref, DerefMut, Range};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatically pin the worker count for all subsequent parallel
/// regions in this process (`None` restores automatic resolution).
///
/// Because of the deterministic-reduction contract this only affects
/// *speed*, never results; tests may therefore set it freely even while
/// other tests run concurrently.
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel regions will use right now.
///
/// Resolution order: [`set_num_threads`] override → `TCSS_NUM_THREADS`
/// env var → `available_parallelism()` → 1.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("TCSS_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of chunks in the fixed grid for `n_items` / `chunk_size`.
///
/// This is *the* grid arity every consumer of the deterministic-reduction
/// contract agrees on — the distributed trainer shards this very grid
/// across worker processes, so coordinator and workers must derive the
/// same count from the same inputs.
pub fn chunk_count(n_items: usize, chunk_size: usize) -> usize {
    n_items.div_ceil(chunk_size.max(1))
}

/// The fixed chunk grid for `n_items` items: ascending, disjoint,
/// covering ranges of length `chunk_size` (the last may be shorter).
pub fn chunk_ranges(n_items: usize, chunk_size: usize) -> impl Iterator<Item = Range<usize>> {
    let chunk_size = chunk_size.max(1);
    let n_chunks = chunk_count(n_items, chunk_size);
    (0..n_chunks).map(move |c| {
        let lo = c * chunk_size;
        lo..(lo + chunk_size).min(n_items)
    })
}

/// Map every chunk of `0..n_items` through `f`, in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// This is the primitive the deterministic-reduction contract rests on:
/// the output `Vec` is indexed by chunk, so any in-order fold over it is
/// independent of the thread count. With one worker (or one chunk) the map
/// runs inline on the calling thread.
pub fn map_chunks<T, F>(n_items: usize, chunk_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_chunks_with(n_items, chunk_size, || (), |(), range| f(range))
}

/// [`map_chunks`] with a **worker-local workspace**: each worker calls
/// `make_ws` exactly once, then reuses the workspace across every chunk it
/// claims (the serial path builds one workspace and runs inline).
///
/// This is the allocation-taming primitive behind the sparse-gradient
/// training path: scratch buffers that would otherwise be allocated per
/// chunk (`O(chunks)` per call) are allocated `O(workers)` times — and when
/// `make_ws` checks buffers out of a [`WorkspacePool`], `O(1)` times per
/// run. The workspace never affects results under the deterministic-
/// reduction contract: `f` must compute the same value for a chunk
/// regardless of the workspace's history (buffers are state, not input).
pub fn map_chunks_with<W, T, MkW, F>(
    n_items: usize,
    chunk_size: usize,
    make_ws: MkW,
    f: F,
) -> Vec<T>
where
    T: Send,
    MkW: Fn() -> W + Sync,
    F: Fn(&mut W, Range<usize>) -> T + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = chunk_count(n_items, chunk_size);
    let workers = num_threads().min(n_chunks);
    if workers <= 1 {
        let mut ws = make_ws();
        return chunk_ranges(n_items, chunk_size)
            .map(|r| f(&mut ws, r))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                let make_ws = &make_ws;
                s.spawn(move || {
                    let mut ws = make_ws();
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk_size;
                        let hi = (lo + chunk_size).min(n_items);
                        produced.push((c, f(&mut ws, lo..hi)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (c, value) in h.join().expect("parallel worker panicked") {
                debug_assert!(slots[c].is_none(), "chunk {c} computed twice");
                slots[c] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every chunk claimed exactly once"))
        .collect()
}

/// A free-list of reusable scratch buffers shared across parallel regions.
///
/// `acquire` pops an idle buffer (or builds one with the supplied factory)
/// and returns a guard that checks it back in on drop; `take`/`put` move
/// buffers by value for workspaces that travel with chunk results. The pool
/// never shrinks: over a training run, buffer churn settles to zero
/// steady-state allocations — the heart of the "allocated once per run, not
/// once per chunk per epoch" contract in `tcss-core`'s `TrainWorkspace`.
///
/// Buffers come back in arbitrary (scheduling-dependent) order, so a pooled
/// buffer's *contents* must never feed into results — callers reset what
/// they read. The deterministic-reduction contract is unaffected: pooling
/// changes where scratch memory lives, not what any chunk computes.
#[derive(Debug)]
pub struct WorkspacePool<T> {
    slots: Mutex<Vec<T>>,
}

// Manual impl: an empty pool needs no `T: Default`.
impl<T> Default for WorkspacePool<T> {
    fn default() -> Self {
        WorkspacePool::new()
    }
}

impl<T> WorkspacePool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool {
            slots: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        // A worker panic mid-checkout only loses that buffer; the pool
        // itself stays usable.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Check a buffer out, building a fresh one with `make` when the pool
    /// is empty. The guard returns it on drop.
    pub fn acquire(&self, make: impl FnOnce() -> T) -> PoolGuard<'_, T> {
        let value = self.take(make);
        PoolGuard {
            pool: self,
            value: Some(value),
        }
    }

    /// Check a buffer out *by value* (caller must [`WorkspacePool::put`] it
    /// back to keep the pool warm).
    pub fn take(&self, make: impl FnOnce() -> T) -> T {
        let recycled = self.lock().pop();
        recycled.unwrap_or_else(make)
    }

    /// Return a buffer to the pool.
    pub fn put(&self, value: T) {
        self.lock().push(value);
    }

    /// Number of idle buffers currently pooled (diagnostics/tests).
    pub fn idle(&self) -> usize {
        self.lock().len()
    }
}

/// RAII checkout from a [`WorkspacePool`]; derefs to the buffer and checks
/// it back in on drop.
#[derive(Debug)]
pub struct PoolGuard<'a, T> {
    pool: &'a WorkspacePool<T>,
    value: Option<T>,
}

impl<T> Deref for PoolGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("present until drop")
    }
}

impl<T> DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("present until drop")
    }
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(v) = self.value.take() {
            self.pool.put(v);
        }
    }
}

/// Parallel map-reduce over the fixed chunk grid: per-chunk values from
/// `map` are folded into `init` **in ascending chunk order** with `fold`.
///
/// `fold` runs on the calling thread, so the accumulator needs no `Send`
/// bound and the reduction order is a pure function of the grid.
pub fn fold_chunks<T, A, M, F>(n_items: usize, chunk_size: usize, init: A, map: M, fold: F) -> A
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    map_chunks(n_items, chunk_size, map)
        .into_iter()
        .fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_grid_is_fixed_and_covering() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).count(), 1);
        // chunk_size 0 is clamped to 1 rather than looping forever.
        assert_eq!(chunk_ranges(3, 0).count(), 3);
    }

    #[test]
    fn map_chunks_returns_chunk_order() {
        for threads in [1usize, 2, 4, 7] {
            set_num_threads(Some(threads));
            let got = map_chunks(23, 5, |r| r.start);
            assert_eq!(got, vec![0, 5, 10, 15, 20], "threads = {threads}");
        }
        set_num_threads(None);
    }

    #[test]
    fn reduction_is_bitwise_thread_count_independent() {
        // A sum of floats whose value depends on association order: if the
        // merge order varied with the thread count, the bits would differ.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64 * 0.73).sin() * 1e10).exp2().fract() + 1e-3)
            .collect();
        let sum_with = |threads: usize| -> u64 {
            set_num_threads(Some(threads));
            let s = fold_chunks(
                xs.len(),
                64,
                0.0f64,
                |r| xs[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            set_num_threads(None);
            s.to_bits()
        };
        let reference = sum_with(1);
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(sum_with(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn env_override_is_respected() {
        set_num_threads(None);
        std::env::set_var("TCSS_NUM_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("TCSS_NUM_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("TCSS_NUM_THREADS");
        // Programmatic override beats the environment.
        std::env::set_var("TCSS_NUM_THREADS", "3");
        set_num_threads(Some(2));
        assert_eq!(num_threads(), 2);
        set_num_threads(None);
        std::env::remove_var("TCSS_NUM_THREADS");
    }

    #[test]
    fn empty_input_yields_empty_map() {
        assert!(map_chunks(0, 8, |r| r.len()).is_empty());
        assert_eq!(fold_chunks(0, 8, 42usize, |r| r.len(), |a, b| a + b), 42);
    }

    #[test]
    fn map_chunks_with_builds_one_workspace_per_worker() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1usize, 3] {
            set_num_threads(Some(threads));
            let built = AtomicUsize::new(0);
            // 40 chunks, far more than workers: the workspace count must
            // track workers, never chunks.
            let got = map_chunks_with(
                40,
                1,
                || {
                    built.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |ws, r| {
                    *ws += 1; // workspace reuse is visible worker-locally
                    r.start
                },
            );
            assert_eq!(got, (0..40).collect::<Vec<_>>(), "threads = {threads}");
            assert!(
                built.load(Ordering::Relaxed) <= threads,
                "built {} workspaces with {threads} workers",
                built.load(Ordering::Relaxed)
            );
        }
        set_num_threads(None);
    }

    #[test]
    fn workspace_pool_recycles_buffers() {
        let pool: WorkspacePool<Vec<f64>> = WorkspacePool::new();
        {
            let mut g = pool.acquire(|| Vec::with_capacity(64));
            g.push(1.0);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
        // The recycled buffer keeps its capacity (that's the whole point).
        let v = pool.take(Vec::new);
        assert!(v.capacity() >= 64);
        pool.put(v);
        assert_eq!(pool.idle(), 1);
    }
}
