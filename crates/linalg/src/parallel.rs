//! Deterministic chunked parallel execution.
//!
//! Every parallel hot path in the workspace (the rewritten whole-data loss,
//! the social-Hausdorff head, dense matmul/Gram, the implicit mode-Gram
//! matvec) runs through this module instead of hand-rolled threading. The
//! scheduler is intentionally tiny — `std::thread::scope`, one atomic chunk
//! counter, no external dependencies — and built around one contract:
//!
//! # The deterministic-reduction contract
//!
//! 1. The index space `0..n_items` is cut into **fixed chunks** whose
//!    boundaries depend only on `(n_items, chunk_size)` — never on the
//!    thread count or on scheduling order.
//! 2. Each chunk is mapped to a value by a pure function of its range;
//!    workers claim chunks dynamically (work stealing via an atomic
//!    counter), but *which worker* computes a chunk cannot affect its value.
//! 3. Per-chunk results are merged **in ascending chunk order** by the
//!    caller ([`map_chunks`] returns them in that order; [`fold_chunks`]
//!    folds them in that order).
//!
//! Consequently every result is a deterministic function of the inputs and
//! the chunk grid: bit-for-bit identical across runs, across thread counts
//! (1 thread and 64 threads produce the same floats), and across the
//! serial-fallback and threaded code paths — the serial path executes the
//! *same* chunked fold, just inline. Floating-point summation order is
//! pinned by the grid, not by the race winner.
//!
//! # Thread-count resolution
//!
//! [`num_threads`] resolves, in order: the process-wide programmatic
//! override ([`set_num_threads`], used by `TcssConfig::num_threads` and the
//! parity tests), the `TCSS_NUM_THREADS` environment variable, and finally
//! `std::thread::available_parallelism()`. A resolved count of 1 bypasses
//! thread spawning entirely.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "unset".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatically pin the worker count for all subsequent parallel
/// regions in this process (`None` restores automatic resolution).
///
/// Because of the deterministic-reduction contract this only affects
/// *speed*, never results; tests may therefore set it freely even while
/// other tests run concurrently.
pub fn set_num_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel regions will use right now.
///
/// Resolution order: [`set_num_threads`] override → `TCSS_NUM_THREADS`
/// env var → `available_parallelism()` → 1.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("TCSS_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The fixed chunk grid for `n_items` items: ascending, disjoint,
/// covering ranges of length `chunk_size` (the last may be shorter).
pub fn chunk_ranges(n_items: usize, chunk_size: usize) -> impl Iterator<Item = Range<usize>> {
    let chunk_size = chunk_size.max(1);
    let n_chunks = n_items.div_ceil(chunk_size);
    (0..n_chunks).map(move |c| {
        let lo = c * chunk_size;
        lo..(lo + chunk_size).min(n_items)
    })
}

/// Map every chunk of `0..n_items` through `f`, in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// This is the primitive the deterministic-reduction contract rests on:
/// the output `Vec` is indexed by chunk, so any in-order fold over it is
/// independent of the thread count. With one worker (or one chunk) the map
/// runs inline on the calling thread.
pub fn map_chunks<T, F>(n_items: usize, chunk_size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let chunk_size = chunk_size.max(1);
    let n_chunks = n_items.div_ceil(chunk_size);
    let workers = num_threads().min(n_chunks);
    if workers <= 1 {
        return chunk_ranges(n_items, chunk_size).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk_size;
                        let hi = (lo + chunk_size).min(n_items);
                        produced.push((c, f(lo..hi)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (c, value) in h.join().expect("parallel worker panicked") {
                debug_assert!(slots[c].is_none(), "chunk {c} computed twice");
                slots[c] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every chunk claimed exactly once"))
        .collect()
}

/// Parallel map-reduce over the fixed chunk grid: per-chunk values from
/// `map` are folded into `init` **in ascending chunk order** with `fold`.
///
/// `fold` runs on the calling thread, so the accumulator needs no `Send`
/// bound and the reduction order is a pure function of the grid.
pub fn fold_chunks<T, A, M, F>(n_items: usize, chunk_size: usize, init: A, map: M, fold: F) -> A
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(A, T) -> A,
{
    map_chunks(n_items, chunk_size, map)
        .into_iter()
        .fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_grid_is_fixed_and_covering() {
        let ranges: Vec<_> = chunk_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(0, 4).count(), 0);
        assert_eq!(chunk_ranges(4, 4).count(), 1);
        // chunk_size 0 is clamped to 1 rather than looping forever.
        assert_eq!(chunk_ranges(3, 0).count(), 3);
    }

    #[test]
    fn map_chunks_returns_chunk_order() {
        for threads in [1usize, 2, 4, 7] {
            set_num_threads(Some(threads));
            let got = map_chunks(23, 5, |r| r.start);
            assert_eq!(got, vec![0, 5, 10, 15, 20], "threads = {threads}");
        }
        set_num_threads(None);
    }

    #[test]
    fn reduction_is_bitwise_thread_count_independent() {
        // A sum of floats whose value depends on association order: if the
        // merge order varied with the thread count, the bits would differ.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64 * 0.73).sin() * 1e10).exp2().fract() + 1e-3)
            .collect();
        let sum_with = |threads: usize| -> u64 {
            set_num_threads(Some(threads));
            let s = fold_chunks(
                xs.len(),
                64,
                0.0f64,
                |r| xs[r].iter().sum::<f64>(),
                |a, b| a + b,
            );
            set_num_threads(None);
            s.to_bits()
        };
        let reference = sum_with(1);
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(sum_with(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn env_override_is_respected() {
        set_num_threads(None);
        std::env::set_var("TCSS_NUM_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("TCSS_NUM_THREADS", "not-a-number");
        assert!(num_threads() >= 1);
        std::env::remove_var("TCSS_NUM_THREADS");
        // Programmatic override beats the environment.
        std::env::set_var("TCSS_NUM_THREADS", "3");
        set_num_threads(Some(2));
        assert_eq!(num_threads(), 2);
        set_num_threads(None);
        std::env::remove_var("TCSS_NUM_THREADS");
    }

    #[test]
    fn empty_input_yields_empty_map() {
        assert!(map_chunks(0, 8, |r| r.len()).is_empty());
        assert_eq!(fold_chunks(0, 8, 42usize, |r| r.len(), |a, b| a + b), 42);
    }
}
