//! Householder QR decomposition and orthonormalization.
//!
//! The blocked orthogonal iteration in [`crate::eigen`] re-orthonormalizes
//! its iterate every sweep; that is the main consumer of this module.

use crate::{vector, LinalgError, Matrix, Result};

/// Thin QR decomposition `A = Q R` with `Q: m × n` (orthonormal columns)
/// and `R: n × n` upper triangular. Requires `m >= n`.
pub fn qr_thin(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: "rows >= cols for thin QR".to_string(),
            got: format!("{m}x{n}"),
        });
    }
    // Work on a column-major copy of A; apply Householder reflectors in place.
    let mut r = a.clone();
    // Store the reflectors to accumulate Q afterwards.
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the Householder vector for column k, rows k..m.
        let mut v: Vec<f64> = (k..m).map(|i| r.get(i, k)).collect();
        let alpha = -v[0].signum() * vector::norm2(&v);
        if alpha.abs() < f64::EPSILON {
            // Column already zero below the diagonal: identity reflector.
            reflectors.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha;
        let vnorm = vector::norm2(&v);
        if vnorm > 0.0 {
            vector::scale(&mut v, 1.0 / vnorm);
        }
        // Apply the reflector H = I - 2 v vᵀ to R's trailing block.
        for j in k..n {
            let mut proj = 0.0;
            for (idx, i) in (k..m).enumerate() {
                proj += v[idx] * r.get(i, j);
            }
            proj *= 2.0;
            for (idx, i) in (k..m).enumerate() {
                let val = r.get(i, j) - proj * v[idx];
                r.set(i, j, val);
            }
        }
        reflectors.push(v);
    }
    // Accumulate Q by applying the reflectors (in reverse) to the thin identity.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let v = &reflectors[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for j in 0..n {
            let mut proj = 0.0;
            for (idx, i) in (k..m).enumerate() {
                proj += v[idx] * q.get(i, j);
            }
            proj *= 2.0;
            for (idx, i) in (k..m).enumerate() {
                let val = q.get(i, j) - proj * v[idx];
                q.set(i, j, val);
            }
        }
    }
    // Extract the upper-triangular n×n block of R.
    let mut r_out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out.set(i, j, r.get(i, j));
        }
    }
    Ok((q, r_out))
}

/// Replace the columns of `a` with an orthonormal basis of their span.
///
/// Columns that are (numerically) linearly dependent are replaced by
/// re-randomized directions orthogonal to the rest, so the result always has
/// full column rank — orthogonal iteration relies on this to escape
/// degenerate starting blocks.
pub fn orthonormalize(a: &mut Matrix, rng: &mut impl rand::Rng) -> Result<()> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: "rows >= cols".to_string(),
            got: format!("{m}x{n}"),
        });
    }
    // Modified Gram-Schmidt with re-randomization of rank-deficient columns.
    for j in 0..n {
        let mut col = a.col(j);
        for prev in 0..j {
            let p = a.col(prev);
            let proj = vector::dot(&col, &p);
            vector::axpy(-proj, &p, &mut col);
        }
        let mut norm = vector::normalize(&mut col);
        let mut attempts = 0;
        while norm < 1e-10 && attempts < 8 {
            // Degenerate column: re-draw and re-orthogonalize.
            for v in &mut col {
                *v = rng.gen_range(-1.0..=1.0);
            }
            for prev in 0..j {
                let p = a.col(prev);
                let proj = vector::dot(&col, &p);
                vector::axpy(-proj, &p, &mut col);
            }
            norm = vector::normalize(&mut col);
            attempts += 1;
        }
        if norm < 1e-10 {
            return Err(LinalgError::NoConvergence {
                routine: "orthonormalize",
                iterations: attempts,
            });
        }
        a.set_col(j, &col)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_orthonormal(q: &Matrix, tol: f64) -> bool {
        let g = q.gram();
        g.approx_eq(&Matrix::identity(q.cols()), tol)
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        assert!(is_orthonormal(&q, 1e-10));
        let qr = q.matmul(&r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 3.0],
            &[1.0, 0.0, 1.0],
            &[4.0, 2.0, 1.0],
            &[0.5, 1.5, -2.0],
        ])
        .unwrap();
        let (_, r) = qr_thin(&a).unwrap();
        for i in 0..r.rows() {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-12, "below-diagonal entry not zero");
            }
        }
    }

    #[test]
    fn qr_rejects_wide_matrix() {
        assert!(qr_thin(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn orthonormalize_produces_orthonormal_basis() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = Matrix::random_uniform(10, 4, 1.0, &mut rng);
        orthonormalize(&mut a, &mut rng).unwrap();
        assert!(is_orthonormal(&a, 1e-10));
    }

    #[test]
    fn orthonormalize_recovers_from_duplicate_columns() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = Matrix::zeros(6, 3);
        // Two identical columns + one zero column: rank 1 input.
        for i in 0..6 {
            a.set(i, 0, (i + 1) as f64);
            a.set(i, 1, (i + 1) as f64);
        }
        orthonormalize(&mut a, &mut rng).unwrap();
        assert!(is_orthonormal(&a, 1e-8));
    }
}
