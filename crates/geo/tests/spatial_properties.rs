//! Property-based tests for the geospatial kernels.

use proptest::prelude::*;
use tcss_geo::{
    entropy_weights, generalized_mean, haversine_km, location_entropy, GeoPoint, GridIndex,
};

fn point_strategy() -> impl Strategy<Value = GeoPoint> {
    (-179.0f64..179.0, -85.0f64..85.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Haversine: symmetric, non-negative, zero on identity, bounded by
    /// half the circumference.
    #[test]
    fn haversine_metric_axioms(a in point_strategy(), b in point_strategy()) {
        let d = haversine_km(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - haversine_km(b, a)).abs() < 1e-9);
        prop_assert!(haversine_km(a, a) == 0.0);
        prop_assert!(d <= std::f64::consts::PI * tcss_geo::EARTH_RADIUS_KM + 1.0);
    }

    /// Triangle inequality on random triples.
    #[test]
    fn haversine_triangle_inequality(
        a in point_strategy(),
        b in point_strategy(),
        c in point_strategy(),
    ) {
        let ac = haversine_km(a, c);
        let ab = haversine_km(a, b);
        let bc = haversine_km(b, c);
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    /// Grid nearest-neighbour equals brute force on clustered points.
    #[test]
    fn grid_nearest_equals_brute_force(
        pts in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..40),
        q in (-2.5f64..2.5, -2.5f64..2.5),
    ) {
        let points: Vec<GeoPoint> = pts.into_iter().map(|(lon, lat)| GeoPoint::new(lon, lat)).collect();
        let grid = GridIndex::new(&points, 0.25);
        let query = GeoPoint::new(q.0, q.1);
        let (_, gd) = grid.nearest(query).expect("nonempty");
        let bd = points
            .iter()
            .map(|p| haversine_km(query, *p))
            .fold(f64::MAX, f64::min);
        prop_assert!((gd - bd).abs() < 1e-9, "grid {gd} vs brute {bd}");
    }

    /// Location entropy is within [0, ln(#users)] and exp(−E) ∈ (0, 1].
    #[test]
    fn entropy_bounds(visits in proptest::collection::vec((0usize..8, 0usize..5), 1..60)) {
        let e = location_entropy(5, visits.clone());
        let n_users = 8f64;
        for &v in &e {
            prop_assert!(v >= -1e-12);
            prop_assert!(v <= n_users.ln() + 1e-9);
        }
        for w in entropy_weights(&e) {
            prop_assert!(w > 0.0 && w <= 1.0 + 1e-12);
        }
    }

    /// Adding a *new distinct visitor* to a POI never decreases… is false in
    /// general (entropy can drop when an existing visitor revisits), so pin
    /// the provable direction instead: a POI with one visitor has zero
    /// entropy regardless of the visit count.
    #[test]
    fn single_visitor_zero_entropy(count in 1usize..50) {
        let visits: Vec<(usize, usize)> = (0..count).map(|_| (3, 0)).collect();
        let e = location_entropy(1, visits);
        prop_assert!(e[0].abs() < 1e-12);
    }

    /// Generalized mean is monotone in each coordinate and scale-equivariant.
    #[test]
    fn generalized_mean_monotone_and_homogeneous(
        xs in proptest::collection::vec(0.1f64..50.0, 2..8),
        bump in 0.1f64..5.0,
        scale in 0.5f64..3.0,
    ) {
        let base = generalized_mean(&xs, -1.0, 1e-9);
        let mut bigger = xs.clone();
        bigger[0] += bump;
        prop_assert!(generalized_mean(&bigger, -1.0, 1e-9) >= base - 1e-12);
        let scaled: Vec<f64> = xs.iter().map(|&x| x * scale).collect();
        let m_scaled = generalized_mean(&scaled, -1.0, 1e-9);
        prop_assert!((m_scaled - scale * base).abs() < 1e-9 * m_scaled.abs().max(1.0));
    }
}
