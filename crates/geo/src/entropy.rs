//! Location entropy (paper Eq 11) and the derived POI weights.
//!
//! A POI visited uniformly by many distinct users (a Costco) has high
//! entropy and tells us little about social ties; a POI visited repeatedly
//! by a small clique (a neighbourhood tennis court) has low entropy and is a
//! strong social signal. TCSS multiplies Hausdorff distances by
//! `e_j = exp(−E_j)` so low-entropy POIs dominate the social-spatial loss,
//! which simultaneously diversifies recommendations.

use std::collections::BTreeMap;

/// Location entropy `E_j` for every POI (paper Eq 11):
///
/// `E_j = − Σ_{i : |Φ_{i,j}| > 0}  (|Φ_{i,j}| / |Φ_j|) · log(|Φ_{i,j}| / |Φ_j|)`
///
/// where `Φ_{i,j}` are user `i`'s check-ins at POI `j` and `Φ_j` all
/// check-ins at `j`. `checkins` yields one `(user, poi)` pair per check-in
/// event (duplicates are meaningful — they are repeat visits). POIs with no
/// check-ins get entropy 0.
pub fn location_entropy(
    n_pois: usize,
    checkins: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<f64> {
    // Count visits per (poi, user). BTreeMap so the entropy sum below
    // accumulates in a fixed (poi, user) order — with a HashMap the float
    // reassociation would make E_j differ in the last ulp from run to run,
    // which the training determinism contract forbids.
    let mut per_pair: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut per_poi: Vec<f64> = vec![0.0; n_pois];
    for (user, poi) in checkins {
        if poi >= n_pois {
            continue;
        }
        *per_pair.entry((poi, user)).or_insert(0.0) += 1.0;
        per_poi[poi] += 1.0;
    }
    let mut entropy = vec![0.0; n_pois];
    for ((poi, _user), count) in per_pair {
        let total = per_poi[poi];
        let p = count / total;
        entropy[poi] -= p * p.ln();
    }
    entropy
}

/// POI weights `e_j = exp(−E_j)` (the factor applied to both Hausdorff terms
/// in Eq 12). Weights lie in `(0, 1]`: 1 for single-visitor POIs, small for
/// POIs visited evenly by many users.
pub fn entropy_weights(entropy: &[f64]) -> Vec<f64> {
    entropy.iter().map(|&e| (-e).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_poi_has_zero_entropy() {
        // One user visiting one POI (any number of times): p = 1, E = 0.
        let e = location_entropy(2, vec![(0, 0), (0, 0), (0, 0)]);
        assert!(e[0].abs() < 1e-12);
        assert_eq!(e[1], 0.0);
    }

    #[test]
    fn uniform_visitors_give_log_n() {
        // n users each visiting once: E = ln(n).
        let n = 8;
        let checkins: Vec<(usize, usize)> = (0..n).map(|u| (u, 0)).collect();
        let e = location_entropy(1, checkins);
        assert!((e[0] - (n as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn skewed_visits_have_lower_entropy_than_uniform() {
        // POI 0: uniform across 4 users. POI 1: one dominant user.
        let mut checkins = Vec::new();
        for u in 0..4 {
            checkins.push((u, 0));
        }
        checkins.extend(vec![(0, 1); 97]);
        checkins.push((1, 1));
        checkins.push((2, 1));
        checkins.push((3, 1));
        let e = location_entropy(2, checkins);
        assert!(e[1] < e[0], "skewed {} should be < uniform {}", e[1], e[0]);
    }

    #[test]
    fn weights_are_in_unit_interval_and_monotone() {
        let e = vec![0.0, 0.5, 2.0];
        let w = entropy_weights(&e);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn out_of_range_pois_ignored() {
        let e = location_entropy(1, vec![(0, 0), (0, 5)]);
        assert_eq!(e.len(), 1);
    }
}
