//! # tcss-geo
//!
//! Geospatial substrate for the TCSS reproduction.
//!
//! The paper's social-spatial regularizer is built from geographic
//! primitives: the haversine distance between POIs (§V-D), the location
//! entropy that demotes overly popular POIs (Eq 11), the average Hausdorff
//! distance between POI sets (Eq 9) and its differentiable weighted variant
//! (Eq 10/12) built on the generalized mean `M_α`.
//!
//! This crate provides the *forward* computations plus a grid spatial index;
//! the gradient-carrying version of the weighted Hausdorff loss lives in
//! `tcss-core` (it must couple to the model's predicted probabilities) and is
//! tested against the forward implementations here.

// Index-based loops are used deliberately throughout this crate: the
// numeric kernels mirror the paper's subscripted equations, and iterator
// chains over multiple parallel buffers obscure rather than clarify them.
#![allow(clippy::needless_range_loop)]

pub mod entropy;
pub mod grid;
pub mod hausdorff;
pub mod point;

pub use entropy::{entropy_weights, location_entropy};
pub use grid::GridIndex;
pub use hausdorff::{
    average_hausdorff, generalized_mean, weighted_hausdorff, DistanceMatrix,
    WeightedHausdorffParams,
};
pub use point::{haversine_km, GeoPoint, EARTH_RADIUS_KM};
