//! Uniform grid spatial index over POIs.
//!
//! Used to answer nearest-neighbour and radius queries without scanning all
//! POIs: the social-Hausdorff precomputation needs, for every user, the
//! nearest friend-visited POI to each candidate POI, and the Fig 12 case
//! study needs cluster-radius statistics over recommended POIs.

use crate::point::{haversine_km, GeoPoint};
use std::collections::HashMap;

/// A uniform longitude/latitude grid over a point set.
///
/// Cells are square in *degrees*; the ring-expansion search in
/// [`GridIndex::nearest`] compensates for the lon/lat anisotropy by always
/// verifying candidates with true haversine distances and expanding rings
/// until the best candidate cannot be beaten.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_deg: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
    points: Vec<GeoPoint>,
}

impl GridIndex {
    /// Build an index over `points` with the given cell size in degrees.
    ///
    /// A cell size around the typical nearest-neighbour spacing works well;
    /// 0.05° (~5 km) suits city-scale POI sets.
    pub fn new(points: &[GeoPoint], cell_deg: f64) -> Self {
        assert!(cell_deg > 0.0, "cell size must be positive");
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (idx, p) in points.iter().enumerate() {
            cells
                .entry(Self::cell_of(p, cell_deg))
                .or_default()
                .push(idx);
        }
        GridIndex {
            cell_deg,
            cells,
            points: points.to_vec(),
        }
    }

    fn cell_of(p: &GeoPoint, cell_deg: f64) -> (i64, i64) {
        (
            (p.lon / cell_deg).floor() as i64,
            (p.lat / cell_deg).floor() as i64,
        )
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index and distance (km) of the nearest indexed point to `q`.
    ///
    /// Returns `None` for an empty index. Ties break toward the lower index.
    pub fn nearest(&self, q: GeoPoint) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let (cq_lon, cq_lat) = Self::cell_of(&q, self.cell_deg);
        let mut best: Option<(usize, f64)> = None;
        // Expand rings of cells until a ring's minimum possible distance
        // exceeds the best found distance.
        let max_ring = {
            // Worst case: expand to cover the whole data set.
            let span = 360.0 / self.cell_deg;
            span.ceil() as i64 + 1
        };
        for ring in 0..max_ring {
            let mut found_any = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    // Only visit the ring's border cells (interior already done).
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    if let Some(list) = self.cells.get(&(cq_lon + dx, cq_lat + dy)) {
                        found_any = true;
                        for &idx in list {
                            let d = haversine_km(q, self.points[idx]);
                            match best {
                                Some((bi, bd)) if d > bd || (d == bd && idx > bi) => {}
                                _ => best = Some((idx, d)),
                            }
                        }
                    }
                }
            }
            if let Some((_, bd)) = best {
                // Minimum possible distance of the *next* ring: (ring) cells
                // away in latitude ≈ ring * cell_deg * 111 km. Conservative
                // (latitude is the tighter direction).
                let next_ring_min_km = ring as f64 * self.cell_deg * 110.0;
                if bd <= next_ring_min_km {
                    break;
                }
            }
            // Keep expanding even when nothing found yet.
            let _ = found_any;
        }
        best
    }

    /// Indices of all points within `radius_km` of `q`.
    pub fn within_radius(&self, q: GeoPoint, radius_km: f64) -> Vec<usize> {
        if self.points.is_empty() || radius_km < 0.0 {
            return Vec::new();
        }
        // Conservative ring bound: 1° latitude ≈ 110 km.
        let ring = ((radius_km / (self.cell_deg * 110.0)).ceil() as i64 + 1).max(1);
        let (cq_lon, cq_lat) = Self::cell_of(&q, self.cell_deg);
        let mut out = Vec::new();
        for dx in -ring..=ring {
            for dy in -ring..=ring {
                if let Some(list) = self.cells.get(&(cq_lon + dx, cq_lat + dy)) {
                    for &idx in list {
                        if haversine_km(q, self.points[idx]) <= radius_km {
                            out.push(idx);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[GeoPoint], q: GeoPoint) -> Option<(usize, f64)> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, haversine_km(q, *p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
    }

    #[test]
    fn empty_index() {
        let g = GridIndex::new(&[], 0.1);
        assert!(g.is_empty());
        assert!(g.nearest(GeoPoint::new(0.0, 0.0)).is_none());
        assert!(g.within_radius(GeoPoint::new(0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn nearest_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(42);
        let points: Vec<GeoPoint> = (0..200)
            .map(|_| GeoPoint::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let g = GridIndex::new(&points, 0.1);
        for _ in 0..50 {
            let q = GeoPoint::new(rng.gen_range(-1.2..1.2), rng.gen_range(-1.2..1.2));
            let (gi, gd) = g.nearest(q).unwrap();
            let (bi, bd) = brute_nearest(&points, q).unwrap();
            assert!(
                (gd - bd).abs() < 1e-9,
                "grid found {gi}@{gd}, brute {bi}@{bd}"
            );
        }
    }

    #[test]
    fn nearest_far_query_still_found() {
        let points = vec![GeoPoint::new(0.0, 0.0)];
        let g = GridIndex::new(&points, 0.05);
        // Query several degrees away: requires many ring expansions.
        let (i, d) = g.nearest(GeoPoint::new(3.0, 3.0)).unwrap();
        assert_eq!(i, 0);
        assert!(d > 300.0);
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(7);
        let points: Vec<GeoPoint> = (0..100)
            .map(|_| GeoPoint::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
            .collect();
        let g = GridIndex::new(&points, 0.05);
        let q = GeoPoint::new(0.0, 0.0);
        let r = 20.0;
        let got = g.within_radius(q, r);
        let expect: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| haversine_km(q, **p) <= r)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn within_zero_radius_only_exact_matches() {
        let points = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(0.1, 0.1)];
        let g = GridIndex::new(&points, 0.05);
        assert_eq!(g.within_radius(GeoPoint::new(0.0, 0.0), 0.0), vec![0]);
    }
}
