//! Hausdorff distances between POI sets.
//!
//! * [`average_hausdorff`] — the exact AHD of paper Eq 9.
//! * [`weighted_hausdorff`] — the paper's differentiable surrogate (Eq 10,
//!   extended with entropy weights as in Eq 12), *forward value only*. The
//!   gradient-carrying twin lives in `tcss-core::hausdorff` and is unit-tested
//!   against this implementation.
//! * [`generalized_mean`] — `M_α[x] = (mean(xᵢ^α))^{1/α}`, the smooth
//!   min-approximation (α = −1 by default, per the paper).

use crate::point::GeoPoint;

/// Dense symmetric matrix of pairwise POI distances (km) plus the maximum
/// pairwise distance `d_max` used by the weighted Hausdorff surrogate.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper-triangle-inclusive storage, row-major `n × n`.
    d: Vec<f64>,
    d_max: f64,
}

impl DistanceMatrix {
    /// Precompute all pairwise haversine distances between `points`.
    pub fn from_points(points: &[GeoPoint]) -> Self {
        let n = points.len();
        let mut d = vec![0.0; n * n];
        let mut d_max = 0.0f64;
        for a in 0..n {
            for b in (a + 1)..n {
                let dist = crate::point::haversine_km(points[a], points[b]);
                d[a * n + b] = dist;
                d[b * n + a] = dist;
                d_max = d_max.max(dist);
            }
        }
        DistanceMatrix { n, d, d_max }
    }

    /// Number of POIs.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (no POIs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between POIs `a` and `b`, in km.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a < self.n && b < self.n);
        self.d[a * self.n + b]
    }

    /// Maximum pairwise distance `d_max` (0.0 when fewer than two POIs).
    #[inline]
    pub fn max_distance(&self) -> f64 {
        self.d_max
    }

    /// Minimum distance from POI `a` to any POI in `set` (excluding any
    /// requirement about `a` itself); `None` when `set` is empty.
    pub fn min_to_set(&self, a: usize, set: &[usize]) -> Option<f64> {
        set.iter()
            .map(|&b| self.get(a, b))
            .min_by(|x, y| x.partial_cmp(y).expect("distances are never NaN"))
    }

    /// A copy with every distance divided by `d_max` (so distances lie in
    /// `[0, 1]` and `max_distance() == 1`). The TCSS social-Hausdorff head
    /// uses this so the regularizer weight `λ` is comparable across
    /// datasets with different geographic extents.
    pub fn normalized(&self) -> DistanceMatrix {
        if self.d_max == 0.0 {
            return self.clone();
        }
        DistanceMatrix {
            n: self.n,
            d: self.d.iter().map(|v| v / self.d_max).collect(),
            d_max: 1.0,
        }
    }
}

/// Exact average Hausdorff distance between POI index sets (paper Eq 9):
///
/// `d_AH(S, N) = mean_{j∈S} min_{j'∈N} d(j,j') + mean_{j'∈N} min_{j∈S} d(j,j')`
///
/// Returns 0.0 when either set is empty (no constraint to enforce).
pub fn average_hausdorff(s: &[usize], n: &[usize], d: &DistanceMatrix) -> f64 {
    if s.is_empty() || n.is_empty() {
        return 0.0;
    }
    let fwd: f64 = s
        .iter()
        .map(|&j| d.min_to_set(j, n).expect("n nonempty"))
        .sum::<f64>()
        / s.len() as f64;
    let bwd: f64 = n
        .iter()
        .map(|&jp| d.min_to_set(jp, s).expect("s nonempty"))
        .sum::<f64>()
        / n.len() as f64;
    fwd + bwd
}

/// Generalized mean `M_α[x₁..xₙ] = ((1/n) Σ xᵢ^α)^{1/α}`.
///
/// For α → −∞ this approaches `min(x)`; the paper uses α = −1 as the smooth,
/// backpropagation-friendly compromise. Inputs are clamped to `floor`
/// (default 1e-9 in callers) to keep negative powers finite.
pub fn generalized_mean(xs: &[f64], alpha: f64, floor: f64) -> f64 {
    assert!(alpha != 0.0, "generalized mean undefined for alpha = 0");
    if xs.is_empty() {
        return 0.0;
    }
    let mean: f64 = xs.iter().map(|&x| x.max(floor).powf(alpha)).sum::<f64>() / xs.len() as f64;
    mean.powf(1.0 / alpha)
}

/// Parameters of the weighted Hausdorff surrogate.
#[derive(Debug, Clone)]
pub struct WeightedHausdorffParams {
    /// Generalized-mean exponent; the paper's default is −1.
    pub alpha: f64,
    /// Division-by-zero guard in the first term; the paper sets 1e-6.
    pub epsilon: f64,
    /// Numeric floor passed to [`generalized_mean`].
    pub floor: f64,
}

impl Default for WeightedHausdorffParams {
    fn default() -> Self {
        WeightedHausdorffParams {
            alpha: -1.0,
            epsilon: 1e-6,
            floor: 1e-9,
        }
    }
}

/// Forward value of the paper's weighted (social) Hausdorff distance for one
/// user (Eq 12, which reduces to Eq 10 when all entropy weights are 1):
///
/// * `s_set` — candidate POIs `S(vᵢ)` with visit probabilities `p[j]`
///   (indexed *positionally*: `p[idx]` belongs to `s_set[idx]`).
/// * `n_set` — friend-visited POIs `N(vᵢ)`.
/// * `e` — per-POI entropy weights `e_j` (global indexing, `e[j]`).
///
/// Returns 0.0 when `n_set` is empty (user has no friend check-ins; the
/// paper's loss sums over users, and such users contribute nothing).
pub fn weighted_hausdorff(
    s_set: &[usize],
    p: &[f64],
    n_set: &[usize],
    d: &DistanceMatrix,
    e: &[f64],
    params: &WeightedHausdorffParams,
) -> f64 {
    assert_eq!(s_set.len(), p.len(), "one probability per candidate POI");
    if n_set.is_empty() || s_set.is_empty() {
        return 0.0;
    }
    let d_max = d.max_distance();
    // First term: (1/(A+ε)) Σ_{j∈S} p_j e_j min_{j'∈N} d(j,j').
    let a_norm: f64 = p.iter().sum();
    let mut first = 0.0;
    for (idx, &j) in s_set.iter().enumerate() {
        let min_d = d.min_to_set(j, n_set).expect("n_set nonempty");
        first += p[idx] * e[j] * min_d;
    }
    first /= a_norm + params.epsilon;
    // Second term: (1/|N|) Σ_{j'∈N} e_{j'} M_α over j∈S of
    //              [p_j d(j,j') + (1−p_j) d_max].
    let mut second = 0.0;
    let mut fs = vec![0.0; s_set.len()];
    for &jp in n_set {
        for (idx, &j) in s_set.iter().enumerate() {
            fs[idx] = p[idx] * d.get(j, jp) + (1.0 - p[idx]) * d_max;
        }
        second += e[jp] * generalized_mean(&fs, params.alpha, params.floor);
    }
    second /= n_set.len() as f64;
    first + second
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::GeoPoint;

    fn line_points(n: usize) -> Vec<GeoPoint> {
        // Points spaced ~111 km apart along a meridian.
        (0..n).map(|i| GeoPoint::new(0.0, i as f64)).collect()
    }

    #[test]
    fn distance_matrix_symmetry_and_max() {
        let pts = line_points(4);
        let d = DistanceMatrix::from_points(&pts);
        assert_eq!(d.len(), 4);
        for a in 0..4 {
            assert_eq!(d.get(a, a), 0.0);
            for b in 0..4 {
                assert_eq!(d.get(a, b), d.get(b, a));
            }
        }
        assert!((d.max_distance() - d.get(0, 3)).abs() < 1e-9);
    }

    #[test]
    fn min_to_set_picks_nearest() {
        let pts = line_points(5);
        let d = DistanceMatrix::from_points(&pts);
        let m = d.min_to_set(0, &[2, 4, 1]).unwrap();
        assert!((m - d.get(0, 1)).abs() < 1e-9);
        assert!(d.min_to_set(0, &[]).is_none());
    }

    #[test]
    fn ahd_identical_sets_is_zero() {
        let pts = line_points(3);
        let d = DistanceMatrix::from_points(&pts);
        assert_eq!(average_hausdorff(&[0, 1, 2], &[0, 1, 2], &d), 0.0);
    }

    #[test]
    fn ahd_symmetric_and_grows_with_separation() {
        let pts = line_points(6);
        let d = DistanceMatrix::from_points(&pts);
        let near = average_hausdorff(&[0, 1], &[1, 2], &d);
        let far = average_hausdorff(&[0, 1], &[4, 5], &d);
        assert!(far > near);
        assert!(
            (average_hausdorff(&[0, 1], &[4, 5], &d) - average_hausdorff(&[4, 5], &[0, 1], &d))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn ahd_empty_set_contributes_nothing() {
        let pts = line_points(2);
        let d = DistanceMatrix::from_points(&pts);
        assert_eq!(average_hausdorff(&[], &[0], &d), 0.0);
        assert_eq!(average_hausdorff(&[0], &[], &d), 0.0);
    }

    #[test]
    fn generalized_mean_approximates_min() {
        let xs = [1.0, 5.0, 10.0];
        let exact_min = 1.0;
        // More negative alpha → closer to min.
        let m1 = generalized_mean(&xs, -1.0, 1e-9);
        let m8 = generalized_mean(&xs, -8.0, 1e-9);
        assert!(m1 > exact_min);
        assert!(m8 > exact_min);
        assert!((m8 - exact_min).abs() < (m1 - exact_min).abs());
        assert!((generalized_mean(&xs, -64.0, 1e-9) - exact_min).abs() < 0.05);
    }

    #[test]
    fn generalized_mean_of_constant_is_constant() {
        assert!((generalized_mean(&[3.0, 3.0, 3.0], -1.0, 1e-9) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha = 0")]
    fn generalized_mean_rejects_zero_alpha() {
        generalized_mean(&[1.0], 0.0, 1e-9);
    }

    #[test]
    fn weighted_hausdorff_deterministic_limit_matches_ahd() {
        // With p ∈ {0,1}, e ≡ 1 and a very negative alpha (≈ exact min),
        // the surrogate reduces to AHD over the p=1 POIs (paper §IV-C).
        let pts = line_points(6);
        let d = DistanceMatrix::from_points(&pts);
        let e = vec![1.0; 6];
        let s_all: Vec<usize> = (0..6).collect();
        let p = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // S = {0, 1}
        let n_set = vec![1, 2];
        let params = WeightedHausdorffParams {
            alpha: -128.0,
            epsilon: 1e-9,
            floor: 1e-9,
        };
        let wh = weighted_hausdorff(&s_all, &p, &n_set, &d, &e, &params);
        let ahd = average_hausdorff(&[0, 1], &n_set, &d);
        assert!(
            (wh - ahd).abs() < 1.0,
            "weighted {wh} should approximate exact {ahd}"
        );
    }

    #[test]
    fn weighted_hausdorff_all_ones_probability_is_optimistic() {
        // The paper's remark: dropping the first term, p ≡ 1 minimizes the
        // second term. Check the second-term-only behaviour via e ≡ 1.
        let pts = line_points(4);
        let d = DistanceMatrix::from_points(&pts);
        let e = vec![1.0; 4];
        let s: Vec<usize> = (0..4).collect();
        let n_set = vec![0];
        let params = WeightedHausdorffParams::default();
        let hi = weighted_hausdorff(&s, &[1.0; 4], &n_set, &d, &e, &params);
        let lo = weighted_hausdorff(&s, &[0.0; 4], &n_set, &d, &e, &params);
        // p ≡ 0 zeroes the first term but pays d_max in the second;
        // p ≡ 1 pays nearest-distance terms in both. Both must be finite and
        // non-negative; p ≡ 0 must cost ~d_max in the second term.
        assert!(hi.is_finite() && lo.is_finite());
        assert!(lo >= d.max_distance() * 0.9);
    }

    #[test]
    fn weighted_hausdorff_empty_friend_set_is_zero() {
        let pts = line_points(3);
        let d = DistanceMatrix::from_points(&pts);
        let e = vec![1.0; 3];
        assert_eq!(
            weighted_hausdorff(&[0, 1], &[0.5, 0.5], &[], &d, &e, &Default::default()),
            0.0
        );
    }

    #[test]
    fn entropy_weights_reduce_popular_poi_influence() {
        let pts = line_points(3);
        let d = DistanceMatrix::from_points(&pts);
        let s = vec![0];
        let p = vec![1.0];
        let n_set = vec![2];
        let uniform = weighted_hausdorff(&s, &p, &n_set, &d, &[1.0; 3], &Default::default());
        // Demote POI 0 and POI 2 via low weights.
        let weighted =
            weighted_hausdorff(&s, &p, &n_set, &d, &[0.1, 1.0, 0.1], &Default::default());
        assert!(weighted < uniform);
    }
}
