//! Geographic points and the haversine great-circle distance.

/// Mean Earth radius in kilometres (the value used by the `haversine` PyPI
/// package the paper cites).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A longitude/latitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Longitude in degrees, −180..180.
    pub lon: f64,
    /// Latitude in degrees, −90..90.
    pub lat: f64,
}

impl GeoPoint {
    /// Construct a point from longitude and latitude in degrees.
    pub fn new(lon: f64, lat: f64) -> Self {
        GeoPoint { lon, lat }
    }

    /// Great-circle distance to another point, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(*self, *other)
    }
}

/// Haversine great-circle distance between two points, in kilometres.
///
/// The paper uses the haversine formula "considering that the POIs are
/// distributed in a large area" (§V-D); this matches that choice exactly.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(-86.8, 33.5);
        assert_eq!(haversine_km(p, p), 0.0);
    }

    #[test]
    fn known_city_pair() {
        // New York (−74.006, 40.7128) to Los Angeles (−118.2437, 34.0522):
        // ~3936 km great-circle.
        let nyc = GeoPoint::new(-74.006, 40.7128);
        let la = GeoPoint::new(-118.2437, 34.0522);
        let d = haversine_km(nyc, la);
        assert!((d - 3936.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-30.0, 45.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-12);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        let d = haversine_km(a, b);
        assert!((d - 111.19).abs() < 0.5, "got {d}");
    }

    #[test]
    fn antipodal_points_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(180.0, 0.0);
        let d = haversine_km(a, b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn triangle_inequality_sampled() {
        let pts = [
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(5.0, 5.0),
            GeoPoint::new(-3.0, 7.0),
        ];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(
                        haversine_km(*a, *c) <= haversine_km(*a, *b) + haversine_km(*b, *c) + 1e-9
                    );
                }
            }
        }
    }
}
