//! Deterministic top-`n` selection over score vectors.
//!
//! The ranking surface of the model (`TcssModel::recommend`) and the
//! serving layer (`tcss-serve`) share one ordering contract: **descending
//! score, ties broken by ascending POI index**. The tie-break matters for
//! testability — a full stable sort of `(0..J)` by descending score leaves
//! equal-scored POIs in ascending index order, so the partial-selection
//! fast path here reproduces the historical full-sort behavior *exactly*,
//! not just "up to ties".
//!
//! [`top_n`] is the production path: `O(J)` selection via
//! [`slice::select_nth_unstable_by`] plus an `O(n log n)` sort of the
//! selected prefix, replacing the `O(J log J)` full sort that dominated
//! `recommend` on large POI tables. [`top_n_full_sort`] retains the
//! full-sort implementation as the parity reference
//! (`crates/core/tests/topn_reference.rs` pins them equal on ties and
//! degenerate `n`).

use std::cmp::Ordering;

/// The shared ranking order: descending score, then ascending index.
///
/// Panics on NaN scores — every scoring path in the workspace produces
/// finite floats, and a silent NaN ordering would corrupt rankings.
#[inline]
pub fn rank_order(a: (usize, f64), b: (usize, f64)) -> Ordering {
    b.1.partial_cmp(&a.1)
        .expect("scores finite")
        .then(a.0.cmp(&b.0))
}

/// Top-`n` `(index, score)` pairs of `scores` in [`rank_order`], by partial
/// selection.
///
/// Degenerate cases follow the reference: `n = 0` yields an empty vector,
/// `n ≥ scores.len()` yields the full ranking.
pub fn top_n(scores: &[f64], n: usize) -> Vec<(usize, f64)> {
    let j = scores.len();
    let n = n.min(j);
    if n == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..j).collect();
    let cmp = |&a: &usize, &b: &usize| rank_order((a, scores[a]), (b, scores[b]));
    if n < j {
        idx.select_nth_unstable_by(n, cmp);
        idx.truncate(n);
    }
    idx.sort_unstable_by(cmp);
    idx.into_iter().map(|i| (i, scores[i])).collect()
}

/// Full-sort reference for [`top_n`]: stable sort of every index by
/// descending score (which leaves ties in ascending index order), then
/// truncate. This is the historical `recommend` implementation, kept for
/// the parity tests.
pub fn top_n_full_sort(scores: &[f64], n: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("scores finite"));
    idx.into_iter().take(n).map(|i| (i, scores[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_and_orders() {
        let scores = [0.1, 0.9, 0.4, 0.9, 0.0];
        // Ties (indices 1 and 3 at 0.9) break ascending.
        assert_eq!(top_n(&scores, 3), vec![(1, 0.9), (3, 0.9), (2, 0.4)]);
    }

    #[test]
    fn degenerate_n() {
        let scores = [0.5, 0.25];
        assert!(top_n(&scores, 0).is_empty());
        assert_eq!(top_n(&scores, 2), vec![(0, 0.5), (1, 0.25)]);
        assert_eq!(top_n(&scores, 99), vec![(0, 0.5), (1, 0.25)]);
        assert!(top_n(&[], 4).is_empty());
    }

    #[test]
    fn matches_full_sort_on_all_equal() {
        let scores = [1.0; 7];
        assert_eq!(top_n(&scores, 4), top_n_full_sort(&scores, 4));
    }
}
