//! Reusable training workspaces: every scratch buffer the hot path needs,
//! allocated once per run.
//!
//! Before this module, one epoch of [`crate::train::TcssTrainer`] allocated
//! per **chunk** (model-sized gradient buffers in both loss heads) and per
//! **user** (the Hausdorff probability/candidate vectors) — `O(chunks)`
//! model copies and `O(users)` slice buffers per epoch. A
//! [`TrainWorkspace`] owns three [`WorkspacePool`]s that amortize all of
//! it: after the first epoch warms the pools, steady-state training
//! performs no hot-path allocations at all (the `bench_kernels` binary
//! counts this).
//!
//! # Ownership rules
//!
//! * The workspace is created once per training run (in `train_model` /
//!   `train_with_faults`) and threaded **by shared reference** through the
//!   loss heads; pools hand buffers out via interior mutability.
//! * Worker-local buffers ([`GradScratch`], `UserScratch`) are checked out
//!   through RAII guards for the lifetime of one parallel region's worker.
//! * Per-chunk deltas ([`SparseGrads`]) travel by value with the chunk
//!   result and are returned to the pool by the caller after the in-order
//!   merge.
//! * Pooled buffers carry no information between uses: every checkout
//!   resets what it reads ([`SparseGrads::begin`], `GradScratch::ensure`),
//!   so pooling cannot perturb the deterministic-reduction contract.

use crate::hausdorff::UserScratch;
use crate::sparse_grads::{GradScratch, SparseGrads};
use tcss_linalg::WorkspacePool;

/// Pooled scratch state for one training run. Cheap to construct (empty
/// pools); buffers materialize lazily on first use and are recycled for
/// the rest of the run.
#[derive(Debug, Default)]
pub struct TrainWorkspace {
    /// Worker-local row → slot indices for sparse gradient accumulation.
    pub(crate) scratch: WorkspacePool<GradScratch>,
    /// Per-chunk sparse gradient deltas.
    pub(crate) deltas: WorkspacePool<SparseGrads>,
    /// Per-worker Hausdorff user buffers (probabilities, candidate set,
    /// prefix/suffix products, generalized-mean terms).
    pub(crate) users: WorkspacePool<UserScratch>,
}

impl TrainWorkspace {
    /// A fresh workspace with empty pools.
    pub fn new() -> Self {
        TrainWorkspace::default()
    }

    /// Total idle buffers across all pools (diagnostics/tests).
    pub fn idle_buffers(&self) -> usize {
        self.scratch.idle() + self.deltas.idle() + self.users.idle()
    }
}
