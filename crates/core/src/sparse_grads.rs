//! Sparse per-chunk gradient deltas for the training hot path.
//!
//! The entry-loop losses ([`crate::loss`]) and the social-Hausdorff head
//! ([`crate::hausdorff`]) parallelize over fixed chunks of work. Before
//! this module existed, every chunk accumulated into a **full model-sized**
//! [`Grads`] buffer: per epoch that cost `O(chunks · (I+J+K) · r)` in
//! zeroing and merge traffic — asymptotically more than the `O(nnz · r)`
//! useful math the paper's rewritten loss (Eq 15, §IV-D) was designed to
//! achieve. A chunk of 1024 tensor entries touches at most 1024 rows per
//! factor, so recording *only the touched rows* makes both the chunk
//! buffer and the merge proportional to actual work.
//!
//! Two pieces:
//!
//! * [`SparseGrads`] — the compact delta a chunk produces: touched rows of
//!   `U¹/U²/U³` in first-touch order plus a dense (length-`r`) `h`
//!   gradient. It travels with the chunk result and is recycled through a
//!   [`tcss_linalg::WorkspacePool`].
//! * [`GradScratch`] — the worker-local row → slot index (`O(I+J+K)` of
//!   `u32`) that makes row lookup `O(1)` without hashing. It stays with
//!   the worker across chunks; [`SparseGrads::detach`] un-marks the rows a
//!   chunk touched in `O(touched)` so the index never needs a full clear.
//!
//! # The sparse-delta merge contract (bitwise parity)
//!
//! The deterministic-reduction contract of [`tcss_linalg::parallel`] pins
//! the chunk grid and merges chunk results in ascending chunk order. The
//! sparse path preserves the dense path's floats **bit-for-bit** because:
//!
//! 1. within a chunk, each touched row accumulates its entries in the same
//!    order, with the same arithmetic, as the dense chunk buffer did;
//! 2. [`SparseGrads::scatter_into`] adds each chunk's contribution to the
//!    shared [`Grads`] in ascending chunk order (the caller folds in chunk
//!    order), one add per touched row element — and the adds the dense
//!    merge performed for *untouched* rows were all exact `+0.0`
//!    identities (an IEEE-754 accumulator that starts at `+0.0` can never
//!    become `-0.0` under addition, so `x + 0.0` is always bitwise `x`).
//!
//! The parity suite in `tests/sparse_parity.rs` pins this equivalence
//! against the retained dense reference implementations at 1/2/4 threads.

use crate::loss::Grads;
use crate::model::TcssModel;
use tcss_linalg::{kernels, Matrix};

/// Sentinel slot meaning "row not touched by the current chunk".
const EMPTY: u32 = u32::MAX;

/// Compact gradient delta for one factor matrix: the touched rows, in
/// first-touch order, with their `r`-wide accumulation buffers.
#[derive(Debug, Default)]
struct FactorDelta {
    /// Touched row indices, in order of first touch.
    rows: Vec<u32>,
    /// Row buffers, `rows.len() * r`, parallel to `rows`.
    data: Vec<f64>,
}

impl FactorDelta {
    /// The accumulation buffer for `row`, registering it on first touch.
    #[inline]
    fn row_mut(&mut self, slots: &mut [u32], row: usize, r: usize) -> &mut [f64] {
        let mut slot = slots[row];
        if slot == EMPTY {
            slot = self.rows.len() as u32;
            slots[row] = slot;
            self.rows.push(row as u32);
            self.data.resize(self.data.len() + r, 0.0);
        }
        let lo = slot as usize * r;
        &mut self.data[lo..lo + r]
    }

    /// Add every touched row into `dense` (one add per element, same as
    /// the dense chunk merge performed for these rows).
    fn scatter_into(&self, r: usize, dense: &mut Matrix) {
        for (slot, &row) in self.rows.iter().enumerate() {
            let src = &self.data[slot * r..(slot + 1) * r];
            for (d, &s) in dense.row_mut(row as usize).iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Un-mark this delta's rows in the slot index (`O(touched)`).
    fn detach(&self, slots: &mut [u32]) {
        for &row in &self.rows {
            slots[row as usize] = EMPTY;
        }
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.data.clear();
    }
}

/// Worker-local row → slot index for the three factor matrices.
///
/// Allocated once per worker per run (checked out of the trainer's
/// [`crate::workspace::TrainWorkspace`] pool), sized `O(I + J + K)` in
/// `u32`. Between chunks every entry is [`EMPTY`]; a chunk marks the rows
/// it touches and [`SparseGrads::detach`] un-marks them before the worker
/// moves on.
#[derive(Debug)]
pub struct GradScratch {
    slot1: Vec<u32>,
    slot2: Vec<u32>,
    slot3: Vec<u32>,
}

impl GradScratch {
    /// A scratch index sized for `model`, all rows unmarked.
    pub fn for_model(model: &TcssModel) -> Self {
        let (i, j, k) = model.dims();
        GradScratch {
            slot1: vec![EMPTY; i],
            slot2: vec![EMPTY; j],
            slot3: vec![EMPTY; k],
        }
    }

    /// Resize for `model` if a pooled scratch was built for different
    /// dimensions (all rows unmarked afterwards). A same-shape call is a
    /// no-op — pooled buffers keep their cleared state between chunks.
    pub fn ensure(&mut self, model: &TcssModel) {
        let (i, j, k) = model.dims();
        if self.slot1.len() != i || self.slot2.len() != j || self.slot3.len() != k {
            *self = GradScratch::for_model(model);
        }
    }
}

/// Borrowed wire view of one delta: the rank plus, per factor, the
/// touched-row indices and their `rows.len() * r` accumulation buffer,
/// then the dense `h` gradient.
pub(crate) type WireParts<'a> = (usize, [(&'a [u32], &'a [f64]); 3], &'a [f64]);

/// The sparse gradient delta one parallel chunk produces: touched rows of
/// the three factors plus the dense `h` gradient. See the module docs for
/// the merge contract.
#[derive(Debug, Default)]
pub struct SparseGrads {
    r: usize,
    u1: FactorDelta,
    u2: FactorDelta,
    u3: FactorDelta,
    h: Vec<f64>,
}

impl SparseGrads {
    /// An empty delta (rank set by [`SparseGrads::begin`]).
    pub fn new() -> Self {
        SparseGrads::default()
    }

    /// Reset for a fresh chunk against `model`: no touched rows, `h`
    /// zeroed. Keeps the capacity of a recycled delta.
    pub fn begin(&mut self, model: &TcssModel) {
        self.r = model.h.len();
        self.u1.clear();
        self.u2.clear();
        self.u3.clear();
        self.h.clear();
        self.h.resize(self.r, 0.0);
    }

    /// Number of touched rows across the three factors (diagnostics).
    pub fn touched_rows(&self) -> usize {
        self.u1.rows.len() + self.u2.rows.len() + self.u3.rows.len()
    }

    /// Un-mark this delta's rows in `scratch`, leaving the scratch clean
    /// for the worker's next chunk. Must be called exactly once per
    /// [`SparseGrads::begin`], with the same scratch the chunk accumulated
    /// through.
    pub fn detach(&self, scratch: &mut GradScratch) {
        self.u1.detach(&mut scratch.slot1);
        self.u2.detach(&mut scratch.slot2);
        self.u3.detach(&mut scratch.slot3);
    }

    /// Borrow the raw wire representation for the distributed trainer:
    /// the rank plus, per factor, the touched-row indices and their
    /// `rows.len() * r` accumulation buffer, then the dense `h` gradient.
    /// [`crate::dist`] serializes these slices verbatim so the coordinator
    /// can replay the exact adds [`SparseGrads::scatter_into`] would have
    /// performed in-process.
    pub(crate) fn wire_parts(&self) -> WireParts<'_> {
        (
            self.r,
            [
                (&self.u1.rows, &self.u1.data),
                (&self.u2.rows, &self.u2.data),
                (&self.u3.rows, &self.u3.data),
            ],
            &self.h,
        )
    }

    /// Add this delta into the shared dense gradients (ascending-chunk-
    /// order calls preserve the dense merge's floats bit-for-bit).
    pub fn scatter_into(&self, grads: &mut Grads) {
        self.u1.scatter_into(self.r, &mut grads.u1);
        self.u2.scatter_into(self.r, &mut grads.u2);
        self.u3.scatter_into(self.r, &mut grads.u3);
        for (d, &s) in grads.h.iter_mut().zip(self.h.iter()) {
            *d += s;
        }
    }
}

// ---------------------------------------------------------------------
// Row ownership (owner-computes tail sharding, `crate::dist::sharded`)
// ---------------------------------------------------------------------

/// The contiguous row range worker `w` of `n_workers` owns in a factor
/// with `dim` rows: `[w·dim/n, (w+1)·dim/n)`. The same balanced split the
/// chunk-grid sharding uses — a pure function of `(dim, n_workers, w)`,
/// so every peer derives the identical map locally.
pub(crate) fn owned_range(dim: usize, n_workers: usize, w: usize) -> (usize, usize) {
    (w * dim / n_workers, (w + 1) * dim / n_workers)
}

/// Inverse of [`owned_range`]: which worker owns `row`.
pub(crate) fn row_owner(row: usize, dim: usize, n_workers: usize) -> usize {
    debug_assert!(row < dim);
    let w = (row * n_workers + n_workers - 1) / dim;
    debug_assert!({
        let (lo, hi) = owned_range(dim, n_workers, w);
        lo <= row && row < hi
    });
    w
}

/// One destination's share of a worker's chunk deltas for one factor:
/// touched rows in global first-touch order (ascending chunk, first-touch
/// order within each chunk) with their accumulated `r`-wide buffers —
/// exactly the adds [`FactorDelta::scatter_into`] would have replayed for
/// these rows, in the same order.
#[derive(Debug, Default)]
pub(crate) struct OwnedRows {
    pub rows: Vec<u32>,
    pub data: Vec<f64>,
}

impl OwnedRows {
    fn clear(&mut self) {
        self.rows.clear();
        self.data.clear();
    }
}

/// Splits per-chunk [`SparseGrads`] by row owner for the reduce-scatter
/// exchange: `parts[factor · n_owners + owner]` collects every touched
/// row bound for `owner` across all chunks fed to
/// [`OwnerSplit::split_chunk`] (call in ascending chunk order). Buffers
/// are reused across epochs.
#[derive(Debug)]
pub(crate) struct OwnerSplit {
    n_owners: usize,
    parts: Vec<OwnedRows>,
}

impl OwnerSplit {
    pub(crate) fn new(n_owners: usize) -> Self {
        OwnerSplit {
            n_owners,
            parts: (0..3 * n_owners).map(|_| OwnedRows::default()).collect(),
        }
    }

    /// Drop all collected rows (start of a fresh epoch).
    pub(crate) fn clear(&mut self) {
        for p in &mut self.parts {
            p.clear();
        }
    }

    /// The rows of `factor` (0 = `U¹`, 1 = `U²`, 2 = `U³`) bound for
    /// `owner`.
    pub(crate) fn part(&self, factor: usize, owner: usize) -> &OwnedRows {
        &self.parts[factor * self.n_owners + owner]
    }

    /// Route one chunk's touched rows to their owners, preserving
    /// first-touch order within the chunk.
    pub(crate) fn split_chunk(&mut self, delta: &SparseGrads, dims: (usize, usize, usize)) {
        let r = delta.r;
        for (f, (fd, dim)) in [
            (&delta.u1, dims.0),
            (&delta.u2, dims.1),
            (&delta.u3, dims.2),
        ]
        .into_iter()
        .enumerate()
        {
            for (slot, &row) in fd.rows.iter().enumerate() {
                let owner = row_owner(row as usize, dim, self.n_owners);
                let part = &mut self.parts[f * self.n_owners + owner];
                part.rows.push(row);
                part.data
                    .extend_from_slice(&fd.data[slot * r..(slot + 1) * r]);
            }
        }
    }
}

/// Sparse counterpart of [`crate::loss::backprop_entry`]: accumulate the
/// gradient of a per-entry score derivative `c = ∂L/∂X̂_{ijk}` into a
/// chunk's sparse delta. The arithmetic (expression shapes and
/// accumulation order) mirrors the dense version exactly — that identity
/// is what the bitwise parity contract rests on.
#[inline]
pub(crate) fn backprop_entry_sparse(
    model: &TcssModel,
    delta: &mut SparseGrads,
    scratch: &mut GradScratch,
    i: usize,
    j: usize,
    k: usize,
    c: f64,
) {
    let r = model.h.len();
    let ui = model.u1.row(i);
    let uj = model.u2.row(j);
    let uk = model.u3.row(k);
    let g1 = delta.u1.row_mut(&mut scratch.slot1, i, r);
    kernels::fused_mul3_axpy(c, &model.h, uj, uk, g1);
    let g2 = delta.u2.row_mut(&mut scratch.slot2, j, r);
    kernels::fused_mul3_axpy(c, &model.h, ui, uk, g2);
    let g3 = delta.u3.row_mut(&mut scratch.slot3, k, r);
    kernels::fused_mul3_axpy(c, &model.h, ui, uj, g3);
    kernels::fused_mul3_axpy(c, ui, uj, uk, &mut delta.h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use crate::loss::backprop_entry;

    fn model() -> TcssModel {
        let (u1, u2, u3) = random_init((6, 7, 4), 3, 5);
        TcssModel::new(u1, u2, u3)
    }

    #[test]
    fn sparse_backprop_matches_dense_bitwise() {
        let m = model();
        let entries = [
            (0usize, 0usize, 0usize, 0.7),
            (2, 3, 1, -1.3),
            (0, 3, 1, 0.2),
        ];
        let mut dense = Grads::zeros(&m);
        for &(i, j, k, c) in &entries {
            backprop_entry(&m, &mut dense, i, j, k, c);
        }
        let mut scratch = GradScratch::for_model(&m);
        let mut delta = SparseGrads::new();
        delta.begin(&m);
        for &(i, j, k, c) in &entries {
            backprop_entry_sparse(&m, &mut delta, &mut scratch, i, j, k, c);
        }
        delta.detach(&mut scratch);
        let mut scattered = Grads::zeros(&m);
        delta.scatter_into(&mut scattered);
        let bits = |g: &Grads| -> Vec<u64> {
            g.u1.as_slice()
                .iter()
                .chain(g.u2.as_slice())
                .chain(g.u3.as_slice())
                .chain(&g.h)
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&dense), bits(&scattered));
        // Only the touched rows were recorded: 2 in U¹ (users 0, 2),
        // 2 in U² (POIs 0, 3), 2 in U³ (times 0, 1).
        assert_eq!(delta.touched_rows(), 6);
    }

    #[test]
    fn detach_leaves_scratch_reusable() {
        let m = model();
        let mut scratch = GradScratch::for_model(&m);
        let mut delta = SparseGrads::new();
        for round in 0..3 {
            delta.begin(&m);
            backprop_entry_sparse(&m, &mut delta, &mut scratch, round, round, 0, 1.0);
            assert_eq!(delta.touched_rows(), 3, "round {round}");
            delta.detach(&mut scratch);
            assert!(scratch.slot1.iter().all(|&s| s == EMPTY));
            assert!(scratch.slot2.iter().all(|&s| s == EMPTY));
            assert!(scratch.slot3.iter().all(|&s| s == EMPTY));
        }
    }

    #[test]
    fn owned_ranges_partition_and_row_owner_inverts() {
        for dim in 1..40usize {
            for n in 1..9usize {
                let mut next = 0;
                for w in 0..n {
                    let (lo, hi) = owned_range(dim, n, w);
                    assert_eq!(lo, next, "dim {dim} workers {n} worker {w}");
                    assert!(hi >= lo);
                    next = hi;
                    for row in lo..hi {
                        assert_eq!(row_owner(row, dim, n), w, "dim {dim} n {n} row {row}");
                    }
                }
                assert_eq!(next, dim);
            }
        }
    }

    #[test]
    fn owner_split_preserves_first_touch_order_per_owner() {
        let m = model(); // dims (6, 7, 4)
        let mut scratch = GradScratch::for_model(&m);
        let mut delta = SparseGrads::new();
        delta.begin(&m);
        // U¹ touches rows 5, 0, 5, 1 (first-touch order 5, 0, 1); with 2
        // owners of 6 rows, owner 0 gets [0, 1], owner 1 gets [5].
        for &(i, j, k, c) in &[
            (5usize, 0usize, 0usize, 1.0),
            (0, 1, 1, 2.0),
            (5, 2, 3, 3.0),
            (1, 3, 2, 4.0),
        ] {
            backprop_entry_sparse(&m, &mut delta, &mut scratch, i, j, k, c);
        }
        delta.detach(&mut scratch);
        let mut split = OwnerSplit::new(2);
        split.split_chunk(&delta, m.dims());
        assert_eq!(split.part(0, 0).rows, vec![0, 1]);
        assert_eq!(split.part(0, 1).rows, vec![5]);
        assert_eq!(split.part(0, 0).data.len(), 2 * 3);
        // The routed buffers are the accumulated chunk buffers, bit-for-bit.
        let (r, [(rows1, data1), _, _], _) = delta.wire_parts();
        let slot_of_5 = rows1.iter().position(|&x| x == 5).unwrap();
        assert_eq!(
            split.part(0, 1).data,
            &data1[slot_of_5 * r..(slot_of_5 + 1) * r]
        );
        // U² rows 0, 1, 2, 3 of 7: owner 0 owns [0, 3), owner 1 [3, 7).
        assert_eq!(split.part(1, 0).rows, vec![0, 1, 2]);
        assert_eq!(split.part(1, 1).rows, vec![3]);
        // clear() empties every part for the next epoch.
        split.clear();
        assert!(split.part(0, 0).rows.is_empty());
        assert!(split.part(1, 1).data.is_empty());
    }

    #[test]
    fn ensure_resizes_for_new_dims() {
        let m = model();
        let mut scratch = GradScratch::for_model(&m);
        let (u1, u2, u3) = random_init((10, 2, 8), 3, 5);
        let bigger = TcssModel::new(u1, u2, u3);
        scratch.ensure(&bigger);
        assert_eq!(scratch.slot1.len(), 10);
        assert_eq!(scratch.slot3.len(), 8);
    }
}
