//! TCSS hyperparameters and the ablation variant switches of Table II.

use std::path::PathBuf;

/// Embedding initialization method (§IV-A and the Table II ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMethod {
    /// The paper's spectral method: top-r eigenvectors of the off-diagonal
    /// mode Gram matrices (Eq 4).
    Spectral,
    /// Naive uniform random initialization (the CP/Tucker default).
    Random,
    /// One-hot-derived initialization: NCF-style index encoding flattened
    /// into `r` dimensions (row `i` activates coordinate `i mod r`) plus
    /// small noise to break ties.
    OneHot,
}

/// How the least-squares head `L₂` is computed (§IV-D and Table II/IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossStrategy {
    /// The paper's method: whole-data loss rewritten as Eq 15,
    /// `O(nnz·r + (I+J+K)r²)` per epoch.
    WholeDataRewritten,
    /// Whole-data loss computed naively as Eq 14, `O(I·J·K·r)` per epoch.
    /// Only used by the Table IV timing comparison and equivalence tests.
    WholeDataNaive,
    /// Classic negative sampling: per epoch, sample as many unobserved
    /// entries as there are positives and fit squared error on the union.
    NegativeSampling,
}

/// Which Hausdorff regularizer (if any) is used for `L₁` (§IV-C, Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HausdorffVariant {
    /// The paper's social Hausdorff distance: `N(vᵢ)` = POIs visited by
    /// friends, entropy-weighted (Eq 12).
    Social,
    /// Ablation: `N(vᵢ)` = POIs visited by the user themself.
    SelfHausdorff,
    /// Ablation: no `L₁`; at prediction time, discard POIs farther than
    /// `zero_out_sigma · d_max` from the user's nearest visited POI.
    ZeroOut,
    /// Ablation: no `L₁` at all (λ = 0 row of Table II).
    None,
}

/// Full TCSS configuration. `Default` reproduces the paper's §V-D settings
/// (adapted where the paper's value is GPU-scale: see field docs).
#[derive(Debug, Clone)]
pub struct TcssConfig {
    /// Tensor rank / embedding length `r` (paper default: 10).
    pub rank: usize,
    /// Positive-entry weight `w₊`. The paper's default is 0.99; our
    /// synthetic tensors are denser, which moves the optimum to 0.95
    /// (Table III / Fig 8 sweep this).
    pub w_plus: f64,
    /// Unlabeled-entry weight `w₋` (paper: 0.01; see [`TcssConfig::w_plus`]).
    pub w_minus: f64,
    /// Social-Hausdorff weight `λ`. The head normalizes POI distances by
    /// `d_max`, so values here correspond to the paper's raw-kilometre λ
    /// times the map extent (≈1200 km): our 240 ≈ their 0.2; Fig 11 sweeps
    /// this.
    pub lambda: f64,
    /// Generalized-mean exponent `α` (paper default: −1).
    pub alpha: f64,
    /// Division guard `ε` (paper default: 1e-6).
    pub epsilon: f64,
    /// Adam learning rate. The paper uses 0.001 for GPU-scale training over
    /// hundreds of epochs; our default 0.05 converges in ~250 epochs at
    /// laptop scale (the optimizer and loss are unchanged).
    pub learning_rate: f64,
    /// Adam weight decay (paper default: 0.1 at lr 1e-3; at our larger
    /// learning rate any nonzero decay measurably hurts, so the default is
    /// 0 and the Gram term of Eq 15 provides the shrinkage).
    pub weight_decay: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Embedding initialization.
    pub init: InitMethod,
    /// `L₂` computation strategy.
    pub loss: LossStrategy,
    /// `L₁` variant.
    pub hausdorff: HausdorffVariant,
    /// Optional cap on the social-Hausdorff candidate set `S(vᵢ)`:
    /// `None` uses all POIs (exact, fine at laptop scale); `Some(p)` keeps
    /// the `p` POIs with highest predicted visit probability.
    pub hausdorff_candidates: Option<usize>,
    /// Zero-out ablation threshold as a fraction of `d_max` (paper: 1%).
    pub zero_out_sigma: f64,
    /// RNG seed (negative sampling, random init).
    pub seed: u64,
    /// How often (in epochs) to refresh the `L₁` gradient. 1 = every epoch.
    /// The head is the most expensive term; values >1 trade fidelity for
    /// speed and are only used by the large parameter sweeps.
    pub hausdorff_every: usize,
    /// Worker threads for the parallel loss/Hausdorff/linalg kernels.
    /// `None` defers to the `TCSS_NUM_THREADS` environment variable and
    /// then to the machine's available parallelism. Thanks to the
    /// deterministic-reduction contract in `tcss_linalg::parallel`, this
    /// knob changes wall-clock time only — never a single bit of output.
    pub num_threads: Option<usize>,
    /// Worker **processes** for mode-sharded distributed training
    /// ([`crate::dist`]). `None` (the default) trains in-process;
    /// `Some(w)` shards the entry-chunk grid across `w` coordinator-spawned
    /// worker processes. Like [`TcssConfig::num_threads`], this is a pure
    /// runtime knob: the process-count-parity contract guarantees the
    /// trained model is bit-identical for any worker count (and it is
    /// excluded from the checkpoint fingerprint, so single-process and
    /// distributed runs can resume each other's checkpoints).
    pub workers: Option<usize>,
    /// Directory where [`crate::train::TcssTrainer::train_with_checkpoints`]
    /// writes its rolling checkpoint file. `None` disables on-disk
    /// checkpoints (the watchdog still keeps an in-memory rollback
    /// snapshot).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint / rollback-snapshot cadence in epochs.
    pub checkpoint_every: usize,
    /// Resume training from this checkpoint file instead of initializing
    /// a fresh model. The checkpoint's config fingerprint must match this
    /// config (`epochs`, threading and checkpoint policy may differ — see
    /// [`crate::checkpoint::config_fingerprint`]).
    pub resume_from: Option<PathBuf>,
    /// Divergence-watchdog threshold: an epoch whose gradient norm or
    /// joint loss magnitude exceeds this (or is NaN/Inf) is rejected and
    /// rolled back. The default is far above anything a healthy run
    /// produces, so the watchdog never perturbs normal training.
    pub max_grad_norm: f64,
    /// Bounded watchdog retries: after this many rollbacks the run aborts
    /// with [`crate::train::TrainError::Diverged`] instead of looping.
    pub max_retries: u32,
    /// Learning-rate backoff factor applied on each watchdog rollback
    /// (`lr ← lr · lr_backoff`); must lie in `(0, 1)`.
    pub lr_backoff: f64,
}

impl Default for TcssConfig {
    fn default() -> Self {
        TcssConfig {
            rank: 10,
            w_plus: 0.95,
            w_minus: 0.05,
            lambda: 240.0,
            alpha: -1.0,
            epsilon: 1e-6,
            learning_rate: 0.05,
            weight_decay: 0.0,
            epochs: 250,
            init: InitMethod::Spectral,
            loss: LossStrategy::WholeDataRewritten,
            hausdorff: HausdorffVariant::Social,
            hausdorff_candidates: None,
            zero_out_sigma: 0.01,
            seed: 7,
            hausdorff_every: 3,
            num_threads: None,
            workers: None,
            checkpoint_dir: None,
            checkpoint_every: 25,
            resume_from: None,
            max_grad_norm: 1e12,
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

impl TcssConfig {
    /// The full-fledged TCSS of the paper.
    pub fn full() -> Self {
        Self::default()
    }

    /// Table II row: random initialization.
    pub fn ablation_random_init() -> Self {
        TcssConfig {
            init: InitMethod::Random,
            ..Self::default()
        }
    }

    /// Table II row: one-hot initialization.
    pub fn ablation_onehot_init() -> Self {
        TcssConfig {
            init: InitMethod::OneHot,
            ..Self::default()
        }
    }

    /// Table II row: remove `L₁` (λ = 0).
    pub fn ablation_no_l1() -> Self {
        TcssConfig {
            lambda: 0.0,
            hausdorff: HausdorffVariant::None,
            ..Self::default()
        }
    }

    /// Table II row: negative sampling instead of whole-data training.
    pub fn ablation_negative_sampling() -> Self {
        TcssConfig {
            loss: LossStrategy::NegativeSampling,
            ..Self::default()
        }
    }

    /// Table II row: self-Hausdorff (no social influence).
    pub fn ablation_self_hausdorff() -> Self {
        TcssConfig {
            hausdorff: HausdorffVariant::SelfHausdorff,
            ..Self::default()
        }
    }

    /// Table II row: zero-out distance filtering instead of `L₁`.
    pub fn ablation_zero_out() -> Self {
        TcssConfig {
            lambda: 0.0,
            hausdorff: HausdorffVariant::ZeroOut,
            ..Self::default()
        }
    }

    /// Validate every field against its documented domain. Every training
    /// entry point calls this before touching data, so a bad configuration
    /// surfaces as a typed error instead of a panic (or worse, a silently
    /// nonsensical run) deep inside an epoch.
    pub fn validate(&self) -> Result<(), String> {
        fn finite(v: f64, name: &str) -> Result<(), String> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} must be finite, got {v}"))
            }
        }
        if self.rank == 0 {
            return Err("rank must be at least 1".into());
        }
        finite(self.w_plus, "w_plus")?;
        finite(self.w_minus, "w_minus")?;
        if self.w_plus <= 0.0 || self.w_plus > 1.0 {
            return Err(format!("w_plus must lie in (0, 1], got {}", self.w_plus));
        }
        if !(0.0..=1.0).contains(&self.w_minus) {
            return Err(format!("w_minus must lie in [0, 1], got {}", self.w_minus));
        }
        finite(self.lambda, "lambda")?;
        if self.lambda < 0.0 {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        finite(self.alpha, "alpha")?;
        if self.alpha == 0.0 {
            return Err("alpha must be nonzero (the generalized mean of Eq 11 \
                        is undefined at 0)"
                .into());
        }
        if self.epsilon.is_nan() || self.epsilon <= 0.0 || self.epsilon.is_infinite() {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if self.learning_rate.is_nan()
            || self.learning_rate <= 0.0
            || self.learning_rate.is_infinite()
        {
            return Err(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            ));
        }
        finite(self.weight_decay, "weight_decay")?;
        if self.weight_decay < 0.0 {
            return Err(format!(
                "weight_decay must be non-negative, got {}",
                self.weight_decay
            ));
        }
        if self.zero_out_sigma.is_nan()
            || self.zero_out_sigma <= 0.0
            || self.zero_out_sigma.is_infinite()
        {
            return Err(format!(
                "zero_out_sigma must be positive, got {}",
                self.zero_out_sigma
            ));
        }
        if self.hausdorff_candidates == Some(0) {
            return Err("hausdorff_candidates must be at least 1 when set".into());
        }
        if self.hausdorff_every == 0 {
            return Err("hausdorff_every must be at least 1".into());
        }
        if self.num_threads == Some(0) {
            return Err("num_threads must be at least 1 when set".into());
        }
        if self.workers == Some(0) {
            return Err("workers must be at least 1 when set".into());
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be at least 1".into());
        }
        if let Some(w) = self.workers {
            if w > 1 && self.epochs > 0 && self.checkpoint_every > self.epochs {
                return Err(format!(
                    "workers is set ({w}) but checkpoint_every ({}) exceeds epochs ({}): \
                     distributed training recovers from worker loss by rolling back to \
                     the last checkpoint cadence, so at least one must land within the \
                     run — lower checkpoint_every or raise epochs",
                    self.checkpoint_every, self.epochs
                ));
            }
        }
        if self.max_grad_norm.is_nan() || self.max_grad_norm <= 0.0 {
            return Err(format!(
                "max_grad_norm must be positive, got {}",
                self.max_grad_norm
            ));
        }
        if self.lr_backoff.is_nan() || self.lr_backoff <= 0.0 || self.lr_backoff >= 1.0 {
            return Err(format!(
                "lr_backoff must lie in (0, 1), got {}",
                self.lr_backoff
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_hyperparameters() {
        let c = TcssConfig::default();
        assert_eq!(c.rank, 10);
        assert_eq!(c.w_plus, 0.95);
        assert_eq!(c.w_minus, 0.05);
        assert_eq!(c.lambda, 240.0);
        assert_eq!(c.alpha, -1.0);
        assert_eq!(c.epsilon, 1e-6);
        assert_eq!(c.init, InitMethod::Spectral);
        assert_eq!(c.loss, LossStrategy::WholeDataRewritten);
        assert_eq!(c.hausdorff, HausdorffVariant::Social);
    }

    #[test]
    fn ablations_flip_exactly_their_switch() {
        assert_eq!(TcssConfig::ablation_random_init().init, InitMethod::Random);
        assert_eq!(TcssConfig::ablation_no_l1().lambda, 0.0);
        assert_eq!(
            TcssConfig::ablation_negative_sampling().loss,
            LossStrategy::NegativeSampling
        );
        assert_eq!(
            TcssConfig::ablation_self_hausdorff().hausdorff,
            HausdorffVariant::SelfHausdorff
        );
        assert_eq!(
            TcssConfig::ablation_zero_out().hausdorff,
            HausdorffVariant::ZeroOut
        );
        // Everything else stays at the paper defaults.
        assert_eq!(TcssConfig::ablation_random_init().rank, 10);
    }

    #[test]
    fn default_and_all_ablations_validate() {
        for cfg in [
            TcssConfig::default(),
            TcssConfig::ablation_random_init(),
            TcssConfig::ablation_onehot_init(),
            TcssConfig::ablation_no_l1(),
            TcssConfig::ablation_negative_sampling(),
            TcssConfig::ablation_self_hausdorff(),
            TcssConfig::ablation_zero_out(),
        ] {
            cfg.validate().expect("stock config must validate");
        }
    }

    /// One rejection case per validated field; the error message must name
    /// the offending field so CLI users can act on it.
    #[test]
    fn validate_rejects_each_bad_field() {
        let base = TcssConfig::default;
        let cases: Vec<(TcssConfig, &str)> = vec![
            (TcssConfig { rank: 0, ..base() }, "rank"),
            (
                TcssConfig {
                    w_plus: 0.0,
                    ..base()
                },
                "w_plus",
            ),
            (
                TcssConfig {
                    w_plus: f64::NAN,
                    ..base()
                },
                "w_plus",
            ),
            (
                TcssConfig {
                    w_minus: -0.1,
                    ..base()
                },
                "w_minus",
            ),
            (
                TcssConfig {
                    lambda: -1.0,
                    ..base()
                },
                "lambda",
            ),
            (
                TcssConfig {
                    lambda: f64::INFINITY,
                    ..base()
                },
                "lambda",
            ),
            (
                TcssConfig {
                    alpha: 0.0,
                    ..base()
                },
                "alpha",
            ),
            (
                TcssConfig {
                    epsilon: 0.0,
                    ..base()
                },
                "epsilon",
            ),
            (
                TcssConfig {
                    learning_rate: 0.0,
                    ..base()
                },
                "learning_rate",
            ),
            (
                TcssConfig {
                    learning_rate: f64::NAN,
                    ..base()
                },
                "learning_rate",
            ),
            (
                TcssConfig {
                    weight_decay: -0.5,
                    ..base()
                },
                "weight_decay",
            ),
            (
                TcssConfig {
                    zero_out_sigma: 0.0,
                    ..base()
                },
                "zero_out_sigma",
            ),
            (
                TcssConfig {
                    hausdorff_candidates: Some(0),
                    ..base()
                },
                "hausdorff_candidates",
            ),
            (
                TcssConfig {
                    hausdorff_every: 0,
                    ..base()
                },
                "hausdorff_every",
            ),
            (
                TcssConfig {
                    num_threads: Some(0),
                    ..base()
                },
                "num_threads",
            ),
            (
                TcssConfig {
                    workers: Some(0),
                    ..base()
                },
                "workers",
            ),
            (
                TcssConfig {
                    checkpoint_every: 0,
                    ..base()
                },
                "checkpoint_every",
            ),
            (
                TcssConfig {
                    workers: Some(2),
                    epochs: 10,
                    checkpoint_every: 50,
                    ..base()
                },
                "checkpoint_every",
            ),
            (
                TcssConfig {
                    max_grad_norm: 0.0,
                    ..base()
                },
                "max_grad_norm",
            ),
            (
                TcssConfig {
                    lr_backoff: 1.0,
                    ..base()
                },
                "lr_backoff",
            ),
            (
                TcssConfig {
                    lr_backoff: 0.0,
                    ..base()
                },
                "lr_backoff",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().expect_err(field);
            assert!(err.contains(field), "error {err:?} should mention {field}");
        }
    }

    #[test]
    fn watchdog_defaults_are_conservative() {
        let c = TcssConfig::default();
        // The explosion threshold must sit far above healthy gradient norms
        // so the watchdog never fires on a normal run.
        assert!(c.max_grad_norm >= 1e9);
        assert!(c.max_retries >= 1);
        assert!(c.lr_backoff > 0.0 && c.lr_backoff < 1.0);
        assert!(c.checkpoint_every >= 1);
        assert!(c.checkpoint_dir.is_none() && c.resume_from.is_none());
    }
}
