//! TCSS hyperparameters and the ablation variant switches of Table II.

/// Embedding initialization method (§IV-A and the Table II ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMethod {
    /// The paper's spectral method: top-r eigenvectors of the off-diagonal
    /// mode Gram matrices (Eq 4).
    Spectral,
    /// Naive uniform random initialization (the CP/Tucker default).
    Random,
    /// One-hot-derived initialization: NCF-style index encoding flattened
    /// into `r` dimensions (row `i` activates coordinate `i mod r`) plus
    /// small noise to break ties.
    OneHot,
}

/// How the least-squares head `L₂` is computed (§IV-D and Table II/IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossStrategy {
    /// The paper's method: whole-data loss rewritten as Eq 15,
    /// `O(nnz·r + (I+J+K)r²)` per epoch.
    WholeDataRewritten,
    /// Whole-data loss computed naively as Eq 14, `O(I·J·K·r)` per epoch.
    /// Only used by the Table IV timing comparison and equivalence tests.
    WholeDataNaive,
    /// Classic negative sampling: per epoch, sample as many unobserved
    /// entries as there are positives and fit squared error on the union.
    NegativeSampling,
}

/// Which Hausdorff regularizer (if any) is used for `L₁` (§IV-C, Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HausdorffVariant {
    /// The paper's social Hausdorff distance: `N(vᵢ)` = POIs visited by
    /// friends, entropy-weighted (Eq 12).
    Social,
    /// Ablation: `N(vᵢ)` = POIs visited by the user themself.
    SelfHausdorff,
    /// Ablation: no `L₁`; at prediction time, discard POIs farther than
    /// `zero_out_sigma · d_max` from the user's nearest visited POI.
    ZeroOut,
    /// Ablation: no `L₁` at all (λ = 0 row of Table II).
    None,
}

/// Full TCSS configuration. `Default` reproduces the paper's §V-D settings
/// (adapted where the paper's value is GPU-scale: see field docs).
#[derive(Debug, Clone)]
pub struct TcssConfig {
    /// Tensor rank / embedding length `r` (paper default: 10).
    pub rank: usize,
    /// Positive-entry weight `w₊`. The paper's default is 0.99; our
    /// synthetic tensors are denser, which moves the optimum to 0.95
    /// (Table III / Fig 8 sweep this).
    pub w_plus: f64,
    /// Unlabeled-entry weight `w₋` (paper: 0.01; see [`TcssConfig::w_plus`]).
    pub w_minus: f64,
    /// Social-Hausdorff weight `λ`. The head normalizes POI distances by
    /// `d_max`, so values here correspond to the paper's raw-kilometre λ
    /// times the map extent (≈1200 km): our 240 ≈ their 0.2; Fig 11 sweeps
    /// this.
    pub lambda: f64,
    /// Generalized-mean exponent `α` (paper default: −1).
    pub alpha: f64,
    /// Division guard `ε` (paper default: 1e-6).
    pub epsilon: f64,
    /// Adam learning rate. The paper uses 0.001 for GPU-scale training over
    /// hundreds of epochs; our default 0.05 converges in ~250 epochs at
    /// laptop scale (the optimizer and loss are unchanged).
    pub learning_rate: f64,
    /// Adam weight decay (paper default: 0.1 at lr 1e-3; at our larger
    /// learning rate any nonzero decay measurably hurts, so the default is
    /// 0 and the Gram term of Eq 15 provides the shrinkage).
    pub weight_decay: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Embedding initialization.
    pub init: InitMethod,
    /// `L₂` computation strategy.
    pub loss: LossStrategy,
    /// `L₁` variant.
    pub hausdorff: HausdorffVariant,
    /// Optional cap on the social-Hausdorff candidate set `S(vᵢ)`:
    /// `None` uses all POIs (exact, fine at laptop scale); `Some(p)` keeps
    /// the `p` POIs with highest predicted visit probability.
    pub hausdorff_candidates: Option<usize>,
    /// Zero-out ablation threshold as a fraction of `d_max` (paper: 1%).
    pub zero_out_sigma: f64,
    /// RNG seed (negative sampling, random init).
    pub seed: u64,
    /// How often (in epochs) to refresh the `L₁` gradient. 1 = every epoch.
    /// The head is the most expensive term; values >1 trade fidelity for
    /// speed and are only used by the large parameter sweeps.
    pub hausdorff_every: usize,
    /// Worker threads for the parallel loss/Hausdorff/linalg kernels.
    /// `None` defers to the `TCSS_NUM_THREADS` environment variable and
    /// then to the machine's available parallelism. Thanks to the
    /// deterministic-reduction contract in `tcss_linalg::parallel`, this
    /// knob changes wall-clock time only — never a single bit of output.
    pub num_threads: Option<usize>,
}

impl Default for TcssConfig {
    fn default() -> Self {
        TcssConfig {
            rank: 10,
            w_plus: 0.95,
            w_minus: 0.05,
            lambda: 240.0,
            alpha: -1.0,
            epsilon: 1e-6,
            learning_rate: 0.05,
            weight_decay: 0.0,
            epochs: 250,
            init: InitMethod::Spectral,
            loss: LossStrategy::WholeDataRewritten,
            hausdorff: HausdorffVariant::Social,
            hausdorff_candidates: None,
            zero_out_sigma: 0.01,
            seed: 7,
            hausdorff_every: 3,
            num_threads: None,
        }
    }
}

impl TcssConfig {
    /// The full-fledged TCSS of the paper.
    pub fn full() -> Self {
        Self::default()
    }

    /// Table II row: random initialization.
    pub fn ablation_random_init() -> Self {
        TcssConfig {
            init: InitMethod::Random,
            ..Self::default()
        }
    }

    /// Table II row: one-hot initialization.
    pub fn ablation_onehot_init() -> Self {
        TcssConfig {
            init: InitMethod::OneHot,
            ..Self::default()
        }
    }

    /// Table II row: remove `L₁` (λ = 0).
    pub fn ablation_no_l1() -> Self {
        TcssConfig {
            lambda: 0.0,
            hausdorff: HausdorffVariant::None,
            ..Self::default()
        }
    }

    /// Table II row: negative sampling instead of whole-data training.
    pub fn ablation_negative_sampling() -> Self {
        TcssConfig {
            loss: LossStrategy::NegativeSampling,
            ..Self::default()
        }
    }

    /// Table II row: self-Hausdorff (no social influence).
    pub fn ablation_self_hausdorff() -> Self {
        TcssConfig {
            hausdorff: HausdorffVariant::SelfHausdorff,
            ..Self::default()
        }
    }

    /// Table II row: zero-out distance filtering instead of `L₁`.
    pub fn ablation_zero_out() -> Self {
        TcssConfig {
            lambda: 0.0,
            hausdorff: HausdorffVariant::ZeroOut,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_hyperparameters() {
        let c = TcssConfig::default();
        assert_eq!(c.rank, 10);
        assert_eq!(c.w_plus, 0.95);
        assert_eq!(c.w_minus, 0.05);
        assert_eq!(c.lambda, 240.0);
        assert_eq!(c.alpha, -1.0);
        assert_eq!(c.epsilon, 1e-6);
        assert_eq!(c.init, InitMethod::Spectral);
        assert_eq!(c.loss, LossStrategy::WholeDataRewritten);
        assert_eq!(c.hausdorff, HausdorffVariant::Social);
    }

    #[test]
    fn ablations_flip_exactly_their_switch() {
        assert_eq!(TcssConfig::ablation_random_init().init, InitMethod::Random);
        assert_eq!(TcssConfig::ablation_no_l1().lambda, 0.0);
        assert_eq!(
            TcssConfig::ablation_negative_sampling().loss,
            LossStrategy::NegativeSampling
        );
        assert_eq!(
            TcssConfig::ablation_self_hausdorff().hausdorff,
            HausdorffVariant::SelfHausdorff
        );
        assert_eq!(
            TcssConfig::ablation_zero_out().hausdorff,
            HausdorffVariant::ZeroOut
        );
        // Everything else stays at the paper defaults.
        assert_eq!(TcssConfig::ablation_random_init().rank, 10);
    }
}
