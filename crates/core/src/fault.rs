//! Deterministic fault injection for the fault-tolerance test suites.
//!
//! Production code never constructs faults; the harness exists so the
//! recovery paths of [`crate::train::TcssTrainer::train_with_faults`] can
//! be driven through real failures in tests instead of being trusted on
//! inspection:
//!
//! * **Poisoned gradients** — at a chosen epoch, every gradient buffer is
//!   overwritten with NaN exactly once, which must trip the divergence
//!   watchdog and trigger a rollback with learning-rate backoff.
//! * **Simulated crash** — reaching a chosen epoch aborts the run with
//!   [`crate::train::TrainError::InjectedCrash`] *before* that epoch's
//!   work, modelling a `kill -9` between epochs; resuming from the last
//!   checkpoint must reproduce the uninterrupted run bit-for-bit.
//! * **File corruption** — [`truncate_file`] and [`flip_byte`] damage
//!   saved checkpoints/models on disk the way a crashed writer or a bad
//!   sector would, and loading must always detect it.
//!
//! Every fault is keyed to a deterministic trigger (an epoch index or a
//! byte offset), so failing tests replay identically.

use crate::loss::Grads;
use std::cell::Cell;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// A schedule of failures to inject into one training run.
///
/// Interior mutability (each trigger is consumed at most once) keeps the
/// trainer API `&self` while letting a poison fire only on its first hit —
/// after the watchdog rolls back, the replayed epoch runs clean, exactly
/// like a transient hardware fault.
#[derive(Debug, Default)]
pub struct FaultPlan {
    poison_at: Cell<Option<usize>>,
    crash_before: Cell<Option<usize>>,
    kill_worker_at: Cell<Option<(usize, usize)>>,
    kill_worker_mid_exchange: Cell<Option<(usize, usize)>>,
}

impl FaultPlan {
    /// No faults: `train_with_faults` with this plan behaves exactly like
    /// `train_with_checkpoints`.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Overwrite the gradients computed at `epoch` with NaN, once.
    pub fn poison_gradients_at(epoch: usize) -> Self {
        FaultPlan {
            poison_at: Cell::new(Some(epoch)),
            ..FaultPlan::default()
        }
    }

    /// Abort with `TrainError::InjectedCrash` immediately before `epoch`
    /// executes (state from epochs `< epoch` is whatever was checkpointed).
    pub fn crash_before_epoch(epoch: usize) -> Self {
        FaultPlan {
            crash_before: Cell::new(Some(epoch)),
            ..FaultPlan::default()
        }
    }

    /// During distributed training ([`crate::dist`]), `SIGKILL` worker
    /// process `worker` immediately before the coordinator dispatches
    /// `epoch`, once. The coordinator must detect the loss, respawn the
    /// worker, roll back to its last checkpoint and still produce the
    /// uninterrupted run's model bit-for-bit.
    pub fn kill_worker_at(epoch: usize, worker: usize) -> Self {
        FaultPlan {
            kill_worker_at: Cell::new(Some((epoch, worker))),
            ..FaultPlan::default()
        }
    }

    /// During **tail-sharded** distributed training
    /// ([`crate::dist::sharded`]), `SIGKILL` worker `worker` in the middle
    /// of `epoch`'s delta exchange — immediately after the coordinator has
    /// relayed the first of that worker's outbound exchange frames, so some
    /// of its row deltas are already in flight to their owners when it
    /// dies, once. Recovery must still land on the uninterrupted run's
    /// exact bits (the plain protocol has no exchange, so this trigger is
    /// inert there).
    pub fn kill_worker_mid_exchange_at(epoch: usize, worker: usize) -> Self {
        FaultPlan {
            kill_worker_mid_exchange: Cell::new(Some((epoch, worker))),
            ..FaultPlan::default()
        }
    }

    /// Consume the mid-exchange kill trigger if it matches `(epoch,
    /// worker)`.
    pub(crate) fn take_kill_mid_exchange(&self, epoch: usize, worker: usize) -> bool {
        match self.kill_worker_mid_exchange.get() {
            Some((at, victim)) if at == epoch && victim == worker => {
                self.kill_worker_mid_exchange.set(None);
                true
            }
            _ => false,
        }
    }

    /// Consume the kill-worker trigger if it matches `epoch`, yielding the
    /// index of the worker to kill.
    pub(crate) fn take_kill_worker(&self, epoch: usize) -> Option<usize> {
        match self.kill_worker_at.get() {
            Some((at, worker)) if at == epoch => {
                self.kill_worker_at.set(None);
                Some(worker)
            }
            _ => None,
        }
    }

    /// Consume the poison trigger if it matches `epoch`.
    pub(crate) fn take_poison(&self, epoch: usize) -> bool {
        if self.poison_at.get() == Some(epoch) {
            self.poison_at.set(None);
            true
        } else {
            false
        }
    }

    /// Consume the crash trigger if it matches `epoch`.
    pub(crate) fn take_crash(&self, epoch: usize) -> bool {
        if self.crash_before.get() == Some(epoch) {
            self.crash_before.set(None);
            true
        } else {
            false
        }
    }
}

/// Overwrite every gradient buffer with NaN (the canonical numerical
/// hazard of the generalized-loss literature: one bad division upstream
/// poisons the whole update).
pub(crate) fn poison(grads: &mut Grads) {
    for m in [&mut grads.u1, &mut grads.u2, &mut grads.u3] {
        for v in m.as_mut_slice() {
            *v = f64::NAN;
        }
    }
    for v in &mut grads.h {
        *v = f64::NAN;
    }
}

/// Truncate the file at `path` to its first `keep` bytes, simulating a
/// writer killed mid-write (or a partially synced file after power loss).
pub fn truncate_file(path: &Path, keep: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    f.sync_all()
}

/// XOR the byte at `offset` with `mask` (must be nonzero to actually
/// change the file), simulating a flipped bit from a bad disk or memory.
pub fn flip_byte(path: &Path, offset: u64, mask: u8) -> std::io::Result<()> {
    assert_ne!(mask, 0, "a zero mask would not corrupt anything");
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut byte)?;
    byte[0] ^= mask;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_exactly_once() {
        let plan = FaultPlan::poison_gradients_at(3);
        assert!(!plan.take_poison(2));
        assert!(plan.take_poison(3));
        assert!(!plan.take_poison(3), "poison must be consumed");
        let plan = FaultPlan::crash_before_epoch(5);
        assert!(!plan.take_crash(4));
        assert!(plan.take_crash(5));
        assert!(!plan.take_crash(5), "crash must be consumed");
        let plan = FaultPlan::kill_worker_at(2, 1);
        assert_eq!(plan.take_kill_worker(1), None);
        assert_eq!(plan.take_kill_worker(2), Some(1));
        assert_eq!(plan.take_kill_worker(2), None, "kill must be consumed");
        let plan = FaultPlan::kill_worker_mid_exchange_at(2, 1);
        assert!(!plan.take_kill_mid_exchange(1, 1));
        assert!(
            !plan.take_kill_mid_exchange(2, 0),
            "wrong victim must not fire"
        );
        assert!(plan.take_kill_mid_exchange(2, 1));
        assert!(!plan.take_kill_mid_exchange(2, 1), "kill must be consumed");
    }

    #[test]
    fn file_corruption_helpers_do_what_they_say() {
        let dir = std::env::temp_dir().join("tcss_fault_helpers");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.txt");
        std::fs::write(&path, "hello checkpoint").unwrap();
        truncate_file(&path, 5).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        flip_byte(&path, 0, 0x20).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "Hello");
        std::fs::remove_file(&path).ok();
    }
}
