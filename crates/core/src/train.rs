//! Joint training: `L = λ·L₁ + L₂` with Adam (paper Eq 20, §V-D).

use crate::config::{HausdorffVariant, InitMethod, LossStrategy, TcssConfig};
use crate::hausdorff::SocialHausdorffHead;
use crate::init::{onehot_init, random_init, spectral_init};
use crate::loss::{negative_sampling_loss_and_grad, rewritten_loss_and_grad, Grads};
use crate::model::TcssModel;
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_geo::WeightedHausdorffParams;
use tcss_sparse::SparseTensor3;

/// Adam state over a [`Grads`]-shaped parameter space.
struct AdamState {
    m: Grads,
    v: Grads,
    t: u64,
}

impl AdamState {
    fn new(model: &TcssModel) -> Self {
        AdamState {
            m: Grads::zeros(model),
            v: Grads::zeros(model),
            t: 0,
        }
    }

    fn step(&mut self, model: &mut TcssModel, grads: &Grads, lr: f64, weight_decay: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        let update = |w: &mut [f64], g: &[f64], m: &mut [f64], v: &mut [f64]| {
            for idx in 0..w.len() {
                m[idx] = B1 * m[idx] + (1.0 - B1) * g[idx];
                v[idx] = B2 * v[idx] + (1.0 - B2) * g[idx] * g[idx];
                let mhat = m[idx] / bc1;
                let vhat = v[idx] / bc2;
                w[idx] -= lr * (mhat / (vhat.sqrt() + EPS) + weight_decay * w[idx]);
            }
        };
        update(
            model.u1.as_mut_slice(),
            grads.u1.as_slice(),
            self.m.u1.as_mut_slice(),
            self.v.u1.as_mut_slice(),
        );
        update(
            model.u2.as_mut_slice(),
            grads.u2.as_slice(),
            self.m.u2.as_mut_slice(),
            self.v.u2.as_mut_slice(),
        );
        update(
            model.u3.as_mut_slice(),
            grads.u3.as_slice(),
            self.m.u3.as_mut_slice(),
            self.v.u3.as_mut_slice(),
        );
        update(&mut model.h, &grads.h, &mut self.m.h, &mut self.v.h);
    }
}

/// Everything needed to train a TCSS model on one dataset split.
pub struct TcssTrainer {
    /// Training tensor (binary).
    pub tensor: SparseTensor3,
    /// Head for `L₁`, present for the Social/SelfHausdorff variants.
    head: Option<SocialHausdorffHead>,
    /// Per-user allowed-POI mask for the ZeroOut ablation (`None` for other
    /// variants): POIs farther than `σ·d_max` from the user's nearest
    /// *visited* POI are excluded at recommendation time.
    zero_out_allowed: Option<Vec<Vec<bool>>>,
    /// Configuration.
    pub config: TcssConfig,
}

/// Context handed to per-epoch callbacks.
#[derive(Debug, Clone, Copy)]
pub struct TrainContext {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// `L₂` value this epoch (rewritten form, constant omitted).
    pub l2: f64,
    /// `L₁` value this epoch (0 when the head is disabled).
    pub l1: f64,
}

impl TcssTrainer {
    /// Assemble a trainer from a dataset, its training check-ins and a
    /// granularity.
    pub fn new(
        data: &Dataset,
        train: &[CheckIn],
        granularity: Granularity,
        config: TcssConfig,
    ) -> Self {
        let tensor = data.tensor_from(train, granularity);
        let head = match config.hausdorff {
            HausdorffVariant::Social | HausdorffVariant::SelfHausdorff => {
                Some(SocialHausdorffHead::new(
                    data,
                    train,
                    config.hausdorff,
                    WeightedHausdorffParams {
                        alpha: config.alpha,
                        epsilon: config.epsilon,
                        floor: 1e-9,
                    },
                    config.hausdorff_candidates,
                ))
            }
            _ => None,
        };
        let zero_out_allowed = (config.hausdorff == HausdorffVariant::ZeroOut).then(|| {
            let dist = data.distance_matrix();
            let sigma_km = config.zero_out_sigma * dist.max_distance();
            let mut visited: Vec<Vec<usize>> = vec![Vec::new(); data.n_users];
            for c in train {
                visited[c.user].push(c.poi);
            }
            (0..data.n_users)
                .map(|u| {
                    (0..data.n_pois())
                        .map(|j| {
                            dist.min_to_set(j, &visited[u])
                                .is_none_or(|d| d <= sigma_km)
                        })
                        .collect()
                })
                .collect()
        });
        TcssTrainer {
            tensor,
            head,
            zero_out_allowed,
            config,
        }
    }

    /// Initialize the factor matrices per the configured method.
    pub fn init_model(&self) -> TcssModel {
        let dims = self.tensor.dims();
        let r = self.config.rank;
        let max_r = dims.0.min(dims.1).min(dims.2);
        assert!(
            r <= max_r,
            "rank {r} exceeds the smallest tensor dimension {max_r} \
             (the paper notes the same cap: r ≤ K at month granularity)"
        );
        let (u1, u2, u3) = match self.config.init {
            InitMethod::Spectral => spectral_init(&self.tensor, r, self.config.seed),
            InitMethod::Random => random_init(dims, r, self.config.seed),
            InitMethod::OneHot => onehot_init(dims, r, self.config.seed),
        };
        // Note: `init::solve_h` can put `h` at the exact L₂ optimum for the
        // spectral factors, but empirically the h = 1 (CP-like) start lands
        // in a better basin after full training, so all variants share it.
        TcssModel::new(u1, u2, u3)
    }

    /// Train a freshly-initialized model. The callback observes each epoch.
    pub fn train(&self, mut on_epoch: impl FnMut(usize, f64)) -> TcssModel {
        self.train_detailed(|ctx| on_epoch(ctx.epoch, ctx.l1 * self.config.lambda + ctx.l2))
    }

    /// Train with a detailed per-epoch callback.
    pub fn train_detailed(&self, mut on_epoch: impl FnMut(TrainContext)) -> TcssModel {
        let mut model = self.init_model();
        self.train_model(&mut model, &mut on_epoch);
        model
    }

    /// Train an externally-initialized model in place (used by the Fig 9
    /// convergence study to compare initializations under identical loops).
    pub fn train_model(&self, model: &mut TcssModel, on_epoch: &mut impl FnMut(TrainContext)) {
        let cfg = &self.config;
        if cfg.num_threads.is_some() {
            // Pin the worker count for the loss/Hausdorff/linalg kernels.
            // Deterministic reduction means this is purely a speed knob.
            tcss_linalg::set_num_threads(cfg.num_threads);
        }
        let mut adam = AdamState::new(model);
        for epoch in 0..cfg.epochs {
            let (l2, mut grads) = match cfg.loss {
                LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive => {
                    // The naive strategy optimizes the same objective; the
                    // rewritten gradient is exact for it (Remark 1), so the
                    // timing experiment measures only the *loss evaluation*.
                    rewritten_loss_and_grad(model, self.tensor.entries(), cfg.w_plus, cfg.w_minus)
                }
                LossStrategy::NegativeSampling => negative_sampling_loss_and_grad(
                    model,
                    &self.tensor,
                    cfg.w_plus,
                    cfg.w_minus,
                    cfg.seed.wrapping_add(epoch as u64),
                ),
            };
            let mut l1 = 0.0;
            if let Some(head) = &self.head {
                if cfg.lambda > 0.0 && epoch % cfg.hausdorff_every == 0 {
                    l1 = head.loss_and_grad(model, &mut grads, cfg.lambda);
                }
            }
            adam.step(model, &grads, cfg.learning_rate, cfg.weight_decay);
            on_epoch(TrainContext { epoch, l2, l1 });
        }
    }

    /// Score function for ranking, applying the ZeroOut mask when that
    /// ablation is active (masked POIs score `−∞`).
    pub fn score_fn<'a>(
        &'a self,
        model: &'a TcssModel,
    ) -> impl Fn(usize, usize, usize) -> f64 + 'a {
        move |i, j, k| {
            if let Some(mask) = &self.zero_out_allowed {
                if !mask[i][j] {
                    return f64::NEG_INFINITY;
                }
            }
            model.predict(i, j, k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, SynthPreset};

    fn small_setup(config: TcssConfig) -> (Dataset, Vec<CheckIn>, TcssTrainer) {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
        let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, config);
        (data, split.train, trainer)
    }

    #[test]
    fn loss_decreases_over_training() {
        let cfg = TcssConfig {
            epochs: 15,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut losses = Vec::new();
        let _model = trainer.train_detailed(|ctx| losses.push(ctx.l2 + 0.1 * ctx.l1));
        assert_eq!(losses.len(), 15);
        assert!(
            losses[14] < losses[0],
            "loss should decrease: {} → {}",
            losses[0],
            losses[14]
        );
    }

    #[test]
    fn trained_model_separates_positives_from_negatives() {
        let cfg = TcssConfig {
            epochs: 40,
            ..TcssConfig::default()
        };
        let (_, train, trainer) = small_setup(cfg);
        let model = trainer.train(|_, _| {});
        // Average score on train positives must exceed random cells.
        let mut pos = 0.0;
        let mut n_pos = 0.0;
        for c in train.iter().take(300) {
            pos += model.predict(c.user, c.poi, c.month as usize);
            n_pos += 1.0;
        }
        pos /= n_pos;
        let (i_dim, j_dim, k_dim) = trainer.tensor.dims();
        let mut neg = 0.0;
        let mut n_neg = 0.0;
        for s in 0..300 {
            let (i, j, k) = ((s * 13) % i_dim, (s * 7) % j_dim, (s * 5) % k_dim);
            if !trainer.tensor.contains(i, j, k) {
                neg += model.predict(i, j, k);
                n_neg += 1.0;
            }
        }
        neg /= n_neg;
        assert!(
            pos > neg + 0.1,
            "positives {pos} should clearly exceed negatives {neg}"
        );
    }

    #[test]
    fn zero_out_masks_far_pois() {
        let cfg = TcssConfig {
            epochs: 2,
            ..TcssConfig::ablation_zero_out()
        };
        let (_, _, trainer) = small_setup(cfg);
        assert!(trainer.zero_out_allowed.is_some());
        let model = trainer.train(|_, _| {});
        let score = trainer.score_fn(&model);
        // At least one (user, poi) pair must be masked to −∞ and at least
        // one allowed.
        let mask = trainer.zero_out_allowed.as_ref().unwrap();
        let mut masked = 0;
        let mut allowed = 0;
        for (u, row) in mask.iter().enumerate() {
            for (j, &ok) in row.iter().enumerate() {
                if ok {
                    allowed += 1;
                    assert!(score(u, j, 0).is_finite());
                } else {
                    masked += 1;
                    assert_eq!(score(u, j, 0), f64::NEG_INFINITY);
                }
            }
        }
        assert!(masked > 0, "zero-out mask masked nothing");
        assert!(allowed > 0);
    }

    #[test]
    fn negative_sampling_strategy_trains() {
        let cfg = TcssConfig {
            epochs: 10,
            ..TcssConfig::ablation_negative_sampling()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        trainer.train_detailed(|ctx| {
            if ctx.epoch == 0 {
                first = ctx.l2;
            }
            last = ctx.l2;
        });
        assert!(
            last < first,
            "negative-sampling loss should fall: {first} → {last}"
        );
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn oversized_rank_is_rejected() {
        let cfg = TcssConfig {
            rank: 13, // > K = 12
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let _ = trainer.init_model();
    }

    #[test]
    fn hausdorff_every_skips_epochs() {
        let cfg = TcssConfig {
            epochs: 4,
            hausdorff_every: 2,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut l1s = Vec::new();
        trainer.train_detailed(|ctx| l1s.push(ctx.l1));
        assert!(l1s[0] > 0.0);
        assert_eq!(l1s[1], 0.0);
        assert!(l1s[2] > 0.0);
        assert_eq!(l1s[3], 0.0);
    }
}
