//! Joint training: `L = λ·L₁ + L₂` with Adam (paper Eq 20, §V-D).
//!
//! Two training entry points share one epoch kernel:
//!
//! * [`TcssTrainer::train`] / [`TcssTrainer::train_detailed`] — the plain
//!   loop, unchanged semantics.
//! * [`TcssTrainer::train_with_checkpoints`] — the fault-tolerant runtime:
//!   atomic versioned checkpoints (see [`crate::checkpoint`]), resume via
//!   `TcssConfig::resume_from` with a bit-for-bit identity guarantee, and
//!   a divergence watchdog that rolls back to the last good state with
//!   learning-rate backoff instead of emitting garbage factors.

use crate::checkpoint::{
    config_fingerprint, load_checkpoint, save_checkpoint, Checkpoint, CHECKPOINT_FILE,
};
use crate::config::{HausdorffVariant, InitMethod, LossStrategy, TcssConfig};
use crate::dist::DistError;
use crate::fault::{poison, FaultPlan};
use crate::hausdorff::SocialHausdorffHead;
use crate::init::{onehot_init, random_init, spectral_init};
use crate::loss::{negative_sampling_loss_and_grad_ws, rewritten_entry_loss_ws, Grads};
use crate::model::TcssModel;
use crate::model_io::ModelIoError;
use crate::workspace::TrainWorkspace;
use tcss_data::{CheckIn, Dataset, Granularity};
use tcss_geo::WeightedHausdorffParams;
use tcss_linalg::kernels;
use tcss_sparse::SparseTensor3;

/// Typed failures from the fault-tolerant training runtime.
#[derive(Debug)]
pub enum TrainError {
    /// A config or dimension precondition failed before training started.
    InvalidConfig(String),
    /// The divergence watchdog exhausted its retry budget.
    Diverged {
        /// Epoch at which the final rejected update was produced.
        epoch: usize,
        /// Rollbacks consumed (equals `TcssConfig::max_retries` + 1 hits).
        retries: u32,
        /// What tripped the watchdog (NaN loss, gradient explosion, …).
        detail: String,
    },
    /// Reading or writing a checkpoint failed (I/O or corruption).
    Checkpoint(ModelIoError),
    /// A simulated crash injected by a [`FaultPlan`] (tests only).
    InjectedCrash {
        /// Epoch the crash pre-empted.
        epoch: usize,
    },
    /// The distributed-training runtime failed (worker spawn/loss beyond
    /// the respawn budget, transport corruption, protocol violation).
    Dist(DistError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TrainError::Diverged {
                epoch,
                retries,
                detail,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {retries} rollback(s): {detail}"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::InjectedCrash { epoch } => {
                write!(f, "injected crash before epoch {epoch}")
            }
            TrainError::Dist(e) => write!(f, "distributed training error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<ModelIoError> for TrainError {
    fn from(e: ModelIoError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<DistError> for TrainError {
    fn from(e: DistError) -> Self {
        TrainError::Dist(e)
    }
}

/// Outcome of a fault-tolerant training run.
#[derive(Debug)]
pub struct TrainReport {
    /// The trained model.
    pub model: TcssModel,
    /// Epoch the run started from (0 for a fresh run, the checkpoint's
    /// cursor when resumed).
    pub start_epoch: usize,
    /// Watchdog rollbacks consumed over the whole run (including any
    /// recorded in a resumed checkpoint).
    pub rollbacks: u32,
    /// Final learning-rate multiplier after backoff (1.0 if the watchdog
    /// never fired).
    pub lr_scale: f64,
}

/// Adam state over a [`Grads`]-shaped parameter space. `pub(crate)` so the
/// distributed coordinator ([`crate::dist`]) can run the exact same
/// optimizer over worker-gathered gradients.
#[derive(Clone)]
pub(crate) struct AdamState {
    pub(crate) m: Grads,
    pub(crate) v: Grads,
    pub(crate) t: u64,
}

impl AdamState {
    pub(crate) fn new(model: &TcssModel) -> Self {
        AdamState {
            m: Grads::zeros(model),
            v: Grads::zeros(model),
            t: 0,
        }
    }

    pub(crate) fn step(
        &mut self,
        model: &mut TcssModel,
        grads: &Grads,
        lr: f64,
        weight_decay: f64,
    ) {
        self.t += 1;
        let p = kernels::AdamParams::for_step(lr, weight_decay, self.t);
        kernels::adam_update(
            model.u1.as_mut_slice(),
            grads.u1.as_slice(),
            self.m.u1.as_mut_slice(),
            self.v.u1.as_mut_slice(),
            &p,
        );
        kernels::adam_update(
            model.u2.as_mut_slice(),
            grads.u2.as_slice(),
            self.m.u2.as_mut_slice(),
            self.v.u2.as_mut_slice(),
            &p,
        );
        kernels::adam_update(
            model.u3.as_mut_slice(),
            grads.u3.as_slice(),
            self.m.u3.as_mut_slice(),
            self.v.u3.as_mut_slice(),
            &p,
        );
        kernels::adam_update(&mut model.h, &grads.h, &mut self.m.h, &mut self.v.h, &p);
    }
}

/// Everything needed to train a TCSS model on one dataset split.
pub struct TcssTrainer {
    /// Training tensor (binary).
    pub tensor: SparseTensor3,
    /// Head for `L₁`, present for the Social/SelfHausdorff variants.
    /// `pub(crate)`: the distributed coordinator evaluates the head
    /// locally (it is not sharded across workers).
    pub(crate) head: Option<SocialHausdorffHead>,
    /// Per-user allowed-POI mask for the ZeroOut ablation (`None` for other
    /// variants): POIs farther than `σ·d_max` from the user's nearest
    /// *visited* POI are excluded at recommendation time.
    zero_out_allowed: Option<Vec<Vec<bool>>>,
    /// Configuration.
    pub config: TcssConfig,
}

/// Context handed to per-epoch callbacks.
#[derive(Debug, Clone, Copy)]
pub struct TrainContext {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// `L₂` value this epoch (rewritten form, constant omitted).
    pub l2: f64,
    /// `L₁` value this epoch (0 when the head is disabled).
    pub l1: f64,
    /// Bytes the distributed coordinator wrote to worker sockets during
    /// this epoch (0 for in-process training).
    pub bytes_sent: u64,
    /// Bytes the distributed coordinator read from worker sockets during
    /// this epoch (0 for in-process training).
    pub bytes_received: u64,
}

impl TrainContext {
    /// An in-process epoch context (no socket traffic).
    pub(crate) fn local(epoch: usize, l2: f64, l1: f64) -> Self {
        TrainContext {
            epoch,
            l2,
            l1,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }
}

impl TcssTrainer {
    /// Assemble a trainer from a dataset, its training check-ins and a
    /// granularity.
    pub fn new(
        data: &Dataset,
        train: &[CheckIn],
        granularity: Granularity,
        config: TcssConfig,
    ) -> Self {
        let tensor = data.tensor_from(train, granularity);
        let head = match config.hausdorff {
            HausdorffVariant::Social | HausdorffVariant::SelfHausdorff => {
                Some(SocialHausdorffHead::new(
                    data,
                    train,
                    config.hausdorff,
                    WeightedHausdorffParams {
                        alpha: config.alpha,
                        epsilon: config.epsilon,
                        floor: 1e-9,
                    },
                    config.hausdorff_candidates,
                ))
            }
            _ => None,
        };
        let zero_out_allowed = (config.hausdorff == HausdorffVariant::ZeroOut).then(|| {
            let dist = data.distance_matrix();
            let sigma_km = config.zero_out_sigma * dist.max_distance();
            let mut visited: Vec<Vec<usize>> = vec![Vec::new(); data.n_users];
            for c in train {
                visited[c.user].push(c.poi);
            }
            (0..data.n_users)
                .map(|u| {
                    (0..data.n_pois())
                        .map(|j| {
                            dist.min_to_set(j, &visited[u])
                                .is_none_or(|d| d <= sigma_km)
                        })
                        .collect()
                })
                .collect()
        });
        TcssTrainer {
            tensor,
            head,
            zero_out_allowed,
            config,
        }
    }

    /// Assemble a trainer over a bare tensor, with no LBSN side
    /// information: the Hausdorff head and the zero-out mask are disabled
    /// regardless of `config.hausdorff` (there is no social graph or
    /// distance matrix to build them from). Used by the parity/property
    /// suites and benches that train on synthetic tensors directly.
    pub fn from_tensor(tensor: SparseTensor3, config: TcssConfig) -> Self {
        TcssTrainer {
            tensor,
            head: None,
            zero_out_allowed: None,
            config,
        }
    }

    /// Validate the configuration against this trainer's tensor: every
    /// field-domain check of [`TcssConfig::validate`] plus the rank/dims
    /// cap the paper notes (r ≤ K at month granularity).
    pub fn validate(&self) -> Result<(), TrainError> {
        self.config.validate().map_err(TrainError::InvalidConfig)?;
        let dims = self.tensor.dims();
        let r = self.config.rank;
        let max_r = dims.0.min(dims.1).min(dims.2);
        if r > max_r {
            return Err(TrainError::InvalidConfig(format!(
                "rank {r} exceeds the smallest tensor dimension {max_r} \
                 (the paper notes the same cap: r ≤ K at month granularity)"
            )));
        }
        Ok(())
    }

    /// Fallible [`TcssTrainer::init_model`]: initialize the factor
    /// matrices per the configured method, reporting bad config/dimension
    /// combinations as a typed error instead of a panic.
    pub fn try_init_model(&self) -> Result<TcssModel, TrainError> {
        self.validate()?;
        let dims = self.tensor.dims();
        let r = self.config.rank;
        let (u1, u2, u3) = match self.config.init {
            InitMethod::Spectral => spectral_init(&self.tensor, r, self.config.seed),
            InitMethod::Random => random_init(dims, r, self.config.seed),
            InitMethod::OneHot => onehot_init(dims, r, self.config.seed),
        };
        // Note: `init::solve_h` can put `h` at the exact L₂ optimum for the
        // spectral factors, but empirically the h = 1 (CP-like) start lands
        // in a better basin after full training, so all variants share it.
        Ok(TcssModel::new(u1, u2, u3))
    }

    /// Initialize the factor matrices per the configured method.
    ///
    /// Panics on an invalid configuration; use
    /// [`TcssTrainer::try_init_model`] for a `Result`.
    pub fn init_model(&self) -> TcssModel {
        self.try_init_model().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Train a freshly-initialized model. The callback observes each epoch.
    pub fn train(&self, mut on_epoch: impl FnMut(usize, f64)) -> TcssModel {
        self.train_detailed(|ctx| on_epoch(ctx.epoch, ctx.l1 * self.config.lambda + ctx.l2))
    }

    /// Train with a detailed per-epoch callback.
    pub fn train_detailed(&self, mut on_epoch: impl FnMut(TrainContext)) -> TcssModel {
        let mut model = self.init_model();
        self.train_model(&mut model, &mut on_epoch);
        model
    }

    /// One epoch's losses and joint gradient — the kernel shared by every
    /// training loop, so the plain and checkpointed paths cannot drift
    /// apart numerically. Zeroes and refills the caller's `grads` buffer
    /// (and the `tail` scratch buffer); all other scratch comes from `ws`,
    /// so steady-state epochs allocate nothing.
    ///
    /// The epoch's gradient is assembled in the **canonical two-phase
    /// order** the distributed layer mirrors: the entry-chunk deltas
    /// scatter into `grads` first (ascending global chunk order), the
    /// epoch tail — whole-data Gram term plus Hausdorff head — accumulates
    /// into the separate `tail` buffer, and `tail` is then added into
    /// `grads` **once per element** (skipped entirely on epochs where the
    /// tail is inactive, so a quiet tail cannot perturb signed zeros).
    /// Tail-sharded workers replay exactly this sequence on their owned
    /// row ranges, which is what makes their bits equal these.
    fn epoch_grads(
        &self,
        model: &TcssModel,
        epoch: usize,
        ws: &TrainWorkspace,
        grads: &mut Grads,
        tail: &mut Grads,
    ) -> (f64, f64) {
        let cfg = &self.config;
        grads.set_zero();
        let mut l2 = match cfg.loss {
            LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive => {
                // The naive strategy optimizes the same objective; the
                // rewritten gradient is exact for it (Remark 1), so the
                // timing experiment measures only the *loss evaluation*.
                rewritten_entry_loss_ws(
                    model,
                    self.tensor.entries(),
                    cfg.w_plus,
                    cfg.w_minus,
                    ws,
                    grads,
                )
            }
            LossStrategy::NegativeSampling => negative_sampling_loss_and_grad_ws(
                model,
                &self.tensor,
                cfg.w_plus,
                cfg.w_minus,
                cfg.seed.wrapping_add(epoch as u64),
                ws,
                grads,
            ),
        };
        let l1 = self.epoch_tail_into(model, epoch, ws, tail, &mut l2);
        if self.tail_active(epoch) {
            grads.add_scaled(1.0, tail);
        }
        (l2, l1)
    }

    /// Does epoch `epoch` have an active gradient tail? True when the loss
    /// carries the whole-data Gram term and/or the Hausdorff head is due.
    /// When false, [`TcssTrainer::epoch_tail_into`] leaves `tail` zeroed
    /// and the caller must skip the tail add entirely — `x + 0.0` is not
    /// always a bitwise no-op (`-0.0 + 0.0 = +0.0`), so "inactive" has to
    /// mean *no add*, identically in-process and distributed.
    pub(crate) fn tail_active(&self, epoch: usize) -> bool {
        let cfg = &self.config;
        matches!(
            cfg.loss,
            LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive
        ) || (self.head.is_some() && cfg.lambda > 0.0 && epoch.is_multiple_of(cfg.hausdorff_every))
    }

    /// The epoch's gradient tail — whole-data Gram term (Eq 15; skipped
    /// for negative sampling, exactly as in the in-process losses) and the
    /// Hausdorff head — accumulated into the zeroed `tail` buffer, with
    /// the Gram loss added into `l2`. Returns `L₁`.
    ///
    /// Shared by the in-process path ([`TcssTrainer::epoch_grads`]) and
    /// both distributed coordinators: the plain mode adds `tail` into its
    /// merged gradient whole, the tail-sharded mode ships each worker its
    /// owned row ranges of `tail` instead. Same calls in the same order
    /// everywhere, so the distributed epoch is bit-identical by
    /// construction.
    pub(crate) fn epoch_tail_into(
        &self,
        model: &TcssModel,
        epoch: usize,
        ws: &TrainWorkspace,
        tail: &mut Grads,
        l2: &mut f64,
    ) -> f64 {
        let cfg = &self.config;
        tail.set_zero();
        if matches!(
            cfg.loss,
            LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive
        ) {
            crate::loss::whole_data_term(model, cfg.w_minus, l2, tail);
        }
        let mut l1 = 0.0;
        if let Some(head) = &self.head {
            if cfg.lambda > 0.0 && epoch.is_multiple_of(cfg.hausdorff_every) {
                l1 = head.loss_and_grad_ws(model, tail, cfg.lambda, ws);
            }
        }
        l1
    }

    /// [`TcssTrainer::epoch_tail_into`] with the Gram loss contributions
    /// *recorded* into `loss_terms` instead of added into `l2` — the
    /// tail-sharded coordinator computes the tail concurrently with worker
    /// chunk evaluation, before the chunk-loss fold exists, then replays
    /// `l2 += term` in order afterwards. The add sequence on the loss
    /// accumulator is identical either way (the gradient side is the same
    /// code), so overlap cannot change a bit.
    pub(crate) fn epoch_tail_deferred(
        &self,
        model: &TcssModel,
        epoch: usize,
        ws: &TrainWorkspace,
        tail: &mut Grads,
        loss_terms: &mut Vec<f64>,
    ) -> f64 {
        let cfg = &self.config;
        tail.set_zero();
        loss_terms.clear();
        if matches!(
            cfg.loss,
            LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive
        ) {
            crate::loss::whole_data_term_sink(
                model,
                cfg.w_minus,
                &mut |t| loss_terms.push(t),
                tail,
            );
        }
        let mut l1 = 0.0;
        if let Some(head) = &self.head {
            if cfg.lambda > 0.0 && epoch.is_multiple_of(cfg.hausdorff_every) {
                l1 = head.loss_and_grad_ws(model, tail, cfg.lambda, ws);
            }
        }
        l1
    }

    /// Is epoch `epoch`'s tail the whole-data Gram term *alone* — no
    /// Hausdorff head due? Then the tail's factor gradients are exactly
    /// `2·U^f·D^f` for three `r × r` matrices, and the tail-sharded
    /// coordinator broadcasts the D matrices ([`TcssTrainer::epoch_tail_gram`])
    /// instead of dense owned tail rows. Head epochs fall back to the
    /// dense-row ship: the Hausdorff gradient has no such factorization.
    pub(crate) fn tail_gram_only(&self, epoch: usize) -> bool {
        let cfg = &self.config;
        matches!(
            cfg.loss,
            LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive
        ) && !(self.head.is_some() && cfg.lambda > 0.0 && epoch.is_multiple_of(cfg.hausdorff_every))
    }

    /// Gram-mode deferred tail ([`TcssTrainer::tail_gram_only`] epochs):
    /// the three `D` matrices, the recorded Gram loss terms, and the tail
    /// `h` gradient — everything [`TcssTrainer::epoch_tail_deferred`]
    /// produces except the dense factor rows, which each worker rebuilds
    /// locally as `2·U^f·D^f` over its owned range. Same underlying calls
    /// in the same order ([`crate::loss::whole_data_gram_mats`] is the
    /// shared core), so the floats cannot diverge from the dense path.
    pub(crate) fn epoch_tail_gram(
        &self,
        model: &TcssModel,
        loss_terms: &mut Vec<f64>,
        tail_h: &mut Vec<f64>,
    ) -> [tcss_linalg::Matrix; 3] {
        loss_terms.clear();
        tail_h.clear();
        tail_h.resize(model.rank(), 0.0);
        crate::loss::whole_data_gram_mats(
            model,
            self.config.w_minus,
            &mut |t| loss_terms.push(t),
            tail_h,
        )
    }

    /// Fresh-start-or-resume initialization shared by the in-process and
    /// distributed checkpointed loops: returns
    /// `(model, adam, start_epoch, lr_scale, retries)`.
    pub(crate) fn init_run_state(
        &self,
        fingerprint: u64,
    ) -> Result<(TcssModel, AdamState, usize, f64, u32), TrainError> {
        match &self.config.resume_from {
            Some(path) => {
                let ck = load_checkpoint(path)?;
                if ck.fingerprint != fingerprint {
                    return Err(TrainError::InvalidConfig(format!(
                        "checkpoint {} was written under a different \
                             training configuration (fingerprint {:016x}, \
                             expected {fingerprint:016x}); refusing to mix \
                             trajectories",
                        path.display(),
                        ck.fingerprint
                    )));
                }
                if ck.model.dims() != self.tensor.dims() {
                    return Err(TrainError::InvalidConfig(format!(
                        "checkpoint model dims {:?} do not match the \
                             training tensor {:?}",
                        ck.model.dims(),
                        self.tensor.dims()
                    )));
                }
                let adam = AdamState {
                    m: ck.m,
                    v: ck.v,
                    t: ck.adam_t,
                };
                Ok((ck.model, adam, ck.epoch, ck.lr_scale, ck.retries))
            }
            None => {
                let model = self.try_init_model()?;
                let adam = AdamState::new(&model);
                Ok((model, adam, 0, 1.0, 0))
            }
        }
    }

    /// Train an externally-initialized model in place (used by the Fig 9
    /// convergence study to compare initializations under identical loops).
    pub fn train_model(&self, model: &mut TcssModel, on_epoch: &mut impl FnMut(TrainContext)) {
        let cfg = &self.config;
        if cfg.num_threads.is_some() {
            // Pin the worker count for the loss/Hausdorff/linalg kernels.
            // Deterministic reduction means this is purely a speed knob.
            tcss_linalg::set_num_threads(cfg.num_threads);
        }
        let mut adam = AdamState::new(model);
        let ws = TrainWorkspace::new();
        let mut grads = Grads::zeros(model);
        let mut tail = Grads::zeros(model);
        for epoch in 0..cfg.epochs {
            let (l2, l1) = self.epoch_grads(model, epoch, &ws, &mut grads, &mut tail);
            adam.step(model, &grads, cfg.learning_rate, cfg.weight_decay);
            on_epoch(TrainContext::local(epoch, l2, l1));
        }
    }

    /// Fault-tolerant training: checkpoints, resume, and the divergence
    /// watchdog. See [`TcssTrainer::train_with_faults`]; this entry point
    /// simply injects no faults.
    ///
    /// Guarantees, verified by `tests/fault_injection.rs`:
    ///
    /// * With no faults and no resume, the returned model is bit-for-bit
    ///   identical to [`TcssTrainer::train`]'s.
    /// * A run killed at any epoch and resumed from its last checkpoint
    ///   produces a model bit-for-bit identical to an uninterrupted run,
    ///   at any thread count.
    /// * A non-finite or exploding epoch never reaches the factors: the
    ///   watchdog rolls back to the last good state, scales the learning
    ///   rate by `lr_backoff`, and after `max_retries` rollbacks returns
    ///   [`TrainError::Diverged`] instead of silently-garbage factors.
    pub fn train_with_checkpoints(
        &self,
        on_epoch: impl FnMut(TrainContext),
    ) -> Result<TrainReport, TrainError> {
        self.train_with_faults(&FaultPlan::none(), on_epoch)
    }

    /// [`TcssTrainer::train_with_checkpoints`] with a deterministic
    /// [`FaultPlan`] — the fault-injection harness entry point used by the
    /// recovery test suites. Production callers pass [`FaultPlan::none`]
    /// (or call `train_with_checkpoints`).
    ///
    /// The per-epoch callback may observe the same epoch index more than
    /// once: after a watchdog rollback, epochs replay from the last good
    /// snapshot.
    pub fn train_with_faults(
        &self,
        faults: &FaultPlan,
        mut on_epoch: impl FnMut(TrainContext),
    ) -> Result<TrainReport, TrainError> {
        let cfg = &self.config;
        self.validate()?;
        if cfg.num_threads.is_some() {
            tcss_linalg::set_num_threads(cfg.num_threads);
        }
        let fingerprint = config_fingerprint(cfg);

        // --- Fresh start or resume ---------------------------------------
        let (mut model, mut adam, start_epoch, mut lr_scale, mut retries) =
            self.init_run_state(fingerprint)?;

        // Last state known to be healthy; the rollback target. Starts at
        // the initial (or resumed) state and is refreshed on the
        // checkpoint cadence, after the watchdog has accepted the epochs
        // leading up to it.
        let mut last_good = (model.clone(), adam.clone(), start_epoch);
        let checkpoint_path = cfg
            .checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(CHECKPOINT_FILE));
        if let Some(dir) = &cfg.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| TrainError::Checkpoint(ModelIoError::Fs(e)))?;
        }

        let ws = TrainWorkspace::new();
        let mut grads = Grads::zeros(&model);
        let mut tail = Grads::zeros(&model);
        let mut epoch = start_epoch;
        while epoch < cfg.epochs {
            if faults.take_crash(epoch) {
                return Err(TrainError::InjectedCrash { epoch });
            }
            let (l2, l1) = self.epoch_grads(&model, epoch, &ws, &mut grads, &mut tail);
            if faults.take_poison(epoch) {
                poison(&mut grads);
            }

            // --- Divergence watchdog -------------------------------------
            if let Some(detail) = divergence_trouble(cfg, l2, l1, grads.norm()) {
                retries += 1;
                if retries > cfg.max_retries {
                    return Err(TrainError::Diverged {
                        epoch,
                        retries,
                        detail,
                    });
                }
                lr_scale *= cfg.lr_backoff;
                let (m, a, e) = &last_good;
                model = m.clone();
                adam = a.clone();
                epoch = *e;
                continue;
            }

            adam.step(
                &mut model,
                &grads,
                cfg.learning_rate * lr_scale,
                cfg.weight_decay,
            );
            on_epoch(TrainContext::local(epoch, l2, l1));
            epoch += 1;

            // --- Checkpoint / snapshot cadence ----------------------------
            let due = epoch.is_multiple_of(cfg.checkpoint_every) || epoch == cfg.epochs;
            if due && model_is_finite(&model) {
                last_good = (model.clone(), adam.clone(), epoch);
                if let Some(path) = &checkpoint_path {
                    let ck = Checkpoint {
                        epoch,
                        adam_t: adam.t,
                        lr_scale,
                        retries,
                        seed: cfg.seed,
                        fingerprint,
                        model: model.clone(),
                        m: adam.m.clone(),
                        v: adam.v.clone(),
                    };
                    save_checkpoint(&ck, path)?;
                }
            }
        }

        Ok(TrainReport {
            model,
            start_epoch,
            rollbacks: retries,
            lr_scale,
        })
    }

    /// Score function for ranking, applying the ZeroOut mask when that
    /// ablation is active (masked POIs score `−∞`).
    pub fn score_fn<'a>(
        &'a self,
        model: &'a TcssModel,
    ) -> impl Fn(usize, usize, usize) -> f64 + 'a {
        move |i, j, k| {
            if let Some(mask) = &self.zero_out_allowed {
                if !mask[i][j] {
                    return f64::NEG_INFINITY;
                }
            }
            model.predict(i, j, k)
        }
    }
}

/// The divergence watchdog's verdict on one epoch's losses and gradient
/// norm: `Some(detail)` if the update must be rejected and rolled back.
/// Shared by the in-process and distributed ([`crate::dist`]) loops so
/// both reject exactly the same epochs. Takes the gradient norm
/// pre-computed ([`Grads::norm`]'s row-decomposable order) because the
/// tail-sharded coordinator folds it from worker-shipped per-row dots —
/// the full gradient never materializes in one process there.
pub(crate) fn divergence_trouble(cfg: &TcssConfig, l2: f64, l1: f64, gnorm: f64) -> Option<String> {
    let joint = cfg.lambda.mul_add(l1, l2);
    if !joint.is_finite() {
        Some(format!("non-finite loss (L₂ {l2}, L₁ {l1})"))
    } else if !gnorm.is_finite() {
        Some(format!("non-finite gradient norm {gnorm}"))
    } else if gnorm > cfg.max_grad_norm {
        Some(format!(
            "gradient norm {gnorm:.3e} exceeds max_grad_norm {:.3e}",
            cfg.max_grad_norm
        ))
    } else if joint.abs() > cfg.max_grad_norm {
        Some(format!(
            "loss magnitude {:.3e} exceeds max_grad_norm {:.3e}",
            joint.abs(),
            cfg.max_grad_norm
        ))
    } else {
        None
    }
}

/// Every parameter finite? Guards the rollback target: a state that
/// already went non-finite (finite-but-huge gradients can overflow the
/// Adam update) must never become a snapshot or a checkpoint.
pub(crate) fn model_is_finite(model: &TcssModel) -> bool {
    model.u1.as_slice().iter().all(|v| v.is_finite())
        && model.u2.as_slice().iter().all(|v| v.is_finite())
        && model.u3.as_slice().iter().all(|v| v.is_finite())
        && model.h.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_data::{train_test_split, SynthPreset};

    fn small_setup(config: TcssConfig) -> (Dataset, Vec<CheckIn>, TcssTrainer) {
        let data = SynthPreset::Gmu5k.generate();
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
        let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, config);
        (data, split.train, trainer)
    }

    #[test]
    fn loss_decreases_over_training() {
        let cfg = TcssConfig {
            epochs: 15,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut losses = Vec::new();
        let _model = trainer.train_detailed(|ctx| losses.push(ctx.l2 + 0.1 * ctx.l1));
        assert_eq!(losses.len(), 15);
        assert!(
            losses[14] < losses[0],
            "loss should decrease: {} → {}",
            losses[0],
            losses[14]
        );
    }

    #[test]
    fn trained_model_separates_positives_from_negatives() {
        let cfg = TcssConfig {
            epochs: 40,
            ..TcssConfig::default()
        };
        let (_, train, trainer) = small_setup(cfg);
        let model = trainer.train(|_, _| {});
        // Average score on train positives must exceed random cells.
        let mut pos = 0.0;
        let mut n_pos = 0.0;
        for c in train.iter().take(300) {
            pos += model.predict(c.user, c.poi, c.month as usize);
            n_pos += 1.0;
        }
        pos /= n_pos;
        let (i_dim, j_dim, k_dim) = trainer.tensor.dims();
        let mut neg = 0.0;
        let mut n_neg = 0.0;
        for s in 0..300 {
            let (i, j, k) = ((s * 13) % i_dim, (s * 7) % j_dim, (s * 5) % k_dim);
            if !trainer.tensor.contains(i, j, k) {
                neg += model.predict(i, j, k);
                n_neg += 1.0;
            }
        }
        neg /= n_neg;
        assert!(
            pos > neg + 0.1,
            "positives {pos} should clearly exceed negatives {neg}"
        );
    }

    #[test]
    fn zero_out_masks_far_pois() {
        let cfg = TcssConfig {
            epochs: 2,
            ..TcssConfig::ablation_zero_out()
        };
        let (_, _, trainer) = small_setup(cfg);
        assert!(trainer.zero_out_allowed.is_some());
        let model = trainer.train(|_, _| {});
        let score = trainer.score_fn(&model);
        // At least one (user, poi) pair must be masked to −∞ and at least
        // one allowed.
        let mask = trainer.zero_out_allowed.as_ref().unwrap();
        let mut masked = 0;
        let mut allowed = 0;
        for (u, row) in mask.iter().enumerate() {
            for (j, &ok) in row.iter().enumerate() {
                if ok {
                    allowed += 1;
                    assert!(score(u, j, 0).is_finite());
                } else {
                    masked += 1;
                    assert_eq!(score(u, j, 0), f64::NEG_INFINITY);
                }
            }
        }
        assert!(masked > 0, "zero-out mask masked nothing");
        assert!(allowed > 0);
    }

    #[test]
    fn negative_sampling_strategy_trains() {
        let cfg = TcssConfig {
            epochs: 10,
            ..TcssConfig::ablation_negative_sampling()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        trainer.train_detailed(|ctx| {
            if ctx.epoch == 0 {
                first = ctx.l2;
            }
            last = ctx.l2;
        });
        assert!(
            last < first,
            "negative-sampling loss should fall: {first} → {last}"
        );
    }

    #[test]
    fn oversized_rank_is_rejected() {
        let cfg = TcssConfig {
            rank: 13, // > K = 12
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let err = trainer.try_init_model().unwrap_err();
        assert!(
            matches!(err, TrainError::InvalidConfig(_)),
            "expected InvalidConfig, got {err:?}"
        );
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn invalid_config_is_rejected_before_training() {
        let cfg = TcssConfig {
            learning_rate: -1.0,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let err = trainer
            .train_with_checkpoints(|_| {})
            .expect_err("negative learning rate must be rejected");
        assert!(err.to_string().contains("learning_rate"), "{err}");
    }

    #[test]
    fn checkpointed_run_matches_plain_run_bitwise() {
        let cfg = TcssConfig {
            epochs: 8,
            rank: 4,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let plain = trainer.train(|_, _| {});
        let report = trainer.train_with_checkpoints(|_| {}).expect("trains");
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.lr_scale, 1.0);
        let a: Vec<u64> = plain.u1.as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = report
            .model
            .u1
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(a, b, "fault-tolerant path must not perturb training");
    }

    #[test]
    fn hausdorff_every_skips_epochs() {
        let cfg = TcssConfig {
            epochs: 4,
            hausdorff_every: 2,
            ..TcssConfig::default()
        };
        let (_, _, trainer) = small_setup(cfg);
        let mut l1s = Vec::new();
        trainer.train_detailed(|ctx| l1s.push(ctx.l1));
        assert!(l1s[0] > 0.0);
        assert_eq!(l1s[1], 0.0);
        assert!(l1s[2] > 0.0);
        assert_eq!(l1s[3], 0.0);
    }
}
