//! The stateless worker side of the distributed trainer.
//!
//! A worker connects to the coordinator's Unix socket, introduces itself
//! (Hello), receives its Setup — the full tensor, the loss kernel choice,
//! and the contiguous block of **global** entry chunks it owns — and then
//! loops: for every Step (epoch + full model) it evaluates its chunks
//! with exactly the kernels the in-process trainer runs and replies with
//! the per-chunk deltas, un-merged, in ascending chunk order.
//!
//! Holding no state between steps is what makes recovery trivial: a
//! respawned worker is indistinguishable from the one it replaces.

use super::wire::{
    decode_setup, decode_step, encode_deltas_into, encode_frame, encode_hello, tag_of, FrameBuf,
    FrameDecoder, Setup, WireLoss, TAG_SETUP, TAG_SHUTDOWN, TAG_STEP,
};
use super::{busy_now_ns, read_frame, DistError};
use crate::loss::{l2_entry_chunk, negative_sampling_chunk, ENTRIES_PER_CHUNK};
use crate::sparse_grads::{GradScratch, SparseGrads};
use crate::workspace::TrainWorkspace;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Run one worker process to completion: connect, handshake, serve steps
/// until Shutdown (or a clean coordinator-side disconnect).
pub fn run_worker(socket: &Path, worker_id: u32) -> Result<(), DistError> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(&encode_frame(&encode_hello(worker_id)))?;
    let mut dec = FrameDecoder::new();

    let frame = read_frame(&mut stream, &mut dec)?.ok_or_else(|| {
        DistError::Protocol("coordinator disconnected before sending Setup".into())
    })?;
    if tag_of(&frame)? != TAG_SETUP {
        return Err(DistError::Protocol(format!(
            "expected Setup first, got tag {}",
            tag_of(&frame)?
        )));
    }
    let setup = decode_setup(&frame)?;
    // The worker's thread count composes with the chunk grid exactly like
    // TCSS_NUM_THREADS does in-process: a pure speed knob.
    tcss_linalg::set_num_threads(Some(setup.threads.max(1)));

    let tensor = tcss_sparse::SparseTensor3::from_entries(
        setup.dims,
        setup.entries.iter().map(|e| (e.i, e.j, e.k, e.value)),
    )
    .map_err(|e| DistError::Protocol(format!("setup tensor rejected: {e}")))?;
    let n_entries = tensor.entries().len();
    let entry_lo = (setup.chunk_start * ENTRIES_PER_CHUNK).min(n_entries);
    let entry_hi = (setup.chunk_end * ENTRIES_PER_CHUNK).min(n_entries);
    let ws = TrainWorkspace::new();

    if setup.tail_shard {
        return super::sharded::run_sharded_worker(
            stream, dec, setup, tensor, entry_lo, entry_hi, ws, worker_id,
        );
    }

    // The reply frame reuses one buffer across epochs.
    let mut reply = FrameBuf::new();
    loop {
        // `busy` spans recv → decode → eval → encode: everything between
        // the frame hitting the socket and the reply being ready is work
        // that runs concurrently across workers on a host with enough
        // CPUs (the critical-path accounting in `bench_distributed`
        // relies on that). [`busy_now_ns`] is process CPU time, so the
        // blocking wait inside `read_frame` accrues ~nothing while the
        // frame checksum + buffering it brackets is counted.
        let t0 = busy_now_ns();
        let frame = match read_frame(&mut stream, &mut dec)? {
            Some(f) => f,
            // Coordinator dropped the connection between frames: treat it
            // as shutdown so an aborted run doesn't leave zombie workers.
            None => return Ok(()),
        };
        match tag_of(&frame)? {
            TAG_STEP => {
                let (epoch, model) = decode_step(&frame)?;
                if model.dims() != setup.dims || model.rank() != setup.rank {
                    return Err(DistError::Protocol(format!(
                        "step model {:?}/r{} does not match setup {:?}/r{}",
                        model.dims(),
                        model.rank(),
                        setup.dims,
                        setup.rank
                    )));
                }
                let chunks = eval_block(&setup, &tensor, &model, entry_lo, entry_hi, epoch, &ws);
                encode_deltas_into(reply.payload(), epoch, 0, setup.rank, &chunks);
                // Patch the real figure over the placeholder now that the
                // encode is done (busy_ns lives at bytes 9..17: tag + epoch).
                let busy_ns = busy_now_ns().saturating_sub(t0);
                reply.payload_mut()[9..17].copy_from_slice(&busy_ns.to_le_bytes());
                for (_, delta) in chunks {
                    ws.deltas.put(delta);
                }
                stream.write_all(reply.finish())?;
            }
            TAG_SHUTDOWN => return Ok(()),
            other => {
                return Err(DistError::Protocol(format!(
                    "unexpected message tag {other} in step loop"
                )))
            }
        }
    }
}

/// Evaluate this worker's chunk block against one model broadcast.
///
/// The block `[entry_lo, entry_hi)` starts on an [`ENTRIES_PER_CHUNK`]
/// boundary of the **global** entry grid, so the local chunk grid laid
/// down by `map_chunks_with` coincides with a slice of the global one;
/// offsetting each local range recovers the global range the kernels (and
/// the negative-sampling RNG keyed on it) expect. Results come back in
/// ascending local = ascending global chunk order.
pub(super) fn eval_block(
    setup: &Setup,
    tensor: &tcss_sparse::SparseTensor3,
    model: &crate::model::TcssModel,
    entry_lo: usize,
    entry_hi: usize,
    epoch: u64,
    ws: &TrainWorkspace,
) -> Vec<(f64, SparseGrads)> {
    let entries = tensor.entries();
    tcss_linalg::map_chunks_with(
        entry_hi - entry_lo,
        ENTRIES_PER_CHUNK,
        || {
            let mut scratch = ws.scratch.acquire(|| GradScratch::for_model(model));
            scratch.ensure(model);
            scratch
        },
        |scratch, local| {
            let range = local.start + entry_lo..local.end + entry_lo;
            let mut delta = ws.deltas.take(SparseGrads::new);
            let loss = match setup.loss {
                WireLoss::L2Entries => l2_entry_chunk(
                    model,
                    entries,
                    range,
                    setup.w_plus,
                    setup.w_minus,
                    scratch,
                    &mut delta,
                ),
                WireLoss::NegSampling => negative_sampling_chunk(
                    model,
                    tensor,
                    range,
                    setup.w_plus,
                    setup.w_minus,
                    // Same per-epoch seed derivation as the in-process
                    // trainer: cfg.seed + epoch, then per-chunk mixing
                    // inside the kernel.
                    setup.seed.wrapping_add(epoch),
                    scratch,
                    &mut delta,
                ),
            };
            (loss, delta)
        },
    )
}
