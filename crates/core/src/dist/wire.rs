//! Length-prefixed, checksummed framing and message codec for the
//! distributed-training transport.
//!
//! Same hand-rolled idiom as `tcss_serve::net::frame` (no async runtime,
//! no serialization crates), with one addition: every frame carries a
//! trailing [`frame_checksum`] (word-folded FNV-1a) of its payload, so a
//! torn or corrupted delta exchange surfaces as a typed
//! [`WireError::ChecksumMismatch`] instead of silently perturbing
//! training. Wire format of one frame:
//!
//! ```text
//! [u32 LE payload length][payload bytes][u64 LE frame_checksum(payload)]
//! ```
//!
//! All multi-byte integers and floats are little-endian; `f64`s travel as
//! `to_le_bytes`/`from_le_bytes`, which round-trips every bit pattern —
//! the process-count-parity contract depends on that exactness.
//!
//! The decoder is push-based and cannot block or hang: feed it arbitrary
//! byte splits with [`FrameDecoder::push`], drain complete frames with
//! [`FrameDecoder::next_frame`], and signal EOF with
//! [`FrameDecoder::finish`]. A decoder that has reported an error is
//! poisoned: the stream cannot be resynchronized after a framing fault,
//! so further use keeps failing instead of mis-parsing.

use crate::loss::Grads;
use crate::model::TcssModel;
use crate::sparse_grads::SparseGrads;
use tcss_linalg::Matrix;
use tcss_sparse::TensorEntry;

/// Bytes in the length prefix.
pub const HEADER_LEN: usize = 4;
/// Bytes in the checksum trailer.
pub const TRAILER_LEN: usize = 8;
/// Frame-size cap for the training transport. Delta frames scale with
/// `touched rows × rank`, and a full-model broadcast is `(I+J+K+1)·r`
/// doubles, so the cap is generous; anything larger is a corrupt length
/// prefix, not a real message.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Message tags (first payload byte).
pub(crate) const TAG_HELLO: u8 = 1;
pub(crate) const TAG_SETUP: u8 = 2;
pub(crate) const TAG_STEP: u8 = 3;
pub(crate) const TAG_DELTAS: u8 = 4;
pub(crate) const TAG_SHUTDOWN: u8 = 5;
/// Tail-sharded protocol (see [`super::sharded`]): coordinator → worker
/// resident-state install (initial, respawn, rollback).
pub(crate) const TAG_ADOPT: u8 = 6;
/// Worker → owner (relayed verbatim): un-merged per-chunk row deltas for
/// rows the destination owns.
pub(crate) const TAG_EXCH: u8 = 7;
/// Worker → coordinator: per-chunk losses and `h` deltas (the coordinator
/// owns `h` and the loss fold).
pub(crate) const TAG_CHUNK_STATS: u8 = 8;
/// Coordinator → worker: Gram + Hausdorff tail gradients for the rows the
/// worker owns (absent when the tail is inactive this epoch).
pub(crate) const TAG_TAIL_ROWS: u8 = 9;
/// Worker → coordinator: per-owned-row gradient self-dots for the global
/// norm fold.
pub(crate) const TAG_NORM_PART: u8 = 10;
/// Coordinator → worker: the watchdog passed; apply Adam with this
/// effective learning rate.
pub(crate) const TAG_VERDICT: u8 = 11;
/// Worker → coordinator: Adam-updated factor rows for the owned ranges.
pub(crate) const TAG_UPD_ROWS: u8 = 12;
/// Coordinator → worker: ship your resident Adam moments (checkpoint
/// assembly).
pub(crate) const TAG_SNAP_REQ: u8 = 13;
/// Worker → coordinator: resident `m`/`v` rows for the owned ranges.
pub(crate) const TAG_SNAP_ROWS: u8 = 14;
/// Coordinator → worker (tail-sharded only): a Step with the worker's
/// owned `U¹` rows punched out of the window — the receiver holds those
/// rows resident (bitwise equal to the coordinator's copy by the
/// UpdatedRows splice invariant) and fills them back in during decode.
pub(crate) const TAG_STEP_OWNED: u8 = 15;

/// Typed decode failures. Every malformed input maps to exactly one of
/// these — the codec never panics and the decoder never blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A length prefix declared a frame larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// Length the prefix declared.
        declared: usize,
        /// The decoder's cap.
        max: usize,
    },
    /// The stream ended mid-frame.
    TruncatedEof {
        /// Bytes left in the buffer when EOF was signalled.
        buffered: usize,
    },
    /// The payload checksum did not match its trailer.
    ChecksumMismatch {
        /// Checksum the trailer carried.
        expected: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
    /// A structurally invalid message payload (bad tag, truncated field,
    /// inconsistent dimensions).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            WireError::TruncatedEof { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
            WireError::ChecksumMismatch { expected, got } => write!(
                f,
                "frame checksum mismatch: trailer {expected:016x}, payload hashes to {got:016x}"
            ),
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Frame encoding / decoding
// ---------------------------------------------------------------------

/// The frame-trailer checksum: hardware CRC32C where the CPU has it,
/// word-folded FNV-1a elsewhere.
///
/// The training transport moves megabytes of delta floats per epoch, and
/// the checksum runs on both the encode and the verify side of every
/// frame — at 4 tail-sharded workers that is ~2 MB/epoch through this
/// function on the coordinator alone, a measurable slice of the
/// critical path. Two interleaved `crc32q` streams break the serial
/// xor-multiply dependency chain of FNV (≈3 cycles per 8 bytes) into
/// two independent 3-cycle chains (≈3 cycles per 16 bytes), roughly
/// doubling throughput on top of the cheaper op. The streams are seeded
/// differently and packed into the u64 trailer, so any single flipped
/// byte lands in exactly one stream and changes its 32 bits
/// (`tests/dist_parity.rs` proptests corruption detection over random
/// single-byte flips).
///
/// Frames are process-local, same-host, and never persisted: both ends
/// of a socket resolve the same CPU feature, so the two
/// implementations never need to agree with each other, and neither
/// owes compatibility to the on-disk digests, which stay on `fnv1a64`.
pub(crate) fn frame_checksum(data: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static HAS_SSE42: OnceLock<bool> = OnceLock::new();
        if *HAS_SSE42.get_or_init(|| std::arch::is_x86_feature_detected!("sse4.2")) {
            // SAFETY: guarded by the runtime feature check above.
            return unsafe { crc32c_checksum(data) };
        }
    }
    fnv_checksum(data)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_checksum(data: &[u8]) -> u64 {
    use core::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut a: u64 = 0xffff_ffff; // even 8-byte words
    let mut b: u64 = 0x5a5a_5a5a; // odd 8-byte words
    let mut pairs = data.chunks_exact(16);
    for p in &mut pairs {
        a = _mm_crc32_u64(a, u64::from_le_bytes(p[..8].try_into().unwrap()));
        b = _mm_crc32_u64(b, u64::from_le_bytes(p[8..].try_into().unwrap()));
    }
    let rem = pairs.remainder();
    let mut words = rem.chunks_exact(8);
    for w in &mut words {
        a = _mm_crc32_u64(a, u64::from_le_bytes(w.try_into().unwrap()));
    }
    for &byte in words.remainder() {
        a = u64::from(_mm_crc32_u8(a as u32, byte));
    }
    (a << 32) | b
}

/// Portable fallback: FNV-1a folded over 8-byte little-endian words
/// (plus a byte-at-a-time tail), ~7× the byte-at-a-time
/// [`crate::digest::fnv1a64`].
fn fnv_checksum(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        h ^= u64::from_le_bytes(w.try_into().expect("chunks_exact yields 8 bytes"));
        h = h.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Encode one frame: length prefix, payload, checksum trailer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    out
}

/// Reusable frame-encode buffer: [`encode_frame`] allocates a fresh `Vec`
/// per call, which shows up at high epoch rates. A `FrameBuf` keeps one
/// buffer alive across epochs; messages are encoded **in place** after the
/// length prefix, then [`FrameBuf::finish`] patches the prefix and appends
/// the checksum trailer:
///
/// ```text
/// let p = buf.payload();        // cleared, positioned after the prefix
/// encode_step_into(p, ...);     // append the message
/// stream.write_all(buf.finish())?;
/// ```
#[derive(Debug, Default)]
pub(crate) struct FrameBuf {
    buf: Vec<u8>,
    /// Byte offset of the current (unsealed) frame's header.
    start: usize,
}

impl FrameBuf {
    pub(crate) fn new() -> Self {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Start a frame: clear the buffer, reserve the length prefix, and
    /// hand back the payload sink.
    pub(crate) fn payload(&mut self) -> &mut Vec<u8> {
        self.buf.clear();
        self.start = 0;
        self.buf.extend_from_slice(&[0u8; HEADER_LEN]);
        &mut self.buf
    }

    /// Payload bytes encoded so far (for in-place patching of fields at
    /// known offsets — patch **before** [`FrameBuf::finish`] so the
    /// checksum covers the final bytes).
    pub(crate) fn payload_mut(&mut self) -> &mut [u8] {
        let at = self.start + HEADER_LEN;
        &mut self.buf[at..]
    }

    /// Seal the current frame in place and start another one behind it,
    /// so several messages accumulate into a single buffer and go out in
    /// one `write_all` — one syscall (and one receiver wake-up) for a
    /// whole burst instead of one per frame. The stream is byte-ordered,
    /// so the receiver's decoder sees exactly the same frame sequence.
    pub(crate) fn next_payload(&mut self) -> &mut Vec<u8> {
        self.seal();
        self.start = self.buf.len();
        self.buf.extend_from_slice(&[0u8; HEADER_LEN]);
        &mut self.buf
    }

    /// Patch the current frame's length prefix and append its checksum.
    fn seal(&mut self) {
        let len = self.buf.len() - self.start - HEADER_LEN;
        debug_assert!(len <= MAX_FRAME_LEN);
        self.buf[self.start..self.start + HEADER_LEN].copy_from_slice(&(len as u32).to_le_bytes());
        let sum = frame_checksum(&self.buf[self.start + HEADER_LEN..]);
        self.buf.extend_from_slice(&sum.to_le_bytes());
    }

    /// Seal the current frame and return every frame buffered since
    /// [`FrameBuf::payload`], ready for one write.
    pub(crate) fn finish(&mut self) -> &[u8] {
        self.seal();
        &self.buf
    }
}

/// The payload slice of a raw frame (header + payload + trailer) as
/// produced by [`read_raw_frame`] — the relay path keeps frames raw so
/// forwarding is a plain write, with no re-checksumming.
pub(crate) fn raw_frame_payload(raw: &[u8]) -> &[u8] {
    &raw[HEADER_LEN..raw.len() - TRAILER_LEN]
}

/// Whether `buf` starts with one complete frame (header + declared
/// payload + trailer). Reader threads use this to parse ahead through a
/// buffered burst without risking a blocking read mid-frame: an
/// oversized or garbage length simply reports `false` and the next
/// [`read_raw_frame`] surfaces the typed error.
pub(crate) fn complete_frame_buffered(buf: &[u8]) -> bool {
    if buf.len() < HEADER_LEN {
        return false;
    }
    let declared =
        u32::from_le_bytes(buf[..HEADER_LEN].try_into().expect("4-byte header")) as usize;
    buf.len().saturating_sub(HEADER_LEN + TRAILER_LEN) >= declared
}

/// Read one complete raw frame (header + payload + trailer) from a
/// blocking stream with `read_exact`, verifying the checksum. A clean EOF
/// between frames is `Ok(None)`; EOF mid-frame or a corrupt frame is a
/// typed error. Used by the coordinator's per-worker reader threads,
/// which need the raw bytes to relay Exch frames verbatim.
pub(crate) fn read_raw_frame(
    stream: &mut impl std::io::Read,
) -> Result<Option<Vec<u8>>, super::DistError> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        let n = stream.read(&mut hdr[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(WireError::TruncatedEof { buffered: got }.into());
        }
        got += n;
    }
    let declared = u32::from_le_bytes(hdr) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared,
            max: MAX_FRAME_LEN,
        }
        .into());
    }
    let mut raw = vec![0u8; HEADER_LEN + declared + TRAILER_LEN];
    raw[..HEADER_LEN].copy_from_slice(&hdr);
    stream
        .read_exact(&mut raw[HEADER_LEN..])
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                super::DistError::Wire(WireError::TruncatedEof { buffered: 0 })
            }
            _ => super::DistError::Io(e),
        })?;
    let expected = u64::from_le_bytes(raw[HEADER_LEN + declared..].try_into().unwrap());
    let got = frame_checksum(&raw[HEADER_LEN..HEADER_LEN + declared]);
    if got != expected {
        return Err(WireError::ChecksumMismatch { expected, got }.into());
    }
    Ok(Some(raw))
}

/// Push-based frame decoder. Mirrors `tcss_serve::net::frame::FrameDecoder`
/// (buffer + compaction + poisoning) with the checksum trailer added.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            poisoned: false,
        }
    }

    /// Append raw bytes from the transport. Accepts arbitrary splits —
    /// byte-at-a-time and whole-stream-at-once decode identically.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow the buffer forever.
        if self.pos >= 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to extract the next complete, checksum-verified payload.
    /// `Ok(None)` means "need more bytes".
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.poisoned {
            return Err(WireError::Malformed(
                "decoder already failed; the stream cannot be resynchronized".into(),
            ));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(avail[..HEADER_LEN].try_into().unwrap()) as usize;
        if declared > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(WireError::Oversized {
                declared,
                max: MAX_FRAME_LEN,
            });
        }
        let total = HEADER_LEN + declared + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + declared];
        let expected = u64::from_le_bytes(avail[HEADER_LEN + declared..total].try_into().unwrap());
        let got = frame_checksum(payload);
        if got != expected {
            self.poisoned = true;
            return Err(WireError::ChecksumMismatch { expected, got });
        }
        let out = payload.to_vec();
        self.pos += total;
        Ok(Some(out))
    }

    /// Signal EOF: any buffered partial frame is a typed error.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buffered() != 0 {
            return Err(WireError::TruncatedEof {
                buffered: self.buffered(),
            });
        }
        Ok(())
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a message payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed(format!(
                "payload truncated reading {what}: need {n} bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// `n` contiguous `f64`s appended onto `out`.
    pub(crate) fn f64s_into(
        &mut self,
        n: usize,
        out: &mut Vec<f64>,
        what: &str,
    ) -> Result<(), WireError> {
        let bytes = self.take(n * 8, what)?;
        out.reserve(n);
        for c in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(c.try_into().unwrap()));
        }
        Ok(())
    }

    pub(crate) fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after message end",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Worker → coordinator greeting, sent immediately after connecting.
pub(crate) fn encode_hello(worker: u32) -> Vec<u8> {
    let mut p = vec![TAG_HELLO];
    put_u32(&mut p, worker);
    p
}

pub(crate) fn decode_hello(payload: &[u8]) -> Result<u32, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_HELLO, "Hello")?;
    let w = r.u32("worker id")?;
    r.done()?;
    Ok(w)
}

/// Which entry-chunk kernel the worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireLoss {
    /// [`crate::loss::l2_entry_chunk`] — the rewritten whole-data positive
    /// term (the Gram tail stays on the coordinator).
    L2Entries = 0,
    /// [`crate::loss::negative_sampling_chunk`] — positives plus sampled
    /// negatives, RNG keyed to the global chunk index.
    NegSampling = 1,
}

/// Everything a stateless worker needs to evaluate its chunk block:
/// tensor, weights, kernel choice, seed, the block of **global** chunk
/// indices it owns, and its thread count.
#[derive(Debug)]
pub(crate) struct Setup {
    pub dims: (usize, usize, usize),
    pub rank: usize,
    pub w_plus: f64,
    pub w_minus: f64,
    pub loss: WireLoss,
    pub seed: u64,
    pub chunk_start: usize,
    pub chunk_end: usize,
    pub threads: usize,
    /// Fleet size — with `tail_shard` this fixes the row-ownership map
    /// (`sparse_grads::owned_range`) every peer derives locally.
    pub n_workers: usize,
    /// Run the owner-computes tail-sharded protocol instead of the plain
    /// stateless-worker one.
    pub tail_shard: bool,
    /// Adam weight decay — tail-sharded workers apply the optimizer
    /// themselves.
    pub weight_decay: f64,
    pub entries: Vec<TensorEntry>,
}

pub(crate) fn encode_setup(s: &Setup) -> Vec<u8> {
    let mut p = vec![TAG_SETUP];
    put_u32(&mut p, s.dims.0 as u32);
    put_u32(&mut p, s.dims.1 as u32);
    put_u32(&mut p, s.dims.2 as u32);
    put_u32(&mut p, s.rank as u32);
    put_f64(&mut p, s.w_plus);
    put_f64(&mut p, s.w_minus);
    p.push(s.loss as u8);
    put_u64(&mut p, s.seed);
    put_u64(&mut p, s.chunk_start as u64);
    put_u64(&mut p, s.chunk_end as u64);
    put_u32(&mut p, s.threads as u32);
    put_u32(&mut p, s.n_workers as u32);
    p.push(s.tail_shard as u8);
    put_f64(&mut p, s.weight_decay);
    put_u64(&mut p, s.entries.len() as u64);
    for e in &s.entries {
        put_u32(&mut p, e.i as u32);
        put_u32(&mut p, e.j as u32);
        put_u32(&mut p, e.k as u32);
        put_f64(&mut p, e.value);
    }
    p
}

pub(crate) fn decode_setup(payload: &[u8]) -> Result<Setup, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_SETUP, "Setup")?;
    let dims = (
        r.u32("dim I")? as usize,
        r.u32("dim J")? as usize,
        r.u32("dim K")? as usize,
    );
    let rank = r.u32("rank")? as usize;
    let w_plus = r.f64("w_plus")?;
    let w_minus = r.f64("w_minus")?;
    let loss = match r.u8("loss strategy")? {
        0 => WireLoss::L2Entries,
        1 => WireLoss::NegSampling,
        other => {
            return Err(WireError::Malformed(format!(
                "unknown loss strategy {other}"
            )))
        }
    };
    let seed = r.u64("seed")?;
    let chunk_start = r.u64("chunk_start")? as usize;
    let chunk_end = r.u64("chunk_end")? as usize;
    let threads = r.u32("threads")? as usize;
    let n_workers = r.u32("n_workers")? as usize;
    let tail_shard = r.u8("tail_shard flag")? != 0;
    let weight_decay = r.f64("weight_decay")?;
    let n = r.u64("entry count")? as usize;
    if n_workers == 0 {
        return Err(WireError::Malformed("setup with zero workers".into()));
    }
    if chunk_start > chunk_end {
        return Err(WireError::Malformed(format!(
            "chunk block start {chunk_start} exceeds end {chunk_end}"
        )));
    }
    let mut entries = Vec::with_capacity(n.min(1 << 24));
    for idx in 0..n {
        let i = r.u32("entry i")? as usize;
        let j = r.u32("entry j")? as usize;
        let k = r.u32("entry k")? as usize;
        let value = r.f64("entry value")?;
        if i >= dims.0 || j >= dims.1 || k >= dims.2 {
            return Err(WireError::Malformed(format!(
                "entry {idx} index ({i}, {j}, {k}) out of bounds for {dims:?}"
            )));
        }
        entries.push(TensorEntry { i, j, k, value });
    }
    r.done()?;
    Ok(Setup {
        dims,
        rank,
        w_plus,
        w_minus,
        loss,
        seed,
        chunk_start,
        chunk_end,
        threads,
        n_workers,
        tail_shard,
        weight_decay,
        entries,
    })
}

/// Coordinator → worker: "evaluate your chunk block against this model".
/// The full model travels every step — factors are a few hundred KB even
/// at bench scale, and a stateless worker is what makes respawn-and-replay
/// recovery trivially bit-exact.
/// Coordinator → worker: one epoch's model. `U²`/`U³`/`h` ship whole;
/// `U¹` ships only the row window `[u1_lo, u1_hi)` — for the entry-loss
/// kernels a worker only ever reads the `U¹` rows its contiguous (sorted
/// COO) chunk block touches, so the coordinator sends each worker its
/// window instead of broadcasting all of `U¹` `N` times. (Negative
/// sampling reads arbitrary rows, so there the coordinator passes the
/// full window.) Unsent rows decode as zeros and are never read, keeping
/// the float stream bit-identical.
#[cfg(test)]
pub(crate) fn encode_step(epoch: u64, model: &TcssModel, u1_lo: usize, u1_hi: usize) -> Vec<u8> {
    let mut p = Vec::new();
    encode_step_into(&mut p, epoch, model, u1_lo, u1_hi);
    p
}

/// [`encode_step`] appending into a caller-owned buffer (a
/// [`FrameBuf`] payload sink) so the per-epoch broadcast reuses its
/// allocation across epochs.
pub(crate) fn encode_step_into(
    p: &mut Vec<u8>,
    epoch: u64,
    model: &TcssModel,
    u1_lo: usize,
    u1_hi: usize,
) {
    let (i, j, k) = model.dims();
    let r = model.rank();
    debug_assert!(u1_lo <= u1_hi && u1_hi <= i);
    p.reserve(1 + 8 + 24 + ((u1_hi - u1_lo) + j + k + 1) * r * 8);
    p.push(TAG_STEP);
    put_u64(p, epoch);
    put_u32(p, i as u32);
    put_u32(p, j as u32);
    put_u32(p, k as u32);
    put_u32(p, r as u32);
    put_u32(p, u1_lo as u32);
    put_u32(p, u1_hi as u32);
    put_f64s(p, &model.u1.as_slice()[u1_lo * r..u1_hi * r]);
    put_f64s(p, model.u2.as_slice());
    put_f64s(p, model.u3.as_slice());
    put_f64s(p, &model.h);
}

pub(crate) fn decode_step(payload: &[u8]) -> Result<(u64, TcssModel), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_STEP, "Step")?;
    let epoch = r.u64("epoch")?;
    let i = r.u32("dim I")? as usize;
    let j = r.u32("dim J")? as usize;
    let k = r.u32("dim K")? as usize;
    let rank = r.u32("rank")? as usize;
    let u1_lo = r.u32("u1 window lo")? as usize;
    let u1_hi = r.u32("u1 window hi")? as usize;
    if u1_lo > u1_hi || u1_hi > i {
        return Err(WireError::Malformed(format!(
            "U1 window {u1_lo}..{u1_hi} outside dimension {i}"
        )));
    }
    let u1 = {
        let mut window = Vec::new();
        r.f64s_into((u1_hi - u1_lo) * rank, &mut window, "U1 window")?;
        let mut data = vec![0.0; i * rank];
        data[u1_lo * rank..u1_hi * rank].copy_from_slice(&window);
        Matrix::from_vec(i, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad U1 factor: {e}")))?
    };
    let mut factor = |rows: usize, what: &str| -> Result<Matrix, WireError> {
        let mut data = Vec::new();
        r.f64s_into(rows * rank, &mut data, what)?;
        Matrix::from_vec(rows, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad {what} factor: {e}")))
    };
    let u2 = factor(j, "U2")?;
    let u3 = factor(k, "U3")?;
    let mut h = Vec::new();
    r.f64s_into(rank, &mut h, "h")?;
    r.done()?;
    let mut model = TcssModel::try_new(u1, u2, u3)
        .map_err(|e| WireError::Malformed(format!("inconsistent model: {e}")))?;
    model.h = h;
    Ok((epoch, model))
}

/// The owned-rows hole a [`TAG_STEP_OWNED`] frame punches out of a `U¹`
/// window: the intersection of the receiver's owned row range with
/// `[lo, hi)`. Both ends derive it independently from the same
/// [`crate::sparse_grads::owned_range`] map, so it is never on the wire.
pub(crate) fn u1_hole(own: (usize, usize), lo: usize, hi: usize) -> (usize, usize) {
    let h_lo = own.0.clamp(lo, hi);
    let h_hi = own.1.clamp(h_lo, hi);
    (h_lo, h_hi)
}

/// [`encode_step_into`] for a tail-sharded worker: identical layout, but
/// the `U¹` window ships as the two slices around the receiver's owned
/// rows ([`u1_hole`]). At steady state a worker's read window is mostly
/// its own chunk block's rows, so this cuts the per-epoch broadcast to
/// the boundary slivers owned by its neighbors.
pub(crate) fn encode_step_owned_into(
    p: &mut Vec<u8>,
    epoch: u64,
    model: &TcssModel,
    u1_lo: usize,
    u1_hi: usize,
    own: (usize, usize),
) {
    let (i, j, k) = model.dims();
    let r = model.rank();
    debug_assert!(u1_lo <= u1_hi && u1_hi <= i);
    let (h_lo, h_hi) = u1_hole(own, u1_lo, u1_hi);
    let sent = (u1_hi - u1_lo) - (h_hi - h_lo);
    p.reserve(1 + 8 + 24 + (sent + j + k + 1) * r * 8);
    p.push(TAG_STEP_OWNED);
    put_u64(p, epoch);
    put_u32(p, i as u32);
    put_u32(p, j as u32);
    put_u32(p, k as u32);
    put_u32(p, r as u32);
    put_u32(p, u1_lo as u32);
    put_u32(p, u1_hi as u32);
    put_f64s(p, &model.u1.as_slice()[u1_lo * r..h_lo * r]);
    put_f64s(p, &model.u1.as_slice()[h_hi * r..u1_hi * r]);
    put_f64s(p, model.u2.as_slice());
    put_f64s(p, model.u3.as_slice());
    put_f64s(p, &model.h);
}

/// Decode [`TAG_STEP_OWNED`], splicing the receiver's resident owned
/// `U¹` rows (`res_u1`, the full `own` range slab) into the hole. The
/// resident bytes are the same bits the coordinator's model holds for
/// those rows, so the rebuilt window is bit-identical to a plain
/// [`decode_step`] of the full broadcast.
pub(crate) fn decode_step_owned(
    payload: &[u8],
    res_u1: &[f64],
    own: (usize, usize),
) -> Result<(u64, TcssModel), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_STEP_OWNED, "StepOwned")?;
    let epoch = r.u64("epoch")?;
    let i = r.u32("dim I")? as usize;
    let j = r.u32("dim J")? as usize;
    let k = r.u32("dim K")? as usize;
    let rank = r.u32("rank")? as usize;
    let u1_lo = r.u32("u1 window lo")? as usize;
    let u1_hi = r.u32("u1 window hi")? as usize;
    if u1_lo > u1_hi || u1_hi > i {
        return Err(WireError::Malformed(format!(
            "U1 window {u1_lo}..{u1_hi} outside dimension {i}"
        )));
    }
    if own.0 > own.1 || own.1 > i || res_u1.len() != (own.1 - own.0) * rank {
        return Err(WireError::Malformed(format!(
            "resident rows {}..{} ({} elems) inconsistent with dim {i} rank {rank}",
            own.0,
            own.1,
            res_u1.len()
        )));
    }
    let (h_lo, h_hi) = u1_hole(own, u1_lo, u1_hi);
    let u1 = {
        let mut data = vec![0.0; i * rank];
        let mut seg = Vec::new();
        r.f64s_into((h_lo - u1_lo) * rank, &mut seg, "U1 window head")?;
        data[u1_lo * rank..h_lo * rank].copy_from_slice(&seg);
        seg.clear();
        r.f64s_into((u1_hi - h_hi) * rank, &mut seg, "U1 window tail")?;
        data[h_hi * rank..u1_hi * rank].copy_from_slice(&seg);
        // Empty holes can clamp outside the owned range (a window that
        // never reaches the owned rows); only index `res_u1` when there
        // is something to splice.
        if h_lo < h_hi {
            data[h_lo * rank..h_hi * rank]
                .copy_from_slice(&res_u1[(h_lo - own.0) * rank..(h_hi - own.0) * rank]);
        }
        Matrix::from_vec(i, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad U1 factor: {e}")))?
    };
    let mut factor = |rows: usize, what: &str| -> Result<Matrix, WireError> {
        let mut data = Vec::new();
        r.f64s_into(rows * rank, &mut data, what)?;
        Matrix::from_vec(rows, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad {what} factor: {e}")))
    };
    let u2 = factor(j, "U2")?;
    let u3 = factor(k, "U3")?;
    let mut h = Vec::new();
    r.f64s_into(rank, &mut h, "h")?;
    r.done()?;
    let mut model = TcssModel::try_new(u1, u2, u3)
        .map_err(|e| WireError::Malformed(format!("inconsistent model: {e}")))?;
    model.h = h;
    Ok((epoch, model))
}

/// Worker → coordinator: per-chunk sparse deltas for one step, in
/// ascending global chunk order, **un-merged** — the coordinator replays
/// each chunk's [`SparseGrads::scatter_into`] adds itself, in global chunk
/// order, so a worker-side pre-merge can never change the float stream.
#[cfg(test)]
pub(crate) fn encode_deltas(
    epoch: u64,
    busy_ns: u64,
    rank: usize,
    chunks: &[(f64, SparseGrads)],
) -> Vec<u8> {
    let mut p = Vec::new();
    encode_deltas_into(&mut p, epoch, busy_ns, rank, chunks);
    p
}

/// [`encode_deltas`] appending into a caller-owned buffer so the worker's
/// per-epoch reply reuses its allocation across epochs.
pub(crate) fn encode_deltas_into(
    p: &mut Vec<u8>,
    epoch: u64,
    busy_ns: u64,
    rank: usize,
    chunks: &[(f64, SparseGrads)],
) {
    p.push(TAG_DELTAS);
    put_u64(p, epoch);
    put_u64(p, busy_ns);
    put_u32(p, rank as u32);
    put_u32(p, chunks.len() as u32);
    for (loss, delta) in chunks {
        put_f64(p, *loss);
        let (r, factors, h) = delta.wire_parts();
        debug_assert_eq!(r, rank);
        for (rows, data) in factors {
            put_u32(p, rows.len() as u32);
            for &row in rows {
                put_u32(p, row);
            }
            put_f64s(p, data);
        }
        put_f64s(p, h);
    }
}

/// Peek a Deltas frame's epoch without applying it (the coordinator
/// discards frames from replayed epochs after a rollback).
pub(crate) fn deltas_epoch(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_DELTAS, "Deltas")?;
    r.u64("epoch")
}

/// Decode a Deltas frame, replaying each chunk's scatter adds directly
/// into `grads` and accumulating each chunk's loss into `l2` — one `+=`
/// per touched element / per chunk loss, in payload (= ascending chunk)
/// order, exactly the adds the in-process merge performs. Returns
/// `(busy_ns, chunks_applied)`.
pub(crate) fn apply_deltas(
    payload: &[u8],
    expect_epoch: u64,
    grads: &mut Grads,
    l2: &mut f64,
) -> Result<(u64, usize), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_DELTAS, "Deltas")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "deltas for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let busy_ns = r.u64("busy_ns")?;
    let rank = r.u32("rank")? as usize;
    if rank != grads.h.len() {
        return Err(WireError::Malformed(format!(
            "delta rank {rank} does not match model rank {}",
            grads.h.len()
        )));
    }
    let n_chunks = r.u32("chunk count")? as usize;
    let mut row_buf: Vec<u32> = Vec::new();
    for c in 0..n_chunks {
        *l2 += r.f64("chunk loss")?;
        for (f, rows_in_factor) in [
            (0usize, grads.u1.rows()),
            (1, grads.u2.rows()),
            (2, grads.u3.rows()),
        ] {
            let n_rows = r.u32("touched-row count")? as usize;
            row_buf.clear();
            row_buf.reserve(n_rows);
            for _ in 0..n_rows {
                row_buf.push(r.u32("row index")?);
            }
            let data = r.take(n_rows * rank * 8, "row data")?;
            let dense = match f {
                0 => &mut grads.u1,
                1 => &mut grads.u2,
                _ => &mut grads.u3,
            };
            for (slot, &row) in row_buf.iter().enumerate() {
                if row as usize >= rows_in_factor {
                    return Err(WireError::Malformed(format!(
                        "chunk {c} factor {f} touches row {row}, but it only has {rows_in_factor}"
                    )));
                }
                let src = &data[slot * rank * 8..(slot + 1) * rank * 8];
                for (d, s) in dense
                    .row_mut(row as usize)
                    .iter_mut()
                    .zip(src.chunks_exact(8))
                {
                    *d += f64::from_le_bytes(s.try_into().unwrap());
                }
            }
        }
        let h_bytes = r.take(rank * 8, "chunk h gradient")?;
        for (d, s) in grads.h.iter_mut().zip(h_bytes.chunks_exact(8)) {
            *d += f64::from_le_bytes(s.try_into().unwrap());
        }
    }
    r.done()?;
    Ok((busy_ns, n_chunks))
}

/// Coordinator → worker: clean exit.
pub(crate) fn encode_shutdown() -> Vec<u8> {
    vec![TAG_SHUTDOWN]
}

// ---------------------------------------------------------------------
// Tail-sharded protocol messages (see `super::sharded` for the epoch
// state machine). Every worker → coordinator message starts with
// `tag, epoch: u64, src: u32` so the coordinator can filter stale replay
// frames and route without a full decode.
// ---------------------------------------------------------------------

fn put_counted_f64s(p: &mut Vec<u8>, vs: &[f64]) {
    put_u32(p, vs.len() as u32);
    put_f64s(p, vs);
}

impl Reader<'_> {
    /// A `u32` count followed by that many `f64`s, validated against an
    /// expected element count.
    fn counted_f64s(
        &mut self,
        expect: usize,
        out: &mut Vec<f64>,
        what: &str,
    ) -> Result<(), WireError> {
        let n = self.u32(what)? as usize;
        if n != expect {
            return Err(WireError::Malformed(format!(
                "{what}: expected {expect} elements, got {n}"
            )));
        }
        self.f64s_into(n, out, what)
    }
}

/// Peek the epoch of any sharded message (all of them lead with
/// `tag, epoch: u64`), for stale-frame filtering without a full decode.
pub(crate) fn msg_epoch(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    r.u8("message tag")?;
    r.u64("epoch")
}

/// Peek `(epoch, src)` of any worker → coordinator sharded message.
pub(crate) fn msg_epoch_src(payload: &[u8]) -> Result<(u64, u32), WireError> {
    let mut r = Reader::new(payload);
    r.u8("message tag")?;
    let epoch = r.u64("epoch")?;
    let src = r.u32("src worker")?;
    Ok((epoch, src))
}

/// Coordinator → worker: install resident owned-range state — the model
/// rows, Adam moments, and step counter for the rows this worker owns.
/// Sent once after Setup and again on every rollback/respawn; a worker
/// accepts it at **any** receive point and resets its epoch state.
pub(crate) fn encode_adopt_into(
    p: &mut Vec<u8>,
    epoch: u64,
    t: u64,
    parts: [(&[f64], &[f64], &[f64]); 3],
) {
    p.push(TAG_ADOPT);
    put_u64(p, epoch);
    put_u64(p, t);
    for (w, m, v) in parts {
        debug_assert!(w.len() == m.len() && m.len() == v.len());
        put_counted_f64s(p, w);
        put_counted_f64s(p, m);
        put_counted_f64s(p, v);
    }
}

/// Decoded [`TAG_ADOPT`]: `(epoch, t, per-factor (w, m, v))`.
pub(crate) struct Adopt {
    /// Epoch label for diagnostics; a worker's reset does not depend on
    /// it (the FIFO stream already orders Adopt against Steps).
    #[allow(dead_code)]
    pub epoch: u64,
    pub t: u64,
    pub w: [Vec<f64>; 3],
    pub m: [Vec<f64>; 3],
    pub v: [Vec<f64>; 3],
}

pub(crate) fn decode_adopt(payload: &[u8], expect: [usize; 3]) -> Result<Adopt, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_ADOPT, "Adopt")?;
    let epoch = r.u64("epoch")?;
    let t = r.u64("adam t")?;
    let mut w: [Vec<f64>; 3] = Default::default();
    let mut m: [Vec<f64>; 3] = Default::default();
    let mut v: [Vec<f64>; 3] = Default::default();
    for f in 0..3 {
        r.counted_f64s(expect[f], &mut w[f], "adopted rows")?;
        r.counted_f64s(expect[f], &mut m[f], "adopted m")?;
        r.counted_f64s(expect[f], &mut v[f], "adopted v")?;
    }
    r.done()?;
    Ok(Adopt { epoch, t, w, m, v })
}

/// Worker → owner: un-merged row deltas for rows `dest` owns, in global
/// first-touch order (ascending chunk, first-touch within chunk). The
/// coordinator relays the raw frame verbatim.
pub(crate) fn encode_exch_into(
    p: &mut Vec<u8>,
    epoch: u64,
    src: u32,
    dest: u32,
    rank: usize,
    parts: [(&[u32], &[f64]); 3],
) {
    p.push(TAG_EXCH);
    put_u64(p, epoch);
    put_u32(p, src);
    put_u32(p, dest);
    put_u32(p, rank as u32);
    for (rows, data) in parts {
        debug_assert_eq!(rows.len() * rank, data.len());
        put_u32(p, rows.len() as u32);
        for &row in rows {
            put_u32(p, row);
        }
        put_f64s(p, data);
    }
}

/// Peek `(epoch, src, dest)` of an Exch payload (the relay routes on
/// these without decoding the body).
pub(crate) fn exch_header(payload: &[u8]) -> Result<(u64, u32, u32), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_EXCH, "Exch")?;
    let epoch = r.u64("epoch")?;
    let src = r.u32("src worker")?;
    let dest = r.u32("dest worker")?;
    Ok((epoch, src, dest))
}

/// Replay an Exch payload's row adds into the receiver's owned-range
/// gradient slabs (one `+=` per element, in payload order). `ranges` are
/// the receiver's owned `[lo, hi)` row ranges per factor; `bufs` are the
/// matching `(hi - lo) * rank` dense accumulators.
pub(crate) fn apply_exch(
    payload: &[u8],
    expect_epoch: u64,
    rank: usize,
    ranges: [(usize, usize); 3],
    bufs: &mut [Vec<f64>; 3],
) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_EXCH, "Exch")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "exchange for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let _src = r.u32("src worker")?;
    let _dest = r.u32("dest worker")?;
    let got_rank = r.u32("rank")? as usize;
    if got_rank != rank {
        return Err(WireError::Malformed(format!(
            "exchange rank {got_rank} does not match model rank {rank}"
        )));
    }
    for (f, (lo, hi)) in ranges.into_iter().enumerate() {
        let n_rows = r.u32("touched-row count")? as usize;
        let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
        for _ in 0..n_rows {
            rows.push(r.u32("row index")? as usize);
        }
        let data = r.take(n_rows * rank * 8, "row data")?;
        let buf = &mut bufs[f];
        for (slot, &row) in rows.iter().enumerate() {
            if row < lo || row >= hi {
                return Err(WireError::Malformed(format!(
                    "exchange factor {f} touches row {row} outside owned range {lo}..{hi}"
                )));
            }
            let src = &data[slot * rank * 8..(slot + 1) * rank * 8];
            for (d, s) in buf[(row - lo) * rank..(row - lo + 1) * rank]
                .iter_mut()
                .zip(src.chunks_exact(8))
            {
                *d += f64::from_le_bytes(s.try_into().unwrap());
            }
        }
    }
    r.done()?;
    Ok(())
}

/// Worker → coordinator: per-chunk losses and dense `h` deltas, ascending
/// chunk order — the coordinator owns `h` and folds the global loss.
pub(crate) fn encode_chunk_stats_into(
    p: &mut Vec<u8>,
    epoch: u64,
    src: u32,
    rank: usize,
    chunks: &[(f64, SparseGrads)],
) {
    p.push(TAG_CHUNK_STATS);
    put_u64(p, epoch);
    put_u32(p, src);
    put_u32(p, rank as u32);
    put_u32(p, chunks.len() as u32);
    for (loss, delta) in chunks {
        put_f64(p, *loss);
        let (r, _factors, h) = delta.wire_parts();
        debug_assert_eq!(r, rank);
        put_f64s(p, h);
    }
}

/// Decoded [`TAG_CHUNK_STATS`]: per-chunk losses plus the flattened
/// `n_chunks × rank` `h` deltas.
pub(crate) fn decode_chunk_stats(
    payload: &[u8],
    expect_epoch: u64,
    rank: usize,
) -> Result<(u32, Vec<f64>, Vec<f64>), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_CHUNK_STATS, "ChunkStats")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "chunk stats for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let src = r.u32("src worker")?;
    let got_rank = r.u32("rank")? as usize;
    if got_rank != rank {
        return Err(WireError::Malformed(format!(
            "chunk stats rank {got_rank} does not match model rank {rank}"
        )));
    }
    let n = r.u32("chunk count")? as usize;
    let mut losses = Vec::with_capacity(n.min(1 << 20));
    let mut h = Vec::new();
    for _ in 0..n {
        losses.push(r.f64("chunk loss")?);
        r.f64s_into(rank, &mut h, "chunk h delta")?;
    }
    r.done()?;
    Ok((src, losses, h))
}

/// Coordinator → worker: the epoch's gradient tail, in one of three
/// shapes (the mode byte after the epoch):
///
/// * `0` — tail inactive; the worker must skip the add entirely
///   (adding zeros could flip `-0.0` accumulators to `+0.0`).
/// * `1` — dense owned-range tail rows (Gram + Hausdorff head), added
///   with a plain axpy. Shipped on Hausdorff epochs, whose gradient has
///   no compact factorization.
/// * `2` — the three `r × r` whole-data D matrices; the worker rebuilds
///   its owned tail rows as `2·U^f·D^f` with
///   [`tcss_linalg::Matrix::row_product_into`], bit-for-bit what the
///   coordinator's dense path computes, at ~`3r²` floats on the wire
///   instead of the owned row count.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TailMsg {
    Inactive,
    Dense([Vec<f64>; 3]),
    Gram([Vec<f64>; 3]),
}

pub(crate) fn encode_tail_inactive_into(p: &mut Vec<u8>, epoch: u64) {
    p.push(TAG_TAIL_ROWS);
    put_u64(p, epoch);
    p.push(0);
}

pub(crate) fn encode_tail_rows_into(p: &mut Vec<u8>, epoch: u64, parts: [&[f64]; 3]) {
    p.push(TAG_TAIL_ROWS);
    put_u64(p, epoch);
    p.push(1);
    for part in parts {
        put_counted_f64s(p, part);
    }
}

pub(crate) fn encode_tail_gram_into(p: &mut Vec<u8>, epoch: u64, d: &[tcss_linalg::Matrix; 3]) {
    p.push(TAG_TAIL_ROWS);
    put_u64(p, epoch);
    p.push(2);
    for m in d {
        put_counted_f64s(p, m.as_slice());
    }
}

/// Decode [`TAG_TAIL_ROWS`]. `expect` is the per-factor owned-range
/// element count (dense mode), `rank` the model rank (gram mode ships
/// `rank²` elements per factor).
pub(crate) fn decode_tail_rows(
    payload: &[u8],
    expect_epoch: u64,
    expect: [usize; 3],
    rank: usize,
) -> Result<TailMsg, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_TAIL_ROWS, "TailRows")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "tail rows for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let mode = r.u8("tail mode")?;
    match mode {
        0 => {
            r.done()?;
            Ok(TailMsg::Inactive)
        }
        1 => {
            let mut parts: [Vec<f64>; 3] = Default::default();
            for f in 0..3 {
                r.counted_f64s(expect[f], &mut parts[f], "tail rows")?;
            }
            r.done()?;
            Ok(TailMsg::Dense(parts))
        }
        2 => {
            let mut mats: [Vec<f64>; 3] = Default::default();
            for m in &mut mats {
                r.counted_f64s(rank * rank, m, "tail gram matrix")?;
            }
            r.done()?;
            Ok(TailMsg::Gram(mats))
        }
        other => Err(WireError::Malformed(format!("unknown tail mode {other}"))),
    }
}

/// Worker → coordinator: per-owned-row gradient self-dots, row-ascending
/// per factor — the coordinator folds these into the global gradient norm
/// in factor-major, worker-ascending order.
pub(crate) fn encode_norm_part_into(p: &mut Vec<u8>, epoch: u64, src: u32, dots: [&[f64]; 3]) {
    p.push(TAG_NORM_PART);
    put_u64(p, epoch);
    put_u32(p, src);
    for d in dots {
        put_counted_f64s(p, d);
    }
}

pub(crate) fn decode_norm_part(
    payload: &[u8],
    expect_epoch: u64,
    expect: [usize; 3],
) -> Result<(u32, [Vec<f64>; 3]), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_NORM_PART, "NormPartial")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "norm partial for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let src = r.u32("src worker")?;
    let mut dots: [Vec<f64>; 3] = Default::default();
    for f in 0..3 {
        r.counted_f64s(expect[f], &mut dots[f], "row dots")?;
    }
    r.done()?;
    Ok((src, dots))
}

/// Coordinator → worker: the divergence watchdog passed; apply Adam to
/// your owned rows with this effective learning rate (`lr · lr_scale`,
/// multiplied once on the coordinator so every peer uses the same bits).
pub(crate) fn encode_verdict_into(p: &mut Vec<u8>, epoch: u64, lr_eff: f64) {
    p.push(TAG_VERDICT);
    put_u64(p, epoch);
    put_f64(p, lr_eff);
}

pub(crate) fn decode_verdict(payload: &[u8], expect_epoch: u64) -> Result<f64, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_VERDICT, "Verdict")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "verdict for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let lr_eff = r.f64("effective lr")?;
    r.done()?;
    Ok(lr_eff)
}

/// `busy_ns` lives at this payload offset in an UpdatedRows message
/// (tag + epoch + src); the worker patches the real figure over the
/// placeholder after encoding, before framing.
pub(crate) const UPD_ROWS_BUSY_OFFSET: usize = 13;

/// Worker → coordinator: Adam-updated factor rows for the owned ranges —
/// the coordinator splices them into the authoritative model.
pub(crate) fn encode_upd_rows_into(
    p: &mut Vec<u8>,
    epoch: u64,
    src: u32,
    busy_ns: u64,
    parts: [&[f64]; 3],
) {
    p.push(TAG_UPD_ROWS);
    put_u64(p, epoch);
    put_u32(p, src);
    put_u64(p, busy_ns);
    for part in parts {
        put_counted_f64s(p, part);
    }
}

/// Decode [`TAG_UPD_ROWS`], copying the updated rows straight into the
/// caller's model slices (no intermediate buffer). Returns `busy_ns`.
pub(crate) fn apply_upd_rows(
    payload: &[u8],
    expect_epoch: u64,
    dests: [&mut [f64]; 3],
) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_UPD_ROWS, "UpdatedRows")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "updated rows for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let _src = r.u32("src worker")?;
    let busy_ns = r.u64("busy_ns")?;
    for dest in dests {
        let n = r.u32("updated row count")? as usize;
        if n != dest.len() {
            return Err(WireError::Malformed(format!(
                "updated rows: expected {} elements, got {n}",
                dest.len()
            )));
        }
        let bytes = r.take(n * 8, "updated row data")?;
        for (d, s) in dest.iter_mut().zip(bytes.chunks_exact(8)) {
            *d = f64::from_le_bytes(s.try_into().unwrap());
        }
    }
    r.done()?;
    Ok(busy_ns)
}

/// Coordinator → worker: ship your resident Adam moments so the
/// coordinator can assemble a worker-count-independent checkpoint.
pub(crate) fn encode_snap_req_into(p: &mut Vec<u8>, epoch: u64) {
    p.push(TAG_SNAP_REQ);
    put_u64(p, epoch);
}

pub(crate) fn decode_snap_req(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_SNAP_REQ, "SnapReq")?;
    let epoch = r.u64("epoch")?;
    r.done()?;
    Ok(epoch)
}

/// Worker → coordinator: resident `m`/`v` moments for the owned ranges.
pub(crate) fn encode_snap_rows_into(
    p: &mut Vec<u8>,
    epoch: u64,
    src: u32,
    m: [&[f64]; 3],
    v: [&[f64]; 3],
) {
    p.push(TAG_SNAP_ROWS);
    put_u64(p, epoch);
    put_u32(p, src);
    for part in m {
        put_counted_f64s(p, part);
    }
    for part in v {
        put_counted_f64s(p, part);
    }
}

/// Decode [`TAG_SNAP_ROWS`], splicing the moments into the caller's
/// full-model Adam slices.
pub(crate) fn apply_snap_rows(
    payload: &[u8],
    expect_epoch: u64,
    m_dests: [&mut [f64]; 3],
    v_dests: [&mut [f64]; 3],
) -> Result<(), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_SNAP_ROWS, "SnapRows")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "snap rows for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let _src = r.u32("src worker")?;
    for dest in m_dests.into_iter().chain(v_dests) {
        let n = r.u32("moment count")? as usize;
        if n != dest.len() {
            return Err(WireError::Malformed(format!(
                "snap rows: expected {} elements, got {n}",
                dest.len()
            )));
        }
        let bytes = r.take(n * 8, "moment data")?;
        for (d, s) in dest.iter_mut().zip(bytes.chunks_exact(8)) {
            *d = f64::from_le_bytes(s.try_into().unwrap());
        }
    }
    r.done()?;
    Ok(())
}

/// The tag of a decoded payload (empty payloads are malformed).
pub(crate) fn tag_of(payload: &[u8]) -> Result<u8, WireError> {
    payload
        .first()
        .copied()
        .ok_or_else(|| WireError::Malformed("empty message payload".into()))
}

fn expect_tag(r: &mut Reader<'_>, tag: u8, name: &str) -> Result<(), WireError> {
    let got = r.u8("message tag")?;
    if got != tag {
        return Err(WireError::Malformed(format!(
            "expected {name} (tag {tag}), got tag {got}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worker patches `busy_ns` over its placeholder after encoding
    /// (so encode time itself is counted); the field must stay at bytes
    /// 9..17 of the Deltas payload.
    #[test]
    fn deltas_busy_ns_lives_at_bytes_9_to_17() {
        let (u1, u2, u3) = crate::init::random_init((2, 2, 2), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let mut payload = encode_deltas(3, 0, 2, &[]);
        payload[9..17].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        let mut grads = Grads::zeros(&model);
        let mut l2 = 0.0;
        let (busy, n) = apply_deltas(&payload, 3, &mut grads, &mut l2).expect("decodes");
        assert_eq!(busy, 0xDEAD_BEEF);
        assert_eq!(n, 0);
    }

    #[test]
    fn frame_roundtrip_arbitrary_split() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![42], (0..255).collect()];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        // Byte-at-a-time must decode identically to all-at-once.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        dec.finish().unwrap();
        assert_eq!(got, payloads);
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let mut f = encode_frame(b"delta payload");
        f[HEADER_LEN + 3] ^= 0x10;
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch { .. }), "{err}");
        // Poisoned afterwards.
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn oversized_frame_is_typed() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err}");
    }

    #[test]
    fn truncated_stream_is_typed_at_eof() {
        let f = encode_frame(b"whole frame");
        let mut dec = FrameDecoder::new();
        dec.push(&f[..f.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        let err = dec.finish().unwrap_err();
        assert!(matches!(err, WireError::TruncatedEof { .. }), "{err}");
    }

    #[test]
    fn setup_roundtrip() {
        let setup = Setup {
            dims: (6, 5, 4),
            rank: 3,
            w_plus: 0.95,
            w_minus: 0.05,
            loss: WireLoss::NegSampling,
            seed: 0xDEADBEEF,
            chunk_start: 2,
            chunk_end: 7,
            threads: 2,
            n_workers: 3,
            tail_shard: true,
            weight_decay: 0.015,
            entries: vec![
                TensorEntry {
                    i: 1,
                    j: 2,
                    k: 3,
                    value: 1.0,
                },
                TensorEntry {
                    i: 5,
                    j: 0,
                    k: 0,
                    value: -0.25,
                },
            ],
        };
        let s = decode_setup(&encode_setup(&setup)).unwrap();
        assert_eq!(s.dims, setup.dims);
        assert_eq!(s.rank, setup.rank);
        assert_eq!(s.loss, setup.loss);
        assert_eq!(s.seed, setup.seed);
        assert_eq!((s.chunk_start, s.chunk_end), (2, 7));
        assert_eq!(s.threads, 2);
        assert_eq!(s.n_workers, 3);
        assert!(s.tail_shard);
        assert_eq!(s.weight_decay.to_bits(), 0.015f64.to_bits());
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[1].value.to_bits(), (-0.25f64).to_bits());
    }

    #[test]
    fn setup_rejects_out_of_bounds_entry() {
        let setup = Setup {
            dims: (2, 2, 2),
            rank: 1,
            w_plus: 0.9,
            w_minus: 0.1,
            loss: WireLoss::L2Entries,
            seed: 0,
            chunk_start: 0,
            chunk_end: 1,
            threads: 1,
            n_workers: 1,
            tail_shard: false,
            weight_decay: 0.0,
            entries: vec![TensorEntry {
                i: 2,
                j: 0,
                k: 0,
                value: 1.0,
            }],
        };
        let err = decode_setup(&encode_setup(&setup)).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }

    #[test]
    fn step_roundtrip_is_bit_exact() {
        let u1 =
            Matrix::from_vec(3, 2, vec![0.1, -0.2, 1e-300, f64::MIN_POSITIVE, 3.0, 4.0]).unwrap();
        let u2 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u3 = Matrix::from_vec(2, 2, vec![-1.0, -2.0, -3.0, -4.0]).unwrap();
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![0.5, -0.0];
        let (epoch, decoded) = decode_step(&encode_step(17, &model, 0, 3)).unwrap();
        assert_eq!(epoch, 17);

        // A partial U¹ window round-trips the shipped rows bit-exactly and
        // zero-fills the rest.
        let (_, windowed) = decode_step(&encode_step(17, &model, 1, 3)).unwrap();
        assert_eq!(windowed.u1.row(0), &[0.0, 0.0]);
        assert_eq!(windowed.u1.row(1), model.u1.row(1));
        assert_eq!(windowed.u1.row(2), model.u1.row(2));
        let bits = |m: &TcssModel| -> Vec<u64> {
            m.u1.as_slice()
                .iter()
                .chain(m.u2.as_slice())
                .chain(m.u3.as_slice())
                .chain(&m.h)
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&model), bits(&decoded));
    }

    /// StepOwned with a resident fill must land on the same bits as a
    /// plain Step of the full window, for holes at every position in the
    /// window — interior, flush with either edge, covering it entirely,
    /// and disjoint from it.
    #[test]
    fn step_owned_matches_full_step_bitwise() {
        let r = 2usize;
        let u1 =
            Matrix::from_vec(6, r, (0..12).map(|v| (v as f64) * 0.125 + 1e-300).collect()).unwrap();
        let u2 = Matrix::from_vec(2, r, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u3 = Matrix::from_vec(2, r, vec![-1.0, -2.0, -3.0, -4.0]).unwrap();
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![0.5, -0.0];
        for (lo, hi, own) in [
            (1, 5, (2, 4)), // interior hole
            (1, 5, (0, 3)), // hole flush with the window start
            (1, 5, (4, 6)), // hole flush with the window end
            (2, 4, (0, 6)), // owned range covers the whole window
            (0, 2, (4, 6)), // owned range disjoint from the window
            (0, 6, (0, 6)), // everything resident, nothing shipped
        ] {
            let mut p = Vec::new();
            encode_step_owned_into(&mut p, 17, &model, lo, hi, own);
            let res: Vec<f64> = model.u1.as_slice()[own.0 * r..own.1 * r].to_vec();
            let (epoch, got) = decode_step_owned(&p, &res, own).unwrap();
            assert_eq!(epoch, 17);
            let (_, want) = decode_step(&encode_step(17, &model, lo, hi)).unwrap();
            // The hole is own ∩ window and the resident bits equal the
            // coordinator's model bits, so the rebuilt model must match
            // the full-window decode everywhere (zero fill included).
            assert_eq!(
                got.u1.as_slice(),
                want.u1.as_slice(),
                "{lo}..{hi} own {own:?}"
            );
            assert_eq!(got.u2.as_slice(), want.u2.as_slice());
            assert_eq!(got.u3.as_slice(), want.u3.as_slice());
            assert_eq!(got.h, want.h);
        }
    }

    #[test]
    fn deltas_apply_matches_scatter_into_bitwise() {
        use crate::init::random_init;
        use crate::sparse_grads::{backprop_entry_sparse, GradScratch};
        let (u1, u2, u3) = random_init((5, 6, 4), 3, 11);
        let model = TcssModel::new(u1, u2, u3);
        let mut scratch = GradScratch::for_model(&model);
        let mut chunks = Vec::new();
        for c in 0..3usize {
            let mut delta = SparseGrads::new();
            delta.begin(&model);
            backprop_entry_sparse(
                &model,
                &mut delta,
                &mut scratch,
                c,
                c + 1,
                c % 4,
                0.5 + c as f64,
            );
            backprop_entry_sparse(&model, &mut delta, &mut scratch, c, 0, 0, -1.25);
            delta.detach(&mut scratch);
            chunks.push((0.125 * (c as f64 + 1.0), delta));
        }
        let mut direct = Grads::zeros(&model);
        let mut direct_loss = 0.0;
        for (l, d) in &chunks {
            direct_loss += l;
            d.scatter_into(&mut direct);
        }
        let payload = encode_deltas(9, 1234, model.rank(), &chunks);
        assert_eq!(deltas_epoch(&payload).unwrap(), 9);
        let mut wired = Grads::zeros(&model);
        let mut wired_loss = 0.0;
        let (busy, n) = apply_deltas(&payload, 9, &mut wired, &mut wired_loss).unwrap();
        assert_eq!((busy, n), (1234, 3));
        assert_eq!(direct_loss.to_bits(), wired_loss.to_bits());
        let bits = |g: &Grads| -> Vec<u64> {
            g.u1.as_slice()
                .iter()
                .chain(g.u2.as_slice())
                .chain(g.u3.as_slice())
                .chain(&g.h)
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&direct), bits(&wired));
    }

    #[test]
    fn frame_buf_matches_encode_frame_and_reuses_allocation() {
        let mut buf = FrameBuf::new();
        for payload in [b"abc".as_slice(), b"".as_slice(), b"longer payload!!"] {
            let p = buf.payload();
            p.extend_from_slice(payload);
            assert_eq!(buf.finish(), encode_frame(payload).as_slice());
        }
        // Patching through payload_mut lands inside the checksummed bytes.
        let p = buf.payload();
        p.extend_from_slice(&[0u8; 8]);
        buf.payload_mut()[..8].copy_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        let framed = buf.finish().to_vec();
        let mut dec = FrameDecoder::new();
        dec.push(&framed);
        let out = dec.next_frame().unwrap().unwrap();
        assert_eq!(out, 0x0123_4567_89AB_CDEFu64.to_le_bytes());
    }

    #[test]
    fn read_raw_frame_roundtrips_and_rejects_corruption() {
        let good = encode_frame(b"exchange body");
        let raw = read_raw_frame(&mut &good[..]).unwrap().unwrap();
        assert_eq!(raw, good);
        assert_eq!(raw_frame_payload(&raw), b"exchange body");
        // Clean EOF between frames.
        assert!(read_raw_frame(&mut &[][..]).unwrap().is_none());
        // Truncated and corrupt streams are typed errors.
        assert!(read_raw_frame(&mut &good[..good.len() - 2]).is_err());
        let mut bad = good;
        bad[HEADER_LEN + 1] ^= 0x40;
        assert!(read_raw_frame(&mut &bad[..]).is_err());
    }

    #[test]
    fn adopt_roundtrip_is_bit_exact() {
        let mut p = Vec::new();
        let w = [vec![1.5, -0.0], vec![2.0], vec![1e-300, 4.0, 5.0]];
        let m = [vec![0.1, 0.2], vec![0.3], vec![0.4, 0.5, 0.6]];
        let v = [vec![9.0, 8.0], vec![7.0], vec![6.0, 5.0, 4.0]];
        encode_adopt_into(
            &mut p,
            11,
            42,
            [
                (&w[0][..], &m[0][..], &v[0][..]),
                (&w[1][..], &m[1][..], &v[1][..]),
                (&w[2][..], &m[2][..], &v[2][..]),
            ],
        );
        let a = decode_adopt(&p, [2, 1, 3]).unwrap();
        assert_eq!((a.epoch, a.t), (11, 42));
        assert_eq!(a.w[0][1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(a.w, w);
        assert_eq!(a.m, m);
        assert_eq!(a.v, v);
        assert!(decode_adopt(&p, [2, 2, 3]).is_err());
    }

    #[test]
    fn exch_apply_replays_adds_in_payload_order() {
        let mut p = Vec::new();
        // rank 2, receiver owns u1 rows 2..5, u2 rows 0..1, u3 rows 0..0.
        let rows1 = [3u32, 2, 3];
        let data1 = [1.0, 2.0, 10.0, 20.0, 0.5, 0.25];
        encode_exch_into(
            &mut p,
            7,
            1,
            0,
            2,
            [
                (&rows1[..], &data1[..]),
                (&[0u32][..], &[-1.0, -2.0][..]),
                (&[][..], &[][..]),
            ],
        );
        assert_eq!(exch_header(&p).unwrap(), (7, 1, 0));
        let mut bufs = [vec![0.0; 6], vec![0.0; 2], vec![]];
        apply_exch(&p, 7, 2, [(2, 5), (0, 1), (0, 0)], &mut bufs).unwrap();
        // Row 3 accumulated twice (1.0+0.5, 2.0+0.25), row 2 once.
        assert_eq!(bufs[0], vec![10.0, 20.0, 1.5, 2.25, 0.0, 0.0]);
        assert_eq!(bufs[1], vec![-1.0, -2.0]);
        // Out-of-range rows and wrong epochs are typed errors.
        assert!(apply_exch(&p, 8, 2, [(2, 5), (0, 1), (0, 0)], &mut bufs).is_err());
        assert!(apply_exch(&p, 7, 2, [(3, 5), (0, 1), (0, 0)], &mut bufs).is_err());
    }

    #[test]
    fn chunk_stats_roundtrip() {
        use crate::sparse_grads::{backprop_entry_sparse, GradScratch};
        let (u1, u2, u3) = crate::init::random_init((3, 3, 3), 2, 9);
        let model = TcssModel::new(u1, u2, u3);
        let mut scratch = GradScratch::for_model(&model);
        let mut chunks = Vec::new();
        let mut want_h = Vec::new();
        for c in 0..2usize {
            let mut d = SparseGrads::new();
            d.begin(&model);
            backprop_entry_sparse(&model, &mut d, &mut scratch, c, c, c, 0.5 + c as f64);
            d.detach(&mut scratch);
            let (_, _, h) = d.wire_parts();
            want_h.extend_from_slice(h);
            chunks.push((0.25 * (c as f64 + 1.0), d));
        }
        let mut p = Vec::new();
        encode_chunk_stats_into(&mut p, 4, 2, 2, &chunks);
        assert_eq!(msg_epoch_src(&p).unwrap(), (4, 2));
        let (src, losses, h) = decode_chunk_stats(&p, 4, 2).unwrap();
        assert_eq!(src, 2);
        assert_eq!(losses, vec![0.25, 0.5]);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&h), bits(&want_h));
        assert!(decode_chunk_stats(&p, 5, 2).is_err());
    }

    #[test]
    fn tail_rows_all_modes_roundtrip() {
        let mut p = Vec::new();
        encode_tail_inactive_into(&mut p, 3);
        assert_eq!(
            decode_tail_rows(&p, 3, [2, 1, 0], 2).unwrap(),
            TailMsg::Inactive
        );
        p.clear();
        let parts = [vec![0.5, -0.5], vec![1e-20], vec![]];
        encode_tail_rows_into(&mut p, 3, [&parts[0], &parts[1], &parts[2]]);
        let got = decode_tail_rows(&p, 3, [2, 1, 0], 2).unwrap();
        assert_eq!(got, TailMsg::Dense(parts));
        assert!(decode_tail_rows(&p, 3, [1, 1, 0], 2).is_err());
        p.clear();
        let d = [
            tcss_linalg::Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            tcss_linalg::Matrix::zeros(2, 2),
            tcss_linalg::Matrix::identity(2),
        ];
        encode_tail_gram_into(&mut p, 3, &d);
        match decode_tail_rows(&p, 3, [2, 1, 0], 2).unwrap() {
            TailMsg::Gram(mats) => {
                for (got, want) in mats.iter().zip(d.iter()) {
                    assert_eq!(got.as_slice(), want.as_slice());
                }
            }
            other => panic!("expected gram tail, got {other:?}"),
        }
        // Wrong rank and an unknown mode byte are decode errors.
        assert!(decode_tail_rows(&p, 3, [2, 1, 0], 3).is_err());
        p.clear();
        p.push(TAG_TAIL_ROWS);
        put_u64(&mut p, 3);
        p.push(9);
        assert!(decode_tail_rows(&p, 3, [2, 1, 0], 2).is_err());
    }

    #[test]
    fn norm_part_verdict_and_snap_roundtrip() {
        let mut p = Vec::new();
        encode_norm_part_into(&mut p, 6, 1, [&[1.0, 2.0], &[3.0], &[]]);
        let (src, dots) = decode_norm_part(&p, 6, [2, 1, 0]).unwrap();
        assert_eq!(src, 1);
        assert_eq!(dots[0], vec![1.0, 2.0]);

        p.clear();
        encode_verdict_into(&mut p, 6, 0.00125);
        assert_eq!(
            decode_verdict(&p, 6).unwrap().to_bits(),
            0.00125f64.to_bits()
        );
        assert!(decode_verdict(&p, 7).is_err());

        p.clear();
        let m = [vec![0.25, 0.5], vec![0.75], vec![]];
        let v = [vec![1.25, 1.5], vec![1.75], vec![]];
        encode_snap_rows_into(&mut p, 6, 1, [&m[0], &m[1], &m[2]], [&v[0], &v[1], &v[2]]);
        let mut m_out = [vec![0.0; 2], vec![0.0], vec![]];
        let mut v_out = [vec![0.0; 2], vec![0.0], vec![]];
        {
            let [m0, m1, m2] = &mut m_out;
            let [v0, v1, v2] = &mut v_out;
            apply_snap_rows(&p, 6, [m0, m1, m2], [v0, v1, v2]).unwrap();
        }
        assert_eq!(m_out, m);
        assert_eq!(v_out, v);

        p.clear();
        encode_snap_req_into(&mut p, 9);
        assert_eq!(decode_snap_req(&p).unwrap(), 9);
    }

    #[test]
    fn upd_rows_splice_and_busy_patch() {
        let mut p = Vec::new();
        let parts = [vec![1.0, 2.0], vec![3.0], vec![]];
        encode_upd_rows_into(&mut p, 5, 2, 0, [&parts[0], &parts[1], &parts[2]]);
        p[UPD_ROWS_BUSY_OFFSET..UPD_ROWS_BUSY_OFFSET + 8]
            .copy_from_slice(&0xFEED_FACEu64.to_le_bytes());
        let mut d0 = vec![0.0; 2];
        let mut d1 = vec![0.0];
        let mut d2: Vec<f64> = vec![];
        let busy = apply_upd_rows(&p, 5, [&mut d0, &mut d1, &mut d2]).unwrap();
        assert_eq!(busy, 0xFEED_FACE);
        assert_eq!(d0, parts[0]);
        assert_eq!(d1, parts[1]);
        assert_eq!(msg_epoch_src(&p).unwrap(), (5, 2));
        assert!(apply_upd_rows(&p, 6, [&mut d0, &mut d1, &mut d2]).is_err());
    }

    #[test]
    fn deltas_for_wrong_epoch_are_rejected() {
        let payload = encode_deltas(3, 0, 2, &[]);
        let mut grads = Grads {
            u1: Matrix::zeros(1, 2),
            u2: Matrix::zeros(1, 2),
            u3: Matrix::zeros(1, 2),
            h: vec![0.0; 2],
        };
        let mut l2 = 0.0;
        let err = apply_deltas(&payload, 4, &mut grads, &mut l2).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }
}
