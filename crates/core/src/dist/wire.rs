//! Length-prefixed, checksummed framing and message codec for the
//! distributed-training transport.
//!
//! Same hand-rolled idiom as `tcss_serve::net::frame` (no async runtime,
//! no serialization crates), with one addition: every frame carries a
//! trailing [`crate::digest::fnv1a64`] checksum of its payload, so a torn
//! or corrupted delta exchange surfaces as a typed
//! [`WireError::ChecksumMismatch`] instead of silently perturbing
//! training. Wire format of one frame:
//!
//! ```text
//! [u32 LE payload length][payload bytes][u64 LE fnv1a64(payload)]
//! ```
//!
//! All multi-byte integers and floats are little-endian; `f64`s travel as
//! `to_le_bytes`/`from_le_bytes`, which round-trips every bit pattern —
//! the process-count-parity contract depends on that exactness.
//!
//! The decoder is push-based and cannot block or hang: feed it arbitrary
//! byte splits with [`FrameDecoder::push`], drain complete frames with
//! [`FrameDecoder::next_frame`], and signal EOF with
//! [`FrameDecoder::finish`]. A decoder that has reported an error is
//! poisoned: the stream cannot be resynchronized after a framing fault,
//! so further use keeps failing instead of mis-parsing.

use crate::digest::fnv1a64;
use crate::loss::Grads;
use crate::model::TcssModel;
use crate::sparse_grads::SparseGrads;
use tcss_linalg::Matrix;
use tcss_sparse::TensorEntry;

/// Bytes in the length prefix.
pub const HEADER_LEN: usize = 4;
/// Bytes in the checksum trailer.
pub const TRAILER_LEN: usize = 8;
/// Frame-size cap for the training transport. Delta frames scale with
/// `touched rows × rank`, and a full-model broadcast is `(I+J+K+1)·r`
/// doubles, so the cap is generous; anything larger is a corrupt length
/// prefix, not a real message.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Message tags (first payload byte).
pub(crate) const TAG_HELLO: u8 = 1;
pub(crate) const TAG_SETUP: u8 = 2;
pub(crate) const TAG_STEP: u8 = 3;
pub(crate) const TAG_DELTAS: u8 = 4;
pub(crate) const TAG_SHUTDOWN: u8 = 5;

/// Typed decode failures. Every malformed input maps to exactly one of
/// these — the codec never panics and the decoder never blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A length prefix declared a frame larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// Length the prefix declared.
        declared: usize,
        /// The decoder's cap.
        max: usize,
    },
    /// The stream ended mid-frame.
    TruncatedEof {
        /// Bytes left in the buffer when EOF was signalled.
        buffered: usize,
    },
    /// The payload checksum did not match its trailer.
    ChecksumMismatch {
        /// Checksum the trailer carried.
        expected: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
    /// A structurally invalid message payload (bad tag, truncated field,
    /// inconsistent dimensions).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            WireError::TruncatedEof { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
            WireError::ChecksumMismatch { expected, got } => write!(
                f,
                "frame checksum mismatch: trailer {expected:016x}, payload hashes to {got:016x}"
            ),
            WireError::Malformed(msg) => write!(f, "malformed message: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Frame encoding / decoding
// ---------------------------------------------------------------------

/// Encode one frame: length prefix, payload, checksum trailer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Push-based frame decoder. Mirrors `tcss_serve::net::frame::FrameDecoder`
/// (buffer + compaction + poisoning) with the checksum trailer added.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            poisoned: false,
        }
    }

    /// Append raw bytes from the transport. Accepts arbitrary splits —
    /// byte-at-a-time and whole-stream-at-once decode identically.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long sessions don't grow the buffer forever.
        if self.pos >= 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to extract the next complete, checksum-verified payload.
    /// `Ok(None)` means "need more bytes".
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.poisoned {
            return Err(WireError::Malformed(
                "decoder already failed; the stream cannot be resynchronized".into(),
            ));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(avail[..HEADER_LEN].try_into().unwrap()) as usize;
        if declared > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(WireError::Oversized {
                declared,
                max: MAX_FRAME_LEN,
            });
        }
        let total = HEADER_LEN + declared + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + declared];
        let expected = u64::from_le_bytes(avail[HEADER_LEN + declared..total].try_into().unwrap());
        let got = fnv1a64(payload);
        if got != expected {
            self.poisoned = true;
            return Err(WireError::ChecksumMismatch { expected, got });
        }
        let out = payload.to_vec();
        self.pos += total;
        Ok(Some(out))
    }

    /// Signal EOF: any buffered partial frame is a typed error.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.buffered() != 0 {
            return Err(WireError::TruncatedEof {
                buffered: self.buffered(),
            });
        }
        Ok(())
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a message payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed(format!(
                "payload truncated reading {what}: need {n} bytes, have {}",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// `n` contiguous `f64`s appended onto `out`.
    pub(crate) fn f64s_into(
        &mut self,
        n: usize,
        out: &mut Vec<f64>,
        what: &str,
    ) -> Result<(), WireError> {
        let bytes = self.take(n * 8, what)?;
        out.reserve(n);
        for c in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(c.try_into().unwrap()));
        }
        Ok(())
    }

    pub(crate) fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after message end",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Worker → coordinator greeting, sent immediately after connecting.
pub(crate) fn encode_hello(worker: u32) -> Vec<u8> {
    let mut p = vec![TAG_HELLO];
    put_u32(&mut p, worker);
    p
}

pub(crate) fn decode_hello(payload: &[u8]) -> Result<u32, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_HELLO, "Hello")?;
    let w = r.u32("worker id")?;
    r.done()?;
    Ok(w)
}

/// Which entry-chunk kernel the worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireLoss {
    /// [`crate::loss::l2_entry_chunk`] — the rewritten whole-data positive
    /// term (the Gram tail stays on the coordinator).
    L2Entries = 0,
    /// [`crate::loss::negative_sampling_chunk`] — positives plus sampled
    /// negatives, RNG keyed to the global chunk index.
    NegSampling = 1,
}

/// Everything a stateless worker needs to evaluate its chunk block:
/// tensor, weights, kernel choice, seed, the block of **global** chunk
/// indices it owns, and its thread count.
#[derive(Debug)]
pub(crate) struct Setup {
    pub dims: (usize, usize, usize),
    pub rank: usize,
    pub w_plus: f64,
    pub w_minus: f64,
    pub loss: WireLoss,
    pub seed: u64,
    pub chunk_start: usize,
    pub chunk_end: usize,
    pub threads: usize,
    pub entries: Vec<TensorEntry>,
}

pub(crate) fn encode_setup(s: &Setup) -> Vec<u8> {
    let mut p = vec![TAG_SETUP];
    put_u32(&mut p, s.dims.0 as u32);
    put_u32(&mut p, s.dims.1 as u32);
    put_u32(&mut p, s.dims.2 as u32);
    put_u32(&mut p, s.rank as u32);
    put_f64(&mut p, s.w_plus);
    put_f64(&mut p, s.w_minus);
    p.push(s.loss as u8);
    put_u64(&mut p, s.seed);
    put_u64(&mut p, s.chunk_start as u64);
    put_u64(&mut p, s.chunk_end as u64);
    put_u32(&mut p, s.threads as u32);
    put_u64(&mut p, s.entries.len() as u64);
    for e in &s.entries {
        put_u32(&mut p, e.i as u32);
        put_u32(&mut p, e.j as u32);
        put_u32(&mut p, e.k as u32);
        put_f64(&mut p, e.value);
    }
    p
}

pub(crate) fn decode_setup(payload: &[u8]) -> Result<Setup, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_SETUP, "Setup")?;
    let dims = (
        r.u32("dim I")? as usize,
        r.u32("dim J")? as usize,
        r.u32("dim K")? as usize,
    );
    let rank = r.u32("rank")? as usize;
    let w_plus = r.f64("w_plus")?;
    let w_minus = r.f64("w_minus")?;
    let loss = match r.u8("loss strategy")? {
        0 => WireLoss::L2Entries,
        1 => WireLoss::NegSampling,
        other => {
            return Err(WireError::Malformed(format!(
                "unknown loss strategy {other}"
            )))
        }
    };
    let seed = r.u64("seed")?;
    let chunk_start = r.u64("chunk_start")? as usize;
    let chunk_end = r.u64("chunk_end")? as usize;
    let threads = r.u32("threads")? as usize;
    let n = r.u64("entry count")? as usize;
    if chunk_start > chunk_end {
        return Err(WireError::Malformed(format!(
            "chunk block start {chunk_start} exceeds end {chunk_end}"
        )));
    }
    let mut entries = Vec::with_capacity(n.min(1 << 24));
    for idx in 0..n {
        let i = r.u32("entry i")? as usize;
        let j = r.u32("entry j")? as usize;
        let k = r.u32("entry k")? as usize;
        let value = r.f64("entry value")?;
        if i >= dims.0 || j >= dims.1 || k >= dims.2 {
            return Err(WireError::Malformed(format!(
                "entry {idx} index ({i}, {j}, {k}) out of bounds for {dims:?}"
            )));
        }
        entries.push(TensorEntry { i, j, k, value });
    }
    r.done()?;
    Ok(Setup {
        dims,
        rank,
        w_plus,
        w_minus,
        loss,
        seed,
        chunk_start,
        chunk_end,
        threads,
        entries,
    })
}

/// Coordinator → worker: "evaluate your chunk block against this model".
/// The full model travels every step — factors are a few hundred KB even
/// at bench scale, and a stateless worker is what makes respawn-and-replay
/// recovery trivially bit-exact.
/// Coordinator → worker: one epoch's model. `U²`/`U³`/`h` ship whole;
/// `U¹` ships only the row window `[u1_lo, u1_hi)` — for the entry-loss
/// kernels a worker only ever reads the `U¹` rows its contiguous (sorted
/// COO) chunk block touches, so the coordinator sends each worker its
/// window instead of broadcasting all of `U¹` `N` times. (Negative
/// sampling reads arbitrary rows, so there the coordinator passes the
/// full window.) Unsent rows decode as zeros and are never read, keeping
/// the float stream bit-identical.
pub(crate) fn encode_step(epoch: u64, model: &TcssModel, u1_lo: usize, u1_hi: usize) -> Vec<u8> {
    let (i, j, k) = model.dims();
    let r = model.rank();
    debug_assert!(u1_lo <= u1_hi && u1_hi <= i);
    let mut p = Vec::with_capacity(1 + 8 + 24 + ((u1_hi - u1_lo) + j + k + 1) * r * 8);
    p.push(TAG_STEP);
    put_u64(&mut p, epoch);
    put_u32(&mut p, i as u32);
    put_u32(&mut p, j as u32);
    put_u32(&mut p, k as u32);
    put_u32(&mut p, r as u32);
    put_u32(&mut p, u1_lo as u32);
    put_u32(&mut p, u1_hi as u32);
    put_f64s(&mut p, &model.u1.as_slice()[u1_lo * r..u1_hi * r]);
    put_f64s(&mut p, model.u2.as_slice());
    put_f64s(&mut p, model.u3.as_slice());
    put_f64s(&mut p, &model.h);
    p
}

pub(crate) fn decode_step(payload: &[u8]) -> Result<(u64, TcssModel), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_STEP, "Step")?;
    let epoch = r.u64("epoch")?;
    let i = r.u32("dim I")? as usize;
    let j = r.u32("dim J")? as usize;
    let k = r.u32("dim K")? as usize;
    let rank = r.u32("rank")? as usize;
    let u1_lo = r.u32("u1 window lo")? as usize;
    let u1_hi = r.u32("u1 window hi")? as usize;
    if u1_lo > u1_hi || u1_hi > i {
        return Err(WireError::Malformed(format!(
            "U1 window {u1_lo}..{u1_hi} outside dimension {i}"
        )));
    }
    let u1 = {
        let mut window = Vec::new();
        r.f64s_into((u1_hi - u1_lo) * rank, &mut window, "U1 window")?;
        let mut data = vec![0.0; i * rank];
        data[u1_lo * rank..u1_hi * rank].copy_from_slice(&window);
        Matrix::from_vec(i, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad U1 factor: {e}")))?
    };
    let mut factor = |rows: usize, what: &str| -> Result<Matrix, WireError> {
        let mut data = Vec::new();
        r.f64s_into(rows * rank, &mut data, what)?;
        Matrix::from_vec(rows, rank, data)
            .map_err(|e| WireError::Malformed(format!("bad {what} factor: {e}")))
    };
    let u2 = factor(j, "U2")?;
    let u3 = factor(k, "U3")?;
    let mut h = Vec::new();
    r.f64s_into(rank, &mut h, "h")?;
    r.done()?;
    let mut model = TcssModel::try_new(u1, u2, u3)
        .map_err(|e| WireError::Malformed(format!("inconsistent model: {e}")))?;
    model.h = h;
    Ok((epoch, model))
}

/// Worker → coordinator: per-chunk sparse deltas for one step, in
/// ascending global chunk order, **un-merged** — the coordinator replays
/// each chunk's [`SparseGrads::scatter_into`] adds itself, in global chunk
/// order, so a worker-side pre-merge can never change the float stream.
pub(crate) fn encode_deltas(
    epoch: u64,
    busy_ns: u64,
    rank: usize,
    chunks: &[(f64, SparseGrads)],
) -> Vec<u8> {
    let mut p = vec![TAG_DELTAS];
    put_u64(&mut p, epoch);
    put_u64(&mut p, busy_ns);
    put_u32(&mut p, rank as u32);
    put_u32(&mut p, chunks.len() as u32);
    for (loss, delta) in chunks {
        put_f64(&mut p, *loss);
        let (r, factors, h) = delta.wire_parts();
        debug_assert_eq!(r, rank);
        for (rows, data) in factors {
            put_u32(&mut p, rows.len() as u32);
            for &row in rows {
                put_u32(&mut p, row);
            }
            put_f64s(&mut p, data);
        }
        put_f64s(&mut p, h);
    }
    p
}

/// Peek a Deltas frame's epoch without applying it (the coordinator
/// discards frames from replayed epochs after a rollback).
pub(crate) fn deltas_epoch(payload: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_DELTAS, "Deltas")?;
    r.u64("epoch")
}

/// Decode a Deltas frame, replaying each chunk's scatter adds directly
/// into `grads` and accumulating each chunk's loss into `l2` — one `+=`
/// per touched element / per chunk loss, in payload (= ascending chunk)
/// order, exactly the adds the in-process merge performs. Returns
/// `(busy_ns, chunks_applied)`.
pub(crate) fn apply_deltas(
    payload: &[u8],
    expect_epoch: u64,
    grads: &mut Grads,
    l2: &mut f64,
) -> Result<(u64, usize), WireError> {
    let mut r = Reader::new(payload);
    expect_tag(&mut r, TAG_DELTAS, "Deltas")?;
    let epoch = r.u64("epoch")?;
    if epoch != expect_epoch {
        return Err(WireError::Malformed(format!(
            "deltas for epoch {epoch}, expected {expect_epoch}"
        )));
    }
    let busy_ns = r.u64("busy_ns")?;
    let rank = r.u32("rank")? as usize;
    if rank != grads.h.len() {
        return Err(WireError::Malformed(format!(
            "delta rank {rank} does not match model rank {}",
            grads.h.len()
        )));
    }
    let n_chunks = r.u32("chunk count")? as usize;
    let mut row_buf: Vec<u32> = Vec::new();
    for c in 0..n_chunks {
        *l2 += r.f64("chunk loss")?;
        for (f, rows_in_factor) in [
            (0usize, grads.u1.rows()),
            (1, grads.u2.rows()),
            (2, grads.u3.rows()),
        ] {
            let n_rows = r.u32("touched-row count")? as usize;
            row_buf.clear();
            row_buf.reserve(n_rows);
            for _ in 0..n_rows {
                row_buf.push(r.u32("row index")?);
            }
            let data = r.take(n_rows * rank * 8, "row data")?;
            let dense = match f {
                0 => &mut grads.u1,
                1 => &mut grads.u2,
                _ => &mut grads.u3,
            };
            for (slot, &row) in row_buf.iter().enumerate() {
                if row as usize >= rows_in_factor {
                    return Err(WireError::Malformed(format!(
                        "chunk {c} factor {f} touches row {row}, but it only has {rows_in_factor}"
                    )));
                }
                let src = &data[slot * rank * 8..(slot + 1) * rank * 8];
                for (d, s) in dense
                    .row_mut(row as usize)
                    .iter_mut()
                    .zip(src.chunks_exact(8))
                {
                    *d += f64::from_le_bytes(s.try_into().unwrap());
                }
            }
        }
        let h_bytes = r.take(rank * 8, "chunk h gradient")?;
        for (d, s) in grads.h.iter_mut().zip(h_bytes.chunks_exact(8)) {
            *d += f64::from_le_bytes(s.try_into().unwrap());
        }
    }
    r.done()?;
    Ok((busy_ns, n_chunks))
}

/// Coordinator → worker: clean exit.
pub(crate) fn encode_shutdown() -> Vec<u8> {
    vec![TAG_SHUTDOWN]
}

/// The tag of a decoded payload (empty payloads are malformed).
pub(crate) fn tag_of(payload: &[u8]) -> Result<u8, WireError> {
    payload
        .first()
        .copied()
        .ok_or_else(|| WireError::Malformed("empty message payload".into()))
}

fn expect_tag(r: &mut Reader<'_>, tag: u8, name: &str) -> Result<(), WireError> {
    let got = r.u8("message tag")?;
    if got != tag {
        return Err(WireError::Malformed(format!(
            "expected {name} (tag {tag}), got tag {got}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worker patches `busy_ns` over its placeholder after encoding
    /// (so encode time itself is counted); the field must stay at bytes
    /// 9..17 of the Deltas payload.
    #[test]
    fn deltas_busy_ns_lives_at_bytes_9_to_17() {
        let (u1, u2, u3) = crate::init::random_init((2, 2, 2), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let mut payload = encode_deltas(3, 0, 2, &[]);
        payload[9..17].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        let mut grads = Grads::zeros(&model);
        let mut l2 = 0.0;
        let (busy, n) = apply_deltas(&payload, 3, &mut grads, &mut l2).expect("decodes");
        assert_eq!(busy, 0xDEAD_BEEF);
        assert_eq!(n, 0);
    }

    #[test]
    fn frame_roundtrip_arbitrary_split() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![42], (0..255).collect()];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        // Byte-at-a-time must decode identically to all-at-once.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        dec.finish().unwrap();
        assert_eq!(got, payloads);
    }

    #[test]
    fn corrupt_payload_is_checksum_mismatch() {
        let mut f = encode_frame(b"delta payload");
        f[HEADER_LEN + 3] ^= 0x10;
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch { .. }), "{err}");
        // Poisoned afterwards.
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn oversized_frame_is_typed() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err}");
    }

    #[test]
    fn truncated_stream_is_typed_at_eof() {
        let f = encode_frame(b"whole frame");
        let mut dec = FrameDecoder::new();
        dec.push(&f[..f.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        let err = dec.finish().unwrap_err();
        assert!(matches!(err, WireError::TruncatedEof { .. }), "{err}");
    }

    #[test]
    fn setup_roundtrip() {
        let setup = Setup {
            dims: (6, 5, 4),
            rank: 3,
            w_plus: 0.95,
            w_minus: 0.05,
            loss: WireLoss::NegSampling,
            seed: 0xDEADBEEF,
            chunk_start: 2,
            chunk_end: 7,
            threads: 2,
            entries: vec![
                TensorEntry {
                    i: 1,
                    j: 2,
                    k: 3,
                    value: 1.0,
                },
                TensorEntry {
                    i: 5,
                    j: 0,
                    k: 0,
                    value: -0.25,
                },
            ],
        };
        let s = decode_setup(&encode_setup(&setup)).unwrap();
        assert_eq!(s.dims, setup.dims);
        assert_eq!(s.rank, setup.rank);
        assert_eq!(s.loss, setup.loss);
        assert_eq!(s.seed, setup.seed);
        assert_eq!((s.chunk_start, s.chunk_end), (2, 7));
        assert_eq!(s.threads, 2);
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[1].value.to_bits(), (-0.25f64).to_bits());
    }

    #[test]
    fn setup_rejects_out_of_bounds_entry() {
        let setup = Setup {
            dims: (2, 2, 2),
            rank: 1,
            w_plus: 0.9,
            w_minus: 0.1,
            loss: WireLoss::L2Entries,
            seed: 0,
            chunk_start: 0,
            chunk_end: 1,
            threads: 1,
            entries: vec![TensorEntry {
                i: 2,
                j: 0,
                k: 0,
                value: 1.0,
            }],
        };
        let err = decode_setup(&encode_setup(&setup)).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }

    #[test]
    fn step_roundtrip_is_bit_exact() {
        let u1 =
            Matrix::from_vec(3, 2, vec![0.1, -0.2, 1e-300, f64::MIN_POSITIVE, 3.0, 4.0]).unwrap();
        let u2 = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let u3 = Matrix::from_vec(2, 2, vec![-1.0, -2.0, -3.0, -4.0]).unwrap();
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![0.5, -0.0];
        let (epoch, decoded) = decode_step(&encode_step(17, &model, 0, 3)).unwrap();
        assert_eq!(epoch, 17);

        // A partial U¹ window round-trips the shipped rows bit-exactly and
        // zero-fills the rest.
        let (_, windowed) = decode_step(&encode_step(17, &model, 1, 3)).unwrap();
        assert_eq!(windowed.u1.row(0), &[0.0, 0.0]);
        assert_eq!(windowed.u1.row(1), model.u1.row(1));
        assert_eq!(windowed.u1.row(2), model.u1.row(2));
        let bits = |m: &TcssModel| -> Vec<u64> {
            m.u1.as_slice()
                .iter()
                .chain(m.u2.as_slice())
                .chain(m.u3.as_slice())
                .chain(&m.h)
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&model), bits(&decoded));
    }

    #[test]
    fn deltas_apply_matches_scatter_into_bitwise() {
        use crate::init::random_init;
        use crate::sparse_grads::{backprop_entry_sparse, GradScratch};
        let (u1, u2, u3) = random_init((5, 6, 4), 3, 11);
        let model = TcssModel::new(u1, u2, u3);
        let mut scratch = GradScratch::for_model(&model);
        let mut chunks = Vec::new();
        for c in 0..3usize {
            let mut delta = SparseGrads::new();
            delta.begin(&model);
            backprop_entry_sparse(
                &model,
                &mut delta,
                &mut scratch,
                c,
                c + 1,
                c % 4,
                0.5 + c as f64,
            );
            backprop_entry_sparse(&model, &mut delta, &mut scratch, c, 0, 0, -1.25);
            delta.detach(&mut scratch);
            chunks.push((0.125 * (c as f64 + 1.0), delta));
        }
        let mut direct = Grads::zeros(&model);
        let mut direct_loss = 0.0;
        for (l, d) in &chunks {
            direct_loss += l;
            d.scatter_into(&mut direct);
        }
        let payload = encode_deltas(9, 1234, model.rank(), &chunks);
        assert_eq!(deltas_epoch(&payload).unwrap(), 9);
        let mut wired = Grads::zeros(&model);
        let mut wired_loss = 0.0;
        let (busy, n) = apply_deltas(&payload, 9, &mut wired, &mut wired_loss).unwrap();
        assert_eq!((busy, n), (1234, 3));
        assert_eq!(direct_loss.to_bits(), wired_loss.to_bits());
        let bits = |g: &Grads| -> Vec<u64> {
            g.u1.as_slice()
                .iter()
                .chain(g.u2.as_slice())
                .chain(g.u3.as_slice())
                .chain(&g.h)
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(bits(&direct), bits(&wired));
    }

    #[test]
    fn deltas_for_wrong_epoch_are_rejected() {
        let payload = encode_deltas(3, 0, 2, &[]);
        let mut grads = Grads {
            u1: Matrix::zeros(1, 2),
            u2: Matrix::zeros(1, 2),
            u3: Matrix::zeros(1, 2),
            h: vec![0.0; 2],
        };
        let mut l2 = 0.0;
        let err = apply_deltas(&payload, 4, &mut grads, &mut l2).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }
}
