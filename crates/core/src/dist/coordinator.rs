//! The coordinator side of the distributed trainer.
//!
//! The coordinator is the single-process checkpointed loop
//! (`TcssTrainer::train_with_faults`) with the entry-chunk evaluation
//! out-sourced: it owns the model, the Adam state, the whole-data Gram
//! tail, the Hausdorff head, the divergence watchdog, and the
//! checkpoints; workers only evaluate chunks. Each epoch it broadcasts
//! the full model, gathers per-chunk deltas worker-by-worker in worker
//! order (= ascending global chunk order, since blocks are contiguous),
//! and replays each chunk's scatter adds — reproducing the in-process
//! float stream bit-for-bit. See the module docs of [`crate::dist`] for
//! the parity argument and failure model.

use super::wire::{
    apply_deltas, decode_hello, deltas_epoch, encode_frame, encode_setup, encode_shutdown,
    encode_step_into, tag_of, FrameBuf, FrameDecoder, Setup, WireLoss, TAG_DELTAS, TAG_HELLO,
};
use super::{read_frame, DistError};
use crate::checkpoint::{config_fingerprint, load_checkpoint, save_checkpoint, Checkpoint};
use crate::config::LossStrategy;
use crate::fault::{poison, FaultPlan};
use crate::loss::{Grads, ENTRIES_PER_CHUNK};
use crate::model::TcssModel;
use crate::model_io::ModelIoError;
use crate::train::{
    divergence_trouble, model_is_finite, AdamState, TcssTrainer, TrainContext, TrainError,
    TrainReport,
};
use crate::workspace::TrainWorkspace;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

/// How to run a distributed training session: the worker fleet and the
/// program that plays the worker role.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker processes to spawn (≥ 1).
    pub workers: usize,
    /// Threads per worker (each worker pins `TCSS_NUM_THREADS`-style
    /// parallelism to this; `None` = 1 — workers should not each grab the
    /// whole machine).
    pub worker_threads: Option<usize>,
    /// Program to spawn for each worker. The coordinator appends
    /// `--socket <path> --worker <id>` to [`DistConfig::worker_args`].
    /// (`tcss` passes its own executable plus the hidden `dist-worker`
    /// subcommand; tests pass the `tcss-dist-worker` binary.)
    pub worker_program: PathBuf,
    /// Leading arguments for the worker program (e.g. a subcommand).
    pub worker_args: Vec<String>,
    /// Directory for the coordinator's Unix socket (`None`: the OS temp
    /// dir).
    pub socket_dir: Option<PathBuf>,
    /// Worker-loss recovery budget: how many respawn-and-rollback cycles
    /// are allowed before the run aborts with
    /// [`DistError::RespawnBudgetExhausted`].
    pub max_respawns: u32,
    /// Owner-computes tail sharding ([`super::sharded`]): workers keep
    /// resident Adam state for contiguous factor-row ranges and apply the
    /// optimizer themselves; the coordinator's serial epoch tail drops to
    /// a gather-and-splice. Bitwise identical to the plain protocol at any
    /// worker count. `false` runs the stateless-worker protocol.
    pub tail_shard: bool,
    /// With `tail_shard`: compute the coordinator-retained Gram +
    /// Hausdorff tail concurrently with worker chunk evaluation instead of
    /// serially after the exchange relay. A pure latency knob — the tail
    /// depends only on the epoch's broadcast model, so both settings
    /// produce identical bits.
    pub overlap: bool,
}

impl DistConfig {
    /// A fleet of `workers` running `worker_program`, defaults elsewhere.
    pub fn new(workers: usize, worker_program: impl Into<PathBuf>) -> Self {
        DistConfig {
            workers,
            worker_threads: None,
            worker_program: worker_program.into(),
            worker_args: Vec::new(),
            socket_dir: None,
            max_respawns: 3,
            tail_shard: false,
            overlap: true,
        }
    }
}

/// Outcome of a distributed run: the [`TrainReport`] plus transport and
/// recovery telemetry.
#[derive(Debug)]
pub struct DistReport {
    /// The single-process-identical training outcome.
    pub report: TrainReport,
    /// Worker processes used.
    pub workers: usize,
    /// Worker-loss recoveries performed.
    pub respawns: u32,
    /// Bytes the coordinator wrote to workers (frames included).
    pub bytes_sent: u64,
    /// Bytes of frames the coordinator read from workers.
    pub bytes_received: u64,
    /// Cumulative in-worker compute time (ns) per worker slot, as
    /// reported in each Deltas message — the bench derives critical-path
    /// scaling from this on hosts too small to run the fleet in parallel.
    pub worker_busy_ns: Vec<u64>,
    /// Epochs dispatched to the fleet, replays included.
    pub epochs_dispatched: u64,
}

/// One connected worker.
pub(super) struct WorkerSlot {
    pub(super) child: Child,
    pub(super) stream: UnixStream,
    pub(super) dec: FrameDecoder,
    pub(super) chunk_start: usize,
    pub(super) chunk_end: usize,
    /// `U¹` rows this worker's chunk block can read — the entry list is
    /// sorted by `(i, j, k)`, so a contiguous chunk block touches a
    /// contiguous row window, and each Step ships only that window
    /// (everything, for negative sampling: its negatives hit any row).
    pub(super) u1_lo: usize,
    pub(super) u1_hi: usize,
}

/// Owns the listening socket path; removes the file on drop so aborted
/// runs don't litter the temp dir.
pub(super) struct SocketGuard {
    pub(super) path: PathBuf,
    pub(super) listener: UnixListener,
}

/// Bind a fresh per-run coordinator socket in the configured directory.
pub(super) fn bind_socket(dist: &DistConfig) -> Result<SocketGuard, DistError> {
    let dir = dist.socket_dir.clone().unwrap_or_else(std::env::temp_dir);
    let sock_path = dir.join(format!(
        "tcss-dist-{}-{}.sock",
        std::process::id(),
        SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path).map_err(DistError::Io)?;
    Ok(SocketGuard {
        path: sock_path,
        listener,
    })
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// How one epoch attempt over the fleet ended.
enum EpochOutcome {
    /// All deltas gathered and merged; `l2` holds the entry-loss sum.
    Done { l2: f64 },
    /// A worker died (I/O error, EOF, or stream corruption); recoverable
    /// by respawn + rollback.
    WorkerLost { worker: usize, detail: String },
}

static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TcssTrainer {
    /// Distributed counterpart of
    /// [`TcssTrainer::train_with_checkpoints`]: same guarantees, same
    /// bit-exact trajectory, with the entry-chunk work sharded across
    /// `dist.workers` processes.
    pub fn train_distributed(
        &self,
        dist: &DistConfig,
        on_epoch: impl FnMut(TrainContext),
    ) -> Result<DistReport, TrainError> {
        self.train_distributed_with_faults(dist, &FaultPlan::none(), on_epoch)
    }

    /// [`TcssTrainer::train_distributed`] with a deterministic
    /// [`FaultPlan`] — drives the worker-loss recovery path in tests via
    /// [`FaultPlan::kill_worker_at`].
    pub fn train_distributed_with_faults(
        &self,
        dist: &DistConfig,
        faults: &FaultPlan,
        mut on_epoch: impl FnMut(TrainContext),
    ) -> Result<DistReport, TrainError> {
        let cfg = &self.config;
        self.validate()?;
        if dist.workers == 0 {
            return Err(TrainError::InvalidConfig(
                "dist.workers must be at least 1".into(),
            ));
        }
        if dist.tail_shard {
            return super::sharded::train_tail_sharded(self, dist, faults, &mut on_epoch);
        }
        let fingerprint = config_fingerprint(cfg);

        // --- Shard the global chunk grid into contiguous blocks ----------
        let n_entries = self.tensor.entries().len();
        let n_chunks = tcss_linalg::chunk_count(n_entries, ENTRIES_PER_CHUNK);
        let w = dist.workers;
        let blocks: Vec<(usize, usize)> = (0..w)
            .map(|i| (i * n_chunks / w, (i + 1) * n_chunks / w))
            .collect();

        // --- Socket + fleet ----------------------------------------------
        let guard = bind_socket(dist)?;

        let mut slots: Vec<WorkerSlot> = Vec::with_capacity(w);
        for (worker, &(chunk_start, chunk_end)) in blocks.iter().enumerate() {
            slots.push(self.spawn_worker(dist, &guard, worker, chunk_start, chunk_end)?);
        }

        // --- Run state: identical to the in-process checkpointed loop ----
        let (mut model, mut adam, start_epoch, mut lr_scale, mut retries) =
            self.init_run_state(fingerprint)?;
        let mut last_good = (model.clone(), adam.clone(), start_epoch);
        let checkpoint_path = cfg
            .checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(crate::checkpoint::CHECKPOINT_FILE));
        if let Some(dir) = &cfg.checkpoint_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| TrainError::Checkpoint(ModelIoError::Fs(e)))?;
        }

        let ws = TrainWorkspace::new();
        let mut grads = Grads::zeros(&model);
        let mut tail = Grads::zeros(&model);
        let mut step_buf = FrameBuf::new();
        let mut epoch = start_epoch;
        let mut respawns = 0u32;
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        let mut worker_busy_ns = vec![0u64; w];
        let mut epochs_dispatched = 0u64;

        while epoch < cfg.epochs {
            if faults.take_crash(epoch) {
                self.shutdown_fleet(&mut slots);
                return Err(TrainError::InjectedCrash { epoch });
            }
            if let Some(victim) = faults.take_kill_worker(epoch) {
                if let Some(slot) = slots.get_mut(victim) {
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                }
            }

            grads.set_zero();
            epochs_dispatched += 1;
            let epoch_sent0 = bytes_sent;
            let epoch_recv0 = bytes_received;
            let outcome = dispatch_epoch(
                &mut slots,
                epoch as u64,
                &model,
                &mut grads,
                &mut step_buf,
                &mut bytes_sent,
                &mut bytes_received,
                &mut worker_busy_ns,
            )?;
            let mut l2 = match outcome {
                EpochOutcome::Done { l2 } => l2,
                EpochOutcome::WorkerLost { worker, detail } => {
                    respawns += 1;
                    if respawns > dist.max_respawns {
                        self.shutdown_fleet(&mut slots);
                        return Err(TrainError::Dist(DistError::RespawnBudgetExhausted {
                            worker,
                            epoch,
                            respawns,
                            detail,
                        }));
                    }
                    let (chunk_start, chunk_end) =
                        (slots[worker].chunk_start, slots[worker].chunk_end);
                    let _ = slots[worker].child.kill();
                    let _ = slots[worker].child.wait();
                    slots[worker] =
                        self.spawn_worker(dist, &guard, worker, chunk_start, chunk_end)?;
                    // Resume from the last checkpoint: the on-disk one
                    // when checkpointing is enabled (exercising the full
                    // load path), else the in-memory rollback snapshot —
                    // they are refreshed at the same cadence points, so
                    // the states are identical.
                    match checkpoint_path.as_ref().filter(|p| p.exists()) {
                        Some(path) => {
                            let ck = load_checkpoint(path)?;
                            model = ck.model;
                            adam = AdamState {
                                m: ck.m,
                                v: ck.v,
                                t: ck.adam_t,
                            };
                            epoch = ck.epoch;
                            lr_scale = ck.lr_scale;
                            retries = ck.retries;
                        }
                        None => {
                            let (m, a, e) = &last_good;
                            model = m.clone();
                            adam = a.clone();
                            epoch = *e;
                        }
                    }
                    continue;
                }
            };

            // --- Coordinator-local tail: Gram term + Hausdorff head ------
            let l1 = self.epoch_tail_into(&model, epoch, &ws, &mut tail, &mut l2);
            if self.tail_active(epoch) {
                grads.add_scaled(1.0, &tail);
            }
            if faults.take_poison(epoch) {
                poison(&mut grads);
            }

            // --- Watchdog / step / checkpoint: line-for-line the
            // in-process loop -------------------------------------------
            if let Some(detail) = divergence_trouble(cfg, l2, l1, grads.norm()) {
                retries += 1;
                if retries > cfg.max_retries {
                    self.shutdown_fleet(&mut slots);
                    return Err(TrainError::Diverged {
                        epoch,
                        retries,
                        detail,
                    });
                }
                lr_scale *= cfg.lr_backoff;
                let (m, a, e) = &last_good;
                model = m.clone();
                adam = a.clone();
                epoch = *e;
                continue;
            }

            adam.step(
                &mut model,
                &grads,
                cfg.learning_rate * lr_scale,
                cfg.weight_decay,
            );
            on_epoch(TrainContext {
                epoch,
                l2,
                l1,
                bytes_sent: bytes_sent - epoch_sent0,
                bytes_received: bytes_received - epoch_recv0,
            });
            epoch += 1;

            let due = epoch.is_multiple_of(cfg.checkpoint_every) || epoch == cfg.epochs;
            if due && model_is_finite(&model) {
                last_good = (model.clone(), adam.clone(), epoch);
                if let Some(path) = &checkpoint_path {
                    let ck = Checkpoint {
                        epoch,
                        adam_t: adam.t,
                        lr_scale,
                        retries,
                        seed: cfg.seed,
                        fingerprint,
                        model: model.clone(),
                        m: adam.m.clone(),
                        v: adam.v.clone(),
                    };
                    save_checkpoint(&ck, path)?;
                }
            }
        }

        self.shutdown_fleet(&mut slots);
        Ok(DistReport {
            report: TrainReport {
                model,
                start_epoch,
                rollbacks: retries,
                lr_scale,
            },
            workers: w,
            respawns,
            bytes_sent,
            bytes_received,
            worker_busy_ns,
            epochs_dispatched,
        })
    }

    /// Spawn one worker process, accept its connection, verify its Hello,
    /// and send its Setup.
    pub(super) fn spawn_worker(
        &self,
        dist: &DistConfig,
        guard: &SocketGuard,
        worker: usize,
        chunk_start: usize,
        chunk_end: usize,
    ) -> Result<WorkerSlot, DistError> {
        let mut child = Command::new(&dist.worker_program)
            .args(&dist.worker_args)
            .arg("--socket")
            .arg(&guard.path)
            .arg("--worker")
            .arg(worker.to_string())
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| DistError::Spawn {
                program: dist.worker_program.display().to_string(),
                source: e,
            })?;
        // Accept without ever hanging: a worker that dies before
        // connecting (bad program, crash on startup) surfaces as a typed
        // error, detected by polling the child between accept attempts.
        guard.listener.set_nonblocking(true)?;
        let mut stream = loop {
            match guard.listener.accept() {
                Ok((s, _addr)) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Some(status) = child.try_wait()? {
                        guard.listener.set_nonblocking(false)?;
                        return Err(DistError::Protocol(format!(
                            "worker {worker} exited before connecting ({status})"
                        )));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => {
                    guard.listener.set_nonblocking(false)?;
                    return Err(DistError::Io(e));
                }
            }
        };
        guard.listener.set_nonblocking(false)?;
        stream.set_nonblocking(false)?;
        let mut dec = FrameDecoder::new();
        let hello = read_frame(&mut stream, &mut dec)?.ok_or_else(|| {
            DistError::Protocol(format!("worker {worker} disconnected before Hello"))
        })?;
        if tag_of(&hello)? != TAG_HELLO {
            return Err(DistError::Protocol(format!(
                "worker {worker} sent tag {} before Hello",
                tag_of(&hello)?
            )));
        }
        let claimed = decode_hello(&hello)?;
        if claimed as usize != worker {
            return Err(DistError::Protocol(format!(
                "expected Hello from worker {worker}, got worker {claimed}"
            )));
        }
        let cfg = &self.config;
        let setup = Setup {
            dims: self.tensor.dims(),
            rank: cfg.rank,
            w_plus: cfg.w_plus,
            w_minus: cfg.w_minus,
            loss: match cfg.loss {
                LossStrategy::WholeDataRewritten | LossStrategy::WholeDataNaive => {
                    WireLoss::L2Entries
                }
                LossStrategy::NegativeSampling => WireLoss::NegSampling,
            },
            seed: cfg.seed,
            chunk_start,
            chunk_end,
            threads: dist.worker_threads.unwrap_or(1).max(1),
            n_workers: dist.workers,
            tail_shard: dist.tail_shard,
            weight_decay: cfg.weight_decay,
            entries: self.tensor.entries().to_vec(),
        };
        stream.write_all(&encode_frame(&encode_setup(&setup)))?;
        let entries = self.tensor.entries();
        let lo = (chunk_start * ENTRIES_PER_CHUNK).min(entries.len());
        let hi = (chunk_end * ENTRIES_PER_CHUNK).min(entries.len());
        let (u1_lo, u1_hi) = match setup.loss {
            // Negative sampling draws rows anywhere in the tensor.
            WireLoss::NegSampling => (0, self.tensor.dims().0),
            WireLoss::L2Entries if lo < hi => (entries[lo].i, entries[hi - 1].i + 1),
            WireLoss::L2Entries => (0, 0),
        };
        Ok(WorkerSlot {
            child,
            stream,
            dec,
            chunk_start,
            chunk_end,
            u1_lo,
            u1_hi,
        })
    }

    /// Best-effort fleet teardown: Shutdown frame, then reap. Workers also
    /// exit on EOF, so a failed write still converges.
    pub(super) fn shutdown_fleet(&self, slots: &mut Vec<WorkerSlot>) {
        for slot in slots.iter_mut() {
            let _ = slot.stream.write_all(&encode_frame(&encode_shutdown()));
            let _ = slot.stream.shutdown(std::net::Shutdown::Both);
        }
        for slot in slots.iter_mut() {
            let _ = slot.child.wait();
        }
        slots.clear();
    }
}

/// One epoch over the fleet: broadcast the model to every worker, then
/// gather and merge deltas worker-by-worker **in worker order** — with
/// contiguous blocks that is ascending global chunk order, the exact add
/// sequence of the in-process fold.
///
/// Strict lockstep is maintained even under failure: every worker that
/// received a Step gets its reply read (and discarded on epoch mismatch)
/// before the next broadcast, so no stale frames can deadlock a later
/// broadcast against a worker blocked mid-write.
#[allow(clippy::too_many_arguments)]
fn dispatch_epoch(
    slots: &mut [WorkerSlot],
    epoch: u64,
    model: &TcssModel,
    grads: &mut Grads,
    step_buf: &mut FrameBuf,
    bytes_sent: &mut u64,
    bytes_received: &mut u64,
    worker_busy_ns: &mut [u64],
) -> Result<EpochOutcome, DistError> {
    let mut lost: Option<(usize, String)> = None;

    // Broadcast, each worker getting its own U¹ row window, the frame
    // encoded into a buffer reused across workers and epochs.
    let mut stepped = vec![false; slots.len()];
    for (w, slot) in slots.iter_mut().enumerate() {
        encode_step_into(step_buf.payload(), epoch, model, slot.u1_lo, slot.u1_hi);
        let step = step_buf.finish();
        match slot.stream.write_all(step) {
            Ok(()) => {
                stepped[w] = true;
                *bytes_sent += step.len() as u64;
            }
            Err(e) => {
                lost.get_or_insert((w, format!("step broadcast failed: {e}")));
            }
        }
    }

    // Gather, in worker order. Keep reading even after a loss elsewhere:
    // lockstep requires draining every outstanding reply.
    let mut l2 = 0.0;
    for (w, slot) in slots.iter_mut().enumerate() {
        if !stepped[w] {
            continue;
        }
        loop {
            let frame = match read_frame(&mut slot.stream, &mut slot.dec) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    lost.get_or_insert((w, "worker closed its socket mid-epoch".into()));
                    break;
                }
                Err(e) => {
                    lost.get_or_insert((w, format!("reading deltas failed: {e}")));
                    break;
                }
            };
            *bytes_received +=
                (frame.len() + super::wire::HEADER_LEN + super::wire::TRAILER_LEN) as u64;
            match tag_of(&frame) {
                Ok(TAG_DELTAS) => match deltas_epoch(&frame) {
                    Ok(ep) if ep != epoch => continue, // stale replay reply
                    Ok(_) => {
                        if lost.is_none() {
                            match apply_deltas(&frame, epoch, grads, &mut l2) {
                                Ok((busy, _chunks)) => worker_busy_ns[w] += busy,
                                Err(e) => {
                                    lost.get_or_insert((w, format!("corrupt deltas: {e}")));
                                }
                            }
                        }
                        break;
                    }
                    Err(e) => {
                        lost.get_or_insert((w, format!("corrupt deltas header: {e}")));
                        break;
                    }
                },
                Ok(other) => {
                    lost.get_or_insert((w, format!("unexpected tag {other} during gather")));
                    break;
                }
                Err(e) => {
                    lost.get_or_insert((w, format!("corrupt frame: {e}")));
                    break;
                }
            }
        }
    }

    match lost {
        None => Ok(EpochOutcome::Done { l2 }),
        Some((worker, detail)) => Ok(EpochOutcome::WorkerLost { worker, detail }),
    }
}
