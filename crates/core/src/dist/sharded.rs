//! Owner-computes tail sharding: the optimizer runs on the workers.
//!
//! The plain protocol ([`super::coordinator`]) leaves a serial epoch tail
//! on the coordinator: merge every delta, fold the norm, run Adam over
//! the whole model. This module shards that tail by **row ownership** —
//! worker `w` owns the contiguous row range
//! [`crate::sparse_grads::owned_range`]`(dim, n, w)` of *each* factor,
//! keeps the model rows and Adam moments for those rows resident across
//! epochs, and applies [`tcss_linalg::kernels::adam_update`] to them
//! itself. The coordinator retains only what is not row-decomposable:
//! the dense core `h`, the whole-data Gram tail, the Hausdorff head, the
//! loss/norm folds, the divergence watchdog, and the checkpoints.
//!
//! # Per-epoch protocol (all frames per `[super::wire]`)
//!
//! 1. **StepOwned** broadcast (double-buffered encode; the plain
//!    protocol's per-worker `U¹` read windows, with each worker's own
//!    resident rows punched out — the worker splices those back from its
//!    resident state, so rows it just updated never travel twice). With
//!    `overlap` the coordinator computes its Gram + head tail right
//!    here, concurrently with worker chunk evaluation — the tail depends
//!    only on the broadcast model, so the knob cannot change any bits.
//! 2. Each worker evaluates its chunk block, splits every chunk's
//!    touched rows by owner ([`crate::sparse_grads::OwnerSplit`]), sends
//!    **ChunkStats** (per-chunk losses + dense `h` deltas) to the
//!    coordinator and one **Exch** frame per *other* worker with the
//!    un-merged row deltas bound for that owner. Stats plus every Exch
//!    leave the worker as **one** socket write; the coordinator's
//!    per-worker reader threads verify checksums, batch every frame that
//!    arrived back-to-back, and wake the event loop once per burst. Exch
//!    frames are relayed verbatim (raw bytes, never re-decoded).
//! 3. **TailRows** per worker: the owned slice of the coordinator tail —
//!    row slices in dense mode, or the per-factor Gram matrices in gram
//!    mode, from which the worker rebuilds its owned tail rows
//!    bit-identically — or "inactive" (adding zeros could flip `-0.0`
//!    accumulators). Each destination's relayed Exchs and its TailRows
//!    go out as one batched write. Because the coordinator→worker stream
//!    is FIFO and TailRows is sent only after every Exch has been
//!    relayed, its arrival doubles as the exchange barrier.
//! 4. Each worker merges its own split plus the relayed Exch frames in
//!    ascending source order — sources own ascending contiguous chunk
//!    blocks and each frame replays its rows in ascending-chunk
//!    first-touch order, so every gradient *element* sees its adds in
//!    ascending global chunk order: the exact in-process sequence — adds
//!    the tail, and returns per-row squared norms (**NormPartial**).
//! 5. The coordinator folds the loss (chunk losses in chunk order, then
//!    the recorded Gram terms in emission order), the `h` gradient, and
//!    the norm (factor-major, worker-ascending — the contiguous-run
//!    decomposition of [`crate::loss::Grads::norm`]), runs the watchdog,
//!    and broadcasts the **Verdict** with the effective learning rate
//!    (scaled once, so every peer steps with identical bits).
//! 6. Workers advance their resident Adam state and ship **UpdatedRows**;
//!    the coordinator splices them into the authoritative model while
//!    stepping `h` itself.
//!
//! # Determinism and failure model
//!
//! Every worker→coordinator message of an epoch is a pure function of
//! `(restored model, adam, epoch)`, so replayed frames are **bitwise
//! identical** to their originals: the coordinator keeps one accept-slot
//! per (message, worker) per attempt and takes whichever copy arrives
//! first. Rollback/respawn re-installs worker state with an **Adopt**
//! frame (model rows + moments + step counter for the owned ranges),
//! which a worker accepts at *any* receive point as a clean reset — the
//! single-writer FIFO from the coordinator makes it an unambiguous
//! barrier between attempts. Checkpoints stay worker-count-independent:
//! at every checkpoint cadence point the coordinator gathers the resident
//! moments (**SnapReq**/**SnapRows**) and saves the same full-model
//! checkpoint the in-process trainer would, so tail-sharded, plain
//! distributed, and single-process runs can resume each other's
//! checkpoints bit-for-bit. See DESIGN.md §5j for the full argument.

use super::coordinator::{bind_socket, DistConfig, DistReport, SocketGuard, WorkerSlot};
use super::wire::{
    apply_exch, apply_snap_rows, apply_upd_rows, complete_frame_buffered, decode_chunk_stats,
    decode_norm_part, decode_snap_req, decode_step_owned, decode_tail_rows, decode_verdict,
    encode_adopt_into, encode_chunk_stats_into, encode_exch_into, encode_norm_part_into,
    encode_snap_req_into, encode_snap_rows_into, encode_step_owned_into, encode_tail_gram_into,
    encode_tail_inactive_into, encode_tail_rows_into, encode_upd_rows_into, encode_verdict_into,
    exch_header, msg_epoch, msg_epoch_src, raw_frame_payload, read_raw_frame, tag_of, FrameBuf,
    FrameDecoder, Setup, TailMsg, TAG_ADOPT, TAG_CHUNK_STATS, TAG_EXCH, TAG_NORM_PART,
    TAG_SHUTDOWN, TAG_SNAP_REQ, TAG_SNAP_ROWS, TAG_STEP_OWNED, TAG_TAIL_ROWS, TAG_UPD_ROWS,
    TAG_VERDICT, UPD_ROWS_BUSY_OFFSET,
};
use super::{busy_now_ns, read_frame, DistError};
use crate::checkpoint::{config_fingerprint, load_checkpoint, save_checkpoint, Checkpoint};
use crate::fault::FaultPlan;
use crate::loss::{Grads, ENTRIES_PER_CHUNK};
use crate::model::TcssModel;
use crate::model_io::ModelIoError;
use crate::sparse_grads::{owned_range, OwnerSplit};
use crate::train::{
    divergence_trouble, model_is_finite, AdamState, TcssTrainer, TrainContext, TrainError,
    TrainReport,
};
use crate::workspace::TrainWorkspace;
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::mpsc;
use tcss_linalg::{kernels, Matrix};
use tcss_sparse::SparseTensor3;

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Resident owned-range state, installed by Adopt and advanced by every
/// Verdict. The model rows must be resident too: an `L2Entries` Step
/// ships only the worker's `U¹` read window, which need not cover the
/// rows it *owns*.
struct Resident {
    t: u64,
    w: [Vec<f64>; 3],
    m: [Vec<f64>; 3],
    v: [Vec<f64>; 3],
}

/// How serving one Step ended.
enum Flow {
    /// Back to idle — the epoch completed, or an Adopt reset it.
    Idle,
    /// Shutdown received.
    Exit,
}

struct ShardWorker {
    stream: UnixStream,
    dec: FrameDecoder,
    out: FrameBuf,
    setup: Setup,
    tensor: SparseTensor3,
    entry_lo: usize,
    entry_hi: usize,
    ws: TrainWorkspace,
    id: usize,
    /// Owned `[lo, hi)` row range per factor.
    ranges: [(usize, usize); 3],
    /// `(hi - lo) · rank` element count per factor.
    elems: [usize; 3],
    split: OwnerSplit,
    /// Merged owned-range gradient slabs, zeroed per epoch.
    grads: [Vec<f64>; 3],
    /// Per-owned-row squared norms, rebuilt per epoch.
    dots: [Vec<f64>; 3],
    res: Option<Resident>,
}

/// Serve one tail-sharded worker process to completion. Entered from
/// [`super::worker::run_worker`] right after Setup when
/// [`Setup::tail_shard`] is set.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_sharded_worker(
    stream: UnixStream,
    dec: FrameDecoder,
    setup: Setup,
    tensor: SparseTensor3,
    entry_lo: usize,
    entry_hi: usize,
    ws: TrainWorkspace,
    worker_id: u32,
) -> Result<(), DistError> {
    let id = worker_id as usize;
    let n = setup.n_workers;
    if id >= n {
        return Err(DistError::Protocol(format!(
            "worker id {id} out of range for a {n}-worker fleet"
        )));
    }
    let rank = setup.rank;
    let dims = setup.dims;
    let ranges = [
        owned_range(dims.0, n, id),
        owned_range(dims.1, n, id),
        owned_range(dims.2, n, id),
    ];
    let elems = [
        (ranges[0].1 - ranges[0].0) * rank,
        (ranges[1].1 - ranges[1].0) * rank,
        (ranges[2].1 - ranges[2].0) * rank,
    ];
    let mut wk = ShardWorker {
        stream,
        dec,
        out: FrameBuf::new(),
        setup,
        tensor,
        entry_lo,
        entry_hi,
        ws,
        id,
        ranges,
        elems,
        split: OwnerSplit::new(n),
        grads: [
            vec![0.0; elems[0]],
            vec![0.0; elems[1]],
            vec![0.0; elems[2]],
        ],
        dots: Default::default(),
        res: None,
    };
    loop {
        // The busy span opens before the idle recv: checksumming and
        // buffering the incoming Step frame is epoch work, while the
        // blocking wait itself accrues no CPU time.
        let t0 = busy_now_ns();
        let frame = match wk.recv()? {
            Some(f) => f,
            // Coordinator dropped the connection between frames.
            None => return Ok(()),
        };
        match tag_of(&frame)? {
            TAG_ADOPT => wk.install(&frame)?,
            TAG_SNAP_REQ => wk.snap_reply(&frame)?,
            TAG_STEP_OWNED => {
                if let Flow::Exit = wk.serve_epoch(&frame, t0)? {
                    return Ok(());
                }
            }
            TAG_SHUTDOWN => return Ok(()),
            other => {
                return Err(DistError::Protocol(format!(
                    "unexpected tag {other} at worker idle"
                )))
            }
        }
    }
}

impl ShardWorker {
    fn recv(&mut self) -> Result<Option<Vec<u8>>, DistError> {
        read_frame(&mut self.stream, &mut self.dec)
    }

    /// Frame whatever was just encoded into `self.out` and send it.
    fn flush(&mut self) -> Result<(), DistError> {
        let frame = self.out.finish();
        self.stream.write_all(frame)?;
        Ok(())
    }

    /// Install (or re-install) resident state from an Adopt frame. At an
    /// epoch wait point this is the rollback reset: the caller abandons
    /// the attempt and returns to idle.
    fn install(&mut self, frame: &[u8]) -> Result<(), DistError> {
        let a = super::wire::decode_adopt(frame, self.elems)?;
        self.res = Some(Resident {
            t: a.t,
            w: a.w,
            m: a.m,
            v: a.v,
        });
        Ok(())
    }

    /// Answer a SnapReq from the resident moments.
    fn snap_reply(&mut self, frame: &[u8]) -> Result<(), DistError> {
        let label = decode_snap_req(frame)?;
        let res = self
            .res
            .as_ref()
            .ok_or_else(|| DistError::Protocol("snapshot requested before any Adopt".into()))?;
        encode_snap_rows_into(
            self.out.payload(),
            label,
            self.id as u32,
            [&res.m[0], &res.m[1], &res.m[2]],
            [&res.v[0], &res.v[1], &res.v[2]],
        );
        self.flush()
    }

    /// Merge this worker's own owner-split share into the gradient slabs
    /// (the `src == self.id` slot of the ascending-source merge).
    fn merge_own(&mut self) {
        let rank = self.setup.rank;
        for f in 0..3 {
            let lo = self.ranges[f].0;
            let part = self.split.part(f, self.id);
            let buf = &mut self.grads[f];
            for (slot, &row) in part.rows.iter().enumerate() {
                let at = (row as usize - lo) * rank;
                for (d, s) in buf[at..at + rank]
                    .iter_mut()
                    .zip(&part.data[slot * rank..(slot + 1) * rank])
                {
                    *d += *s;
                }
            }
        }
    }

    /// Serve one epoch end-to-end: evaluate, exchange, merge, step.
    /// `t0` is the [`busy_now_ns`] reading taken before the Step frame's
    /// recv, so the whole-epoch busy span includes its decode.
    fn serve_epoch(&mut self, step: &[u8], t0: u64) -> Result<Flow, DistError> {
        let res_u1 = match &self.res {
            Some(res) => res.w[0].as_slice(),
            None => return Err(DistError::Protocol("step before any Adopt".into())),
        };
        let (epoch, model) = decode_step_owned(step, res_u1, self.ranges[0])?;
        if model.dims() != self.setup.dims || model.rank() != self.setup.rank {
            return Err(DistError::Protocol(format!(
                "step model {:?}/r{} does not match setup {:?}/r{}",
                model.dims(),
                model.rank(),
                self.setup.dims,
                self.setup.rank
            )));
        }
        let rank = self.setup.rank;
        let n = self.setup.n_workers;

        // --- Evaluate + owner-split + ship ------------------------------
        let chunks = super::worker::eval_block(
            &self.setup,
            &self.tensor,
            &model,
            self.entry_lo,
            self.entry_hi,
            epoch,
            &self.ws,
        );
        self.split.clear();
        for (_, delta) in &chunks {
            self.split.split_chunk(delta, self.setup.dims);
        }
        encode_chunk_stats_into(self.out.payload(), epoch, self.id as u32, rank, &chunks);
        for (_, delta) in chunks {
            self.ws.deltas.put(delta);
        }
        // Stats plus every Exch frame accumulate into one buffer and go
        // out in a single write below — same frame sequence on the wire,
        // one syscall and one coordinator reader wake-up per epoch.
        for dest in 0..n {
            if dest == self.id {
                continue;
            }
            let parts = [
                (
                    self.split.part(0, dest).rows.as_slice(),
                    self.split.part(0, dest).data.as_slice(),
                ),
                (
                    self.split.part(1, dest).rows.as_slice(),
                    self.split.part(1, dest).data.as_slice(),
                ),
                (
                    self.split.part(2, dest).rows.as_slice(),
                    self.split.part(2, dest).data.as_slice(),
                ),
            ];
            encode_exch_into(
                self.out.next_payload(),
                epoch,
                self.id as u32,
                dest as u32,
                rank,
                parts,
            );
        }
        self.flush()?;

        // --- Exchange barrier: buffer relayed Exchs until TailRows ------
        for g in &mut self.grads {
            g.fill(0.0);
        }
        let mut exch: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut pending = n - 1;
        let tail_frame = loop {
            let frame = self.recv()?.ok_or_else(|| {
                DistError::Protocol("coordinator disconnected mid-exchange".into())
            })?;
            match tag_of(&frame)? {
                TAG_EXCH => {
                    let (ep, src, dest) = exch_header(&frame)?;
                    if ep != epoch {
                        continue; // stale relay from an abandoned attempt
                    }
                    if dest as usize != self.id {
                        return Err(DistError::Protocol(format!(
                            "misrouted exchange for worker {dest}"
                        )));
                    }
                    let src = src as usize;
                    if src >= n || src == self.id {
                        return Err(DistError::Protocol(format!(
                            "exchange from bogus source {src}"
                        )));
                    }
                    if exch[src].is_none() {
                        exch[src] = Some(frame);
                        pending -= 1;
                    }
                }
                TAG_TAIL_ROWS => {
                    if msg_epoch(&frame)? != epoch {
                        continue;
                    }
                    if pending > 0 {
                        return Err(DistError::Protocol(
                            "tail rows arrived before all exchanges (FIFO violated)".into(),
                        ));
                    }
                    break frame;
                }
                TAG_ADOPT => {
                    self.install(&frame)?;
                    return Ok(Flow::Idle);
                }
                TAG_SNAP_REQ => self.snap_reply(&frame)?,
                TAG_SHUTDOWN => return Ok(Flow::Exit),
                other => {
                    return Err(DistError::Protocol(format!(
                        "unexpected tag {other} during exchange"
                    )))
                }
            }
        };

        // --- Merge in ascending source order = ascending global chunk
        // order per element, then the coordinator tail, then row norms ---
        for (src, slot) in exch.iter_mut().enumerate() {
            if src == self.id {
                self.merge_own();
            } else {
                let frame = slot.take().expect("exchange barrier guarantees all slots");
                apply_exch(&frame, epoch, rank, self.ranges, &mut self.grads)?;
            }
        }
        match decode_tail_rows(&tail_frame, epoch, self.elems, rank)? {
            TailMsg::Inactive => {}
            TailMsg::Dense(parts) => {
                for (part, grad) in parts.iter().zip(&mut self.grads) {
                    kernels::axpy(1.0, part, grad);
                }
            }
            // Gram mode: rebuild the owned tail rows locally as
            // `2·U^f·D^f` from the resident model rows. Per row this is
            // `row_product_into` (bit-equal to the coordinator's matmul
            // row) then `axpy(2.0, ..)` — `2·x` is exact in binary
            // floating point, so scaling inside the axpy lands on the
            // same bits as the in-process `scaled(2.0)` + unit axpy.
            TailMsg::Gram(mats) => {
                let res = self.res.as_ref().expect("checked at step entry");
                let mut acc = vec![0.0; rank];
                for (f, data) in mats.into_iter().enumerate() {
                    let d = Matrix::from_vec(rank, rank, data)
                        .map_err(|e| DistError::Protocol(format!("bad tail gram: {e}")))?;
                    for (row_w, row_g) in res.w[f]
                        .chunks_exact(rank)
                        .zip(self.grads[f].chunks_exact_mut(rank))
                    {
                        acc.iter_mut().for_each(|v| *v = 0.0);
                        d.row_product_into(row_w, &mut acc)
                            .expect("rank-sized row and scratch");
                        kernels::axpy(2.0, &acc, row_g);
                    }
                }
            }
        }
        for f in 0..3 {
            self.dots[f].clear();
            for row in self.grads[f].chunks_exact(rank) {
                self.dots[f].push(kernels::dot(row, row));
            }
        }
        encode_norm_part_into(
            self.out.payload(),
            epoch,
            self.id as u32,
            [&self.dots[0], &self.dots[1], &self.dots[2]],
        );
        self.flush()?;

        // --- Verdict: advance the resident optimizer --------------------
        let lr_eff = loop {
            let frame = self.recv()?.ok_or_else(|| {
                DistError::Protocol("coordinator disconnected awaiting verdict".into())
            })?;
            match tag_of(&frame)? {
                TAG_VERDICT => {
                    if msg_epoch(&frame)? != epoch {
                        continue;
                    }
                    break decode_verdict(&frame, epoch)?;
                }
                TAG_ADOPT => {
                    self.install(&frame)?;
                    return Ok(Flow::Idle);
                }
                TAG_SNAP_REQ => self.snap_reply(&frame)?,
                TAG_SHUTDOWN => return Ok(Flow::Exit),
                // Stale relays from an abandoned attempt can trail in.
                TAG_EXCH | TAG_TAIL_ROWS => {
                    if msg_epoch(&frame)? == epoch {
                        return Err(DistError::Protocol(
                            "duplicate exchange after the barrier".into(),
                        ));
                    }
                }
                other => {
                    return Err(DistError::Protocol(format!(
                        "unexpected tag {other} awaiting verdict"
                    )))
                }
            }
        };
        let res = self.res.as_mut().expect("checked at step entry");
        res.t += 1;
        let p = kernels::AdamParams::for_step(lr_eff, self.setup.weight_decay, res.t);
        for f in 0..3 {
            kernels::adam_update(
                &mut res.w[f],
                &self.grads[f],
                &mut res.m[f],
                &mut res.v[f],
                &p,
            );
        }
        encode_upd_rows_into(
            self.out.payload(),
            epoch,
            self.id as u32,
            0,
            [&res.w[0], &res.w[1], &res.w[2]],
        );
        // One whole-epoch CPU span: `busy_now_ns` is process CPU time, so
        // the blocking recv waits above contribute ~nothing, while the
        // frame decode, checksum, merge, and flush-write work they
        // bracket — all genuinely parallel across workers — is counted.
        let busy_ns = busy_now_ns().saturating_sub(t0);
        self.out.payload_mut()[UPD_ROWS_BUSY_OFFSET..UPD_ROWS_BUSY_OFFSET + 8]
            .copy_from_slice(&busy_ns.to_le_bytes());
        self.flush()?;
        Ok(Flow::Idle)
    }
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// One reader thread's report: a burst of verified raw frames, or the
/// stream's end. `gen` invalidates events from a replaced worker's old
/// reader.
enum Event {
    /// Every frame that sat back-to-back on the stream at one reader
    /// wake-up, in arrival order.
    Frames {
        src: usize,
        gen: u64,
        batch: Vec<Vec<u8>>,
    },
    Lost {
        src: usize,
        gen: u64,
        detail: String,
    },
}

/// Spawn a detached reader thread that drains one worker's stream.
/// Checksum verification happens here, off the coordinator's critical
/// path; the main thread receives ready-to-relay raw frames.
///
/// Workers batch a whole phase into one write (stats + every exchange
/// frame), so frames arrive in bursts. The reader buffers the socket
/// and forwards each burst as a single [`Event::Frames`]: one kernel
/// read and one event-loop wake-up per burst instead of one of each
/// per frame — on a single-CPU host those wake-ups are context
/// switches on the critical path.
fn spawn_reader(
    stream: &UnixStream,
    src: usize,
    gen: u64,
    tx: &mpsc::Sender<Event>,
) -> Result<(), DistError> {
    let stream = stream.try_clone()?;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut rd = std::io::BufReader::with_capacity(256 * 1024, stream);
        let mut batch: Vec<Vec<u8>> = Vec::new();
        loop {
            match read_raw_frame(&mut rd) {
                Ok(Some(raw)) => {
                    batch.push(raw);
                    // Parse ahead only while a COMPLETE frame is already
                    // buffered: blocking mid-frame while holding verified
                    // frames would deadlock against the exchange barrier
                    // (the coordinator may be waiting on exactly these).
                    if complete_frame_buffered(rd.buffer()) {
                        continue;
                    }
                    let batch = std::mem::take(&mut batch);
                    if tx.send(Event::Frames { src, gen, batch }).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    if !batch.is_empty() {
                        let _ = tx.send(Event::Frames { src, gen, batch });
                    }
                    let _ = tx.send(Event::Lost {
                        src,
                        gen,
                        detail: "worker closed its socket".into(),
                    });
                    return;
                }
                Err(e) => {
                    if !batch.is_empty() {
                        let _ = tx.send(Event::Frames { src, gen, batch });
                    }
                    let _ = tx.send(Event::Lost {
                        src,
                        gen,
                        detail: format!("reading frames failed: {e}"),
                    });
                    return;
                }
            }
        }
    });
    Ok(())
}

/// Per-attempt accept slots. Every worker→coordinator message is a pure
/// function of the restored epoch state, so replays are bitwise identical
/// and first-wins is always safe; model/Adam mutations (UpdatedRows) are
/// buffered so early replicas cannot corrupt state read later in the
/// attempt.
#[derive(Default)]
struct Gather {
    stats: Vec<Option<(Vec<f64>, Vec<f64>)>>,
    /// `src · w + dest`: has this exchange been relayed this attempt?
    relayed: Vec<bool>,
    norm: Vec<Option<[Vec<f64>; 3]>>,
    upd: Vec<Option<Vec<u8>>>,
}

/// What the attempt pump is waiting to complete.
enum Wait {
    StatsAndRelays,
    Norm,
    Upd,
}

/// How one epoch attempt over the fleet ended.
enum Attempt {
    Stepped { l2: f64, l1: f64 },
    Diverged { detail: String },
    Lost { worker: usize, detail: String },
}

struct Fleet<'a> {
    trainer: &'a TcssTrainer,
    dist: &'a DistConfig,
    guard: SocketGuard,
    slots: Vec<WorkerSlot>,
    gens: Vec<u64>,
    tx: mpsc::Sender<Event>,
    rx: mpsc::Receiver<Event>,
    /// Owned `[lo, hi)` row range per factor, per worker.
    ranges: Vec<[(usize, usize); 3]>,
    /// Owned row count per factor, per worker.
    row_counts: Vec<[usize; 3]>,
    rank: usize,
    gather: Gather,
    fbuf: FrameBuf,
    /// Per-dest pending raw frames (verified Exch relays, then the
    /// TailRows barrier), accumulated during the exchange and shipped in
    /// **one** write per worker — one syscall and one receiver wake-up
    /// instead of one per relayed frame. Buffers are reused across
    /// epochs; an abandoned attempt just clears them, so a lost worker's
    /// half-exchange never reaches anyone.
    relay_buf: Vec<Vec<u8>>,
    bytes_sent: u64,
    bytes_received: u64,
    worker_busy_ns: Vec<u64>,
    epochs_dispatched: u64,
    respawns: u32,
}

/// `Err` carries `(worker, detail)` of a lost worker — every transport
/// failure inside an attempt is recoverable by respawn + rollback.
type SendResult = Result<(), (usize, String)>;

impl Fleet<'_> {
    fn w(&self) -> usize {
        self.slots.len()
    }

    fn gather_reset(&mut self) {
        let w = self.w();
        self.gather.stats = vec![None; w];
        // A worker never exchanges with itself: pre-mark the diagonal.
        self.gather.relayed = (0..w * w).map(|i| i / w == i % w).collect();
        self.gather.norm = vec![None; w];
        self.gather.upd = vec![None; w];
        self.relay_buf.resize(w, Vec::new());
        for buf in &mut self.relay_buf {
            buf.clear();
        }
    }

    /// Frame whatever was just encoded into `self.fbuf` and send it.
    fn send_built(&mut self, dest: usize) -> SendResult {
        let frame = self.fbuf.finish();
        match self.slots[dest].stream.write_all(frame) {
            Ok(()) => {
                self.bytes_sent += frame.len() as u64;
                Ok(())
            }
            Err(e) => Err((dest, format!("write failed: {e}"))),
        }
    }

    /// Ship `dest`'s pending relay burst (buffered Exch frames plus the
    /// TailRows barrier appended by the caller) in a single write.
    fn send_pending(&mut self, dest: usize) -> SendResult {
        let buf = std::mem::take(&mut self.relay_buf[dest]);
        let sent = self.slots[dest].stream.write_all(&buf);
        if sent.is_ok() {
            self.bytes_sent += buf.len() as u64;
        }
        self.relay_buf[dest] = buf;
        self.relay_buf[dest].clear();
        sent.map_err(|e| (dest, format!("relay failed: {e}")))
    }

    /// Next event from a *current-generation* reader.
    fn next_event(&mut self) -> Event {
        loop {
            let ev = self
                .rx
                .recv()
                .expect("the coordinator holds a sender, the channel cannot close");
            let (src, gen) = match &ev {
                Event::Frames { src, gen, .. } | Event::Lost { src, gen, .. } => (*src, *gen),
            };
            if gen == self.gens[src] {
                return ev;
            }
        }
    }

    fn wait_done(&self, wait: &Wait) -> bool {
        match wait {
            Wait::StatsAndRelays => {
                self.gather.stats.iter().all(Option::is_some)
                    && self.gather.relayed.iter().all(|&r| r)
            }
            Wait::Norm => self.gather.norm.iter().all(Option::is_some),
            Wait::Upd => self.gather.upd.iter().all(Option::is_some),
        }
    }

    /// Process events until `wait` completes, relaying exchanges and
    /// filling accept slots as frames arrive.
    fn pump(&mut self, epoch: u64, faults: &FaultPlan, wait: Wait) -> SendResult {
        while !self.wait_done(&wait) {
            match self.next_event() {
                Event::Lost { src, detail, .. } => return Err((src, detail)),
                Event::Frames { src, batch, .. } => {
                    for raw in batch {
                        self.handle_frame(src, raw, epoch, faults)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn handle_frame(
        &mut self,
        src: usize,
        raw: Vec<u8>,
        epoch: u64,
        faults: &FaultPlan,
    ) -> SendResult {
        self.bytes_received += raw.len() as u64;
        let w = self.w();
        let payload = raw_frame_payload(&raw);
        let tag = tag_of(payload).map_err(|e| (src, format!("corrupt frame: {e}")))?;
        match tag {
            TAG_EXCH => {
                let (ep, s, d) = exch_header(payload)
                    .map_err(|e| (src, format!("corrupt exchange header: {e}")))?;
                let (s, d) = (s as usize, d as usize);
                if ep != epoch {
                    return Ok(()); // stale replay from an earlier attempt
                }
                if s != src || d >= w || d == s {
                    return Err((src, format!("bogus exchange route {s} -> {d}")));
                }
                if !self.gather.relayed[s * w + d] {
                    self.gather.relayed[s * w + d] = true;
                    self.relay_buf[d].extend_from_slice(&raw);
                    // The mid-exchange kill fires once some of the
                    // victim's deltas are verifiably staged for relay.
                    if faults.take_kill_mid_exchange(epoch as usize, s) {
                        let _ = self.slots[s].child.kill();
                    }
                }
                Ok(())
            }
            TAG_CHUNK_STATS | TAG_NORM_PART | TAG_UPD_ROWS => {
                let (ep, s) = msg_epoch_src(payload)
                    .map_err(|e| (src, format!("corrupt message header: {e}")))?;
                if ep != epoch {
                    return Ok(());
                }
                if s as usize != src {
                    return Err((src, format!("message claims source {s}")));
                }
                match tag {
                    TAG_CHUNK_STATS if self.gather.stats[src].is_none() => {
                        let expect = self.slots[src].chunk_end - self.slots[src].chunk_start;
                        let (_, losses, h) = decode_chunk_stats(payload, epoch, self.rank)
                            .map_err(|e| (src, format!("corrupt chunk stats: {e}")))?;
                        if losses.len() != expect {
                            return Err((
                                src,
                                format!("{} chunks reported, block has {expect}", losses.len()),
                            ));
                        }
                        self.gather.stats[src] = Some((losses, h));
                    }
                    TAG_NORM_PART if self.gather.norm[src].is_none() => {
                        let (_, dots) = decode_norm_part(payload, epoch, self.row_counts[src])
                            .map_err(|e| (src, format!("corrupt norm partial: {e}")))?;
                        self.gather.norm[src] = Some(dots);
                    }
                    TAG_UPD_ROWS if self.gather.upd[src].is_none() => {
                        // Buffered, not applied: an early replica must not
                        // touch the model the tail still reads.
                        self.gather.upd[src] = Some(raw);
                    }
                    _ => {} // duplicate replica of a filled slot
                }
                Ok(())
            }
            // A snapshot reply trailing in from an aborted cadence point;
            // the snap gather below re-requests what it needs.
            TAG_SNAP_ROWS => Ok(()),
            other => Err((src, format!("unexpected tag {other} from worker"))),
        }
    }

    /// Re-install every worker's owned-range state (initial handshake,
    /// rollback, respawn). The FIFO stream makes this a clean reset at
    /// any worker receive point.
    fn adopt_all(&mut self, epoch: usize, model: &TcssModel, adam: &AdamState) -> SendResult {
        let r = self.rank;
        for dest in 0..self.w() {
            let rg = self.ranges[dest];
            let parts = [
                (
                    &model.u1.as_slice()[rg[0].0 * r..rg[0].1 * r],
                    &adam.m.u1.as_slice()[rg[0].0 * r..rg[0].1 * r],
                    &adam.v.u1.as_slice()[rg[0].0 * r..rg[0].1 * r],
                ),
                (
                    &model.u2.as_slice()[rg[1].0 * r..rg[1].1 * r],
                    &adam.m.u2.as_slice()[rg[1].0 * r..rg[1].1 * r],
                    &adam.v.u2.as_slice()[rg[1].0 * r..rg[1].1 * r],
                ),
                (
                    &model.u3.as_slice()[rg[2].0 * r..rg[2].1 * r],
                    &adam.m.u3.as_slice()[rg[2].0 * r..rg[2].1 * r],
                    &adam.v.u3.as_slice()[rg[2].0 * r..rg[2].1 * r],
                ),
            ];
            encode_adopt_into(self.fbuf.payload(), epoch as u64, adam.t, parts);
            self.send_built(dest)?;
        }
        Ok(())
    }

    /// One epoch attempt over the fleet. Any transport failure or decode
    /// error surfaces as [`Attempt::Lost`] for respawn + rollback.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        epoch: usize,
        model: &mut TcssModel,
        adam: &mut AdamState,
        ws: &TrainWorkspace,
        tail: &mut Grads,
        loss_terms: &mut Vec<f64>,
        h_grad: &mut Vec<f64>,
        lr_scale: f64,
        faults: &FaultPlan,
    ) -> Attempt {
        let trainer = self.trainer;
        let cfg = &trainer.config;
        let ep = epoch as u64;
        let w = self.w();
        self.gather_reset();

        // 1. Step broadcast — the plain protocol's per-worker U¹ windows,
        // minus each worker's resident owned rows (StepOwned hole).
        for dest in 0..w {
            let (u1_lo, u1_hi) = (self.slots[dest].u1_lo, self.slots[dest].u1_hi);
            encode_step_owned_into(
                self.fbuf.payload(),
                ep,
                model,
                u1_lo,
                u1_hi,
                self.ranges[dest][0],
            );
            if let Err((worker, detail)) = self.send_built(dest) {
                return Attempt::Lost { worker, detail };
            }
        }

        // 2. The coordinator tail, overlapped with worker evaluation when
        // configured (reader threads keep draining either way, so the
        // knob only moves *when* relays happen — never what any peer
        // computes). On Gram-only epochs the coordinator computes just
        // the `r × r` D matrices (plus loss terms and the `h` tail, into
        // `tail.h`) and skips the dense factor matmuls entirely — the
        // workers rebuild their owned rows from the broadcast D.
        let active = trainer.tail_active(epoch);
        let gram = active && trainer.tail_gram_only(epoch);
        let mut l1 = 0.0;
        let mut dmats: Option<[Matrix; 3]> = None;
        let mut tail_done = false;
        if self.dist.overlap {
            if gram {
                dmats = Some(trainer.epoch_tail_gram(model, loss_terms, &mut tail.h));
            } else {
                l1 = trainer.epoch_tail_deferred(model, epoch, ws, tail, loss_terms);
            }
            tail_done = true;
        }

        // 3. Chunk stats + full exchange relay.
        if let Err((worker, detail)) = self.pump(ep, faults, Wait::StatsAndRelays) {
            return Attempt::Lost { worker, detail };
        }
        if !tail_done {
            if gram {
                dmats = Some(trainer.epoch_tail_gram(model, loss_terms, &mut tail.h));
            } else {
                l1 = trainer.epoch_tail_deferred(model, epoch, ws, tail, loss_terms);
            }
        }

        // 4. TailRows: the exchange barrier plus the owned tail — dense
        // slices on head epochs, the shared D matrices otherwise. Each
        // worker's buffered relays and its TailRows frame go out in one
        // write, preserving the relays-then-barrier FIFO order.
        let r = self.rank;
        for dest in 0..w {
            let rg = self.ranges[dest];
            let p = self.fbuf.payload();
            if !active {
                encode_tail_inactive_into(p, ep);
            } else if let Some(d) = &dmats {
                encode_tail_gram_into(p, ep, d);
            } else {
                encode_tail_rows_into(
                    p,
                    ep,
                    [
                        &tail.u1.as_slice()[rg[0].0 * r..rg[0].1 * r],
                        &tail.u2.as_slice()[rg[1].0 * r..rg[1].1 * r],
                        &tail.u3.as_slice()[rg[2].0 * r..rg[2].1 * r],
                    ],
                );
            }
            self.relay_buf[dest].extend_from_slice(self.fbuf.finish());
            if let Err((worker, detail)) = self.send_pending(dest) {
                return Attempt::Lost { worker, detail };
            }
        }

        // 5. Fold the loss and the h gradient: chunk losses in ascending
        // chunk order, then the deferred Gram terms in emission order —
        // the exact in-process accumulator sequence.
        let mut l2 = 0.0;
        for src in 0..w {
            let (losses, _) = self.gather.stats[src].as_ref().expect("pump completed");
            for &chunk_loss in losses {
                l2 += chunk_loss;
            }
        }
        for &term in loss_terms.iter() {
            l2 += term;
        }
        h_grad.clear();
        h_grad.resize(r, 0.0);
        for src in 0..w {
            let (_, h) = self.gather.stats[src].as_ref().expect("pump completed");
            for chunk in h.chunks_exact(r) {
                for (d, s) in h_grad.iter_mut().zip(chunk) {
                    *d += *s;
                }
            }
        }
        if active {
            kernels::axpy(1.0, &tail.h, h_grad);
        }

        // 6. Norm fold + watchdog.
        if let Err((worker, detail)) = self.pump(ep, faults, Wait::Norm) {
            return Attempt::Lost { worker, detail };
        }
        let mut acc = 0.0;
        for f in 0..3 {
            for src in 0..w {
                let dots = &self.gather.norm[src].as_ref().expect("pump completed")[f];
                Grads::norm_fold_rows(&mut acc, dots);
            }
        }
        acc += kernels::dot(h_grad, h_grad);
        let mut gnorm = acc.sqrt();
        if faults.take_poison(epoch) {
            // The plain path NaN-fills the merged gradient buffer; here
            // the buffers live on the workers, so poison the fold — the
            // same watchdog trips and the poisoned attempt is discarded
            // whole, leaving an identical post-rollback trajectory.
            gnorm = f64::NAN;
        }
        if let Some(detail) = divergence_trouble(cfg, l2, l1, gnorm) {
            return Attempt::Diverged { detail };
        }

        // 7. Verdict + the coordinator's own h step.
        let lr_eff = cfg.learning_rate * lr_scale;
        for dest in 0..w {
            encode_verdict_into(self.fbuf.payload(), ep, lr_eff);
            if let Err((worker, detail)) = self.send_built(dest) {
                return Attempt::Lost { worker, detail };
            }
        }
        adam.t += 1;
        let p = kernels::AdamParams::for_step(lr_eff, cfg.weight_decay, adam.t);
        kernels::adam_update(&mut model.h, h_grad, &mut adam.m.h, &mut adam.v.h, &p);

        // 8. Splice the worker-stepped rows into the authoritative model.
        if let Err((worker, detail)) = self.pump(ep, faults, Wait::Upd) {
            return Attempt::Lost { worker, detail };
        }
        for src in 0..w {
            let raw = self.gather.upd[src].take().expect("pump completed");
            let rg = self.ranges[src];
            let dests = [
                &mut model.u1.as_mut_slice()[rg[0].0 * r..rg[0].1 * r],
                &mut model.u2.as_mut_slice()[rg[1].0 * r..rg[1].1 * r],
                &mut model.u3.as_mut_slice()[rg[2].0 * r..rg[2].1 * r],
            ];
            match apply_upd_rows(raw_frame_payload(&raw), ep, dests) {
                Ok(busy_ns) => self.worker_busy_ns[src] += busy_ns,
                Err(e) => {
                    return Attempt::Lost {
                        worker: src,
                        detail: format!("corrupt updated rows: {e}"),
                    }
                }
            }
        }
        Attempt::Stepped { l2, l1 }
    }

    /// Gather the resident moments into `adam` so checkpoints stay
    /// worker-count-independent. `label` is the completed-epoch count,
    /// matching [`Checkpoint::epoch`].
    fn snap(&mut self, label: u64, adam: &mut AdamState) -> SendResult {
        let w = self.w();
        for dest in 0..w {
            encode_snap_req_into(self.fbuf.payload(), label);
            self.send_built(dest)?;
        }
        let r = self.rank;
        let mut done = vec![false; w];
        while !done.iter().all(|&d| d) {
            let (src, batch) = match self.next_event() {
                Event::Lost { src, detail, .. } => return Err((src, detail)),
                Event::Frames { src, batch, .. } => (src, batch),
            };
            for raw in batch {
                self.bytes_received += raw.len() as u64;
                let payload = raw_frame_payload(&raw);
                let tag = tag_of(payload).map_err(|e| (src, format!("corrupt frame: {e}")))?;
                if tag != TAG_SNAP_ROWS {
                    continue; // stale attempt leftovers; all consumed slots
                }
                let (ep, s) = msg_epoch_src(payload)
                    .map_err(|e| (src, format!("corrupt snap header: {e}")))?;
                if ep != label || done[src] {
                    continue;
                }
                if s as usize != src {
                    return Err((src, format!("snapshot claims source {s}")));
                }
                let rg = self.ranges[src];
                let m_dests = [
                    &mut adam.m.u1.as_mut_slice()[rg[0].0 * r..rg[0].1 * r],
                    &mut adam.m.u2.as_mut_slice()[rg[1].0 * r..rg[1].1 * r],
                    &mut adam.m.u3.as_mut_slice()[rg[2].0 * r..rg[2].1 * r],
                ];
                let v_dests = [
                    &mut adam.v.u1.as_mut_slice()[rg[0].0 * r..rg[0].1 * r],
                    &mut adam.v.u2.as_mut_slice()[rg[1].0 * r..rg[1].1 * r],
                    &mut adam.v.u3.as_mut_slice()[rg[2].0 * r..rg[2].1 * r],
                ];
                apply_snap_rows(payload, label, m_dests, v_dests)
                    .map_err(|e| (src, format!("corrupt snap rows: {e}")))?;
                done[src] = true;
            }
        }
        Ok(())
    }

    fn shutdown(&mut self) {
        self.trainer.shutdown_fleet(&mut self.slots);
    }
}

/// Respawn a lost worker, roll the run back to its last checkpoint, and
/// re-Adopt the whole fleet; loops if the Adopt broadcast itself loses
/// another worker. Consumes one respawn-budget unit per loss.
#[allow(clippy::too_many_arguments)]
fn recover(
    fleet: &mut Fleet<'_>,
    checkpoint_path: &Option<PathBuf>,
    last_good: &(TcssModel, AdamState, usize),
    model: &mut TcssModel,
    adam: &mut AdamState,
    epoch: &mut usize,
    lr_scale: &mut f64,
    retries: &mut u32,
    mut lost: (usize, String),
) -> Result<(), TrainError> {
    loop {
        let (worker, detail) = lost;
        fleet.respawns += 1;
        if fleet.respawns > fleet.dist.max_respawns {
            fleet.shutdown();
            return Err(TrainError::Dist(DistError::RespawnBudgetExhausted {
                worker,
                epoch: *epoch,
                respawns: fleet.respawns,
                detail,
            }));
        }
        let trainer = fleet.trainer;
        let dist = fleet.dist;
        let (chunk_start, chunk_end) = (
            fleet.slots[worker].chunk_start,
            fleet.slots[worker].chunk_end,
        );
        let _ = fleet.slots[worker].child.kill();
        let _ = fleet.slots[worker].child.wait();
        // Invalidate the dead worker's reader before its replacement
        // starts producing events.
        fleet.gens[worker] += 1;
        fleet.slots[worker] =
            trainer.spawn_worker(dist, &fleet.guard, worker, chunk_start, chunk_end)?;
        spawn_reader(
            &fleet.slots[worker].stream,
            worker,
            fleet.gens[worker],
            &fleet.tx,
        )?;
        // Same restore policy as the plain protocol: the on-disk
        // checkpoint when checkpointing is enabled, else the in-memory
        // rollback snapshot — refreshed at the same cadence points, so
        // identical states.
        match checkpoint_path.as_ref().filter(|p| p.exists()) {
            Some(path) => {
                let ck = load_checkpoint(path)?;
                *model = ck.model;
                *adam = AdamState {
                    m: ck.m,
                    v: ck.v,
                    t: ck.adam_t,
                };
                *epoch = ck.epoch;
                *lr_scale = ck.lr_scale;
                *retries = ck.retries;
            }
            None => {
                *model = last_good.0.clone();
                *adam = last_good.1.clone();
                *epoch = last_good.2;
            }
        }
        match fleet.adopt_all(*epoch, model, adam) {
            Ok(()) => return Ok(()),
            Err(next_lost) => lost = next_lost,
        }
    }
}

/// Tail-sharded counterpart of
/// [`TcssTrainer::train_distributed_with_faults`], dispatched from it
/// when [`DistConfig::tail_shard`] is set. Same guarantees, same bits —
/// the serial coordinator tail replaced by the owner-computes protocol
/// described in the module docs.
pub(super) fn train_tail_sharded(
    trainer: &TcssTrainer,
    dist: &DistConfig,
    faults: &FaultPlan,
    on_epoch: &mut dyn FnMut(TrainContext),
) -> Result<DistReport, TrainError> {
    let cfg = &trainer.config;
    let fingerprint = config_fingerprint(cfg);
    let n_entries = trainer.tensor.entries().len();
    let n_chunks = tcss_linalg::chunk_count(n_entries, ENTRIES_PER_CHUNK);
    let w = dist.workers;
    let dims = trainer.tensor.dims();
    let blocks: Vec<(usize, usize)> = (0..w)
        .map(|i| (i * n_chunks / w, (i + 1) * n_chunks / w))
        .collect();

    let guard = bind_socket(dist)?;
    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(w);
    for (worker, &(chunk_start, chunk_end)) in blocks.iter().enumerate() {
        slots.push(trainer.spawn_worker(dist, &guard, worker, chunk_start, chunk_end)?);
    }
    let (tx, rx) = mpsc::channel();
    for (src, slot) in slots.iter().enumerate() {
        spawn_reader(&slot.stream, src, 0, &tx)?;
    }
    let ranges: Vec<[(usize, usize); 3]> = (0..w)
        .map(|i| {
            [
                owned_range(dims.0, w, i),
                owned_range(dims.1, w, i),
                owned_range(dims.2, w, i),
            ]
        })
        .collect();
    let row_counts = ranges
        .iter()
        .map(|rg| [rg[0].1 - rg[0].0, rg[1].1 - rg[1].0, rg[2].1 - rg[2].0])
        .collect();
    let mut fleet = Fleet {
        trainer,
        dist,
        guard,
        slots,
        gens: vec![0; w],
        tx,
        rx,
        ranges,
        row_counts,
        rank: cfg.rank,
        gather: Gather::default(),
        fbuf: FrameBuf::new(),
        relay_buf: Vec::new(),
        bytes_sent: 0,
        bytes_received: 0,
        worker_busy_ns: vec![0; w],
        epochs_dispatched: 0,
        respawns: 0,
    };

    // --- Run state: identical to the in-process checkpointed loop ------
    let (mut model, mut adam, start_epoch, mut lr_scale, mut retries) =
        trainer.init_run_state(fingerprint)?;
    let mut last_good = (model.clone(), adam.clone(), start_epoch);
    let checkpoint_path = cfg
        .checkpoint_dir
        .as_ref()
        .map(|dir| dir.join(crate::checkpoint::CHECKPOINT_FILE));
    if let Some(dir) = &cfg.checkpoint_dir {
        std::fs::create_dir_all(dir).map_err(|e| TrainError::Checkpoint(ModelIoError::Fs(e)))?;
    }

    let ws = TrainWorkspace::new();
    let mut tail = Grads::zeros(&model);
    let mut loss_terms: Vec<f64> = Vec::new();
    let mut h_grad: Vec<f64> = Vec::new();
    let mut epoch = start_epoch;

    // Every worker starts by adopting its owned-range state.
    if let Err(lost) = fleet.adopt_all(epoch, &model, &adam) {
        recover(
            &mut fleet,
            &checkpoint_path,
            &last_good,
            &mut model,
            &mut adam,
            &mut epoch,
            &mut lr_scale,
            &mut retries,
            lost,
        )?;
    }

    while epoch < cfg.epochs {
        if faults.take_crash(epoch) {
            fleet.shutdown();
            return Err(TrainError::InjectedCrash { epoch });
        }
        if let Some(victim) = faults.take_kill_worker(epoch) {
            if let Some(slot) = fleet.slots.get_mut(victim) {
                let _ = slot.child.kill();
                let _ = slot.child.wait();
            }
        }

        fleet.epochs_dispatched += 1;
        let epoch_sent0 = fleet.bytes_sent;
        let epoch_recv0 = fleet.bytes_received;
        match fleet.attempt(
            epoch,
            &mut model,
            &mut adam,
            &ws,
            &mut tail,
            &mut loss_terms,
            &mut h_grad,
            lr_scale,
            faults,
        ) {
            Attempt::Lost { worker, detail } => {
                recover(
                    &mut fleet,
                    &checkpoint_path,
                    &last_good,
                    &mut model,
                    &mut adam,
                    &mut epoch,
                    &mut lr_scale,
                    &mut retries,
                    (worker, detail),
                )?;
            }
            Attempt::Diverged { detail } => {
                retries += 1;
                if retries > cfg.max_retries {
                    fleet.shutdown();
                    return Err(TrainError::Diverged {
                        epoch,
                        retries,
                        detail,
                    });
                }
                lr_scale *= cfg.lr_backoff;
                model = last_good.0.clone();
                adam = last_good.1.clone();
                epoch = last_good.2;
                // The rollback reset: workers abandon the poisoned
                // attempt wherever they are waiting.
                if let Err(lost) = fleet.adopt_all(epoch, &model, &adam) {
                    recover(
                        &mut fleet,
                        &checkpoint_path,
                        &last_good,
                        &mut model,
                        &mut adam,
                        &mut epoch,
                        &mut lr_scale,
                        &mut retries,
                        lost,
                    )?;
                }
            }
            Attempt::Stepped { l2, l1 } => {
                on_epoch(TrainContext {
                    epoch,
                    l2,
                    l1,
                    bytes_sent: fleet.bytes_sent - epoch_sent0,
                    bytes_received: fleet.bytes_received - epoch_recv0,
                });
                epoch += 1;

                let due = epoch.is_multiple_of(cfg.checkpoint_every) || epoch == cfg.epochs;
                if due {
                    if let Err(lost) = fleet.snap(epoch as u64, &mut adam) {
                        recover(
                            &mut fleet,
                            &checkpoint_path,
                            &last_good,
                            &mut model,
                            &mut adam,
                            &mut epoch,
                            &mut lr_scale,
                            &mut retries,
                            lost,
                        )?;
                        continue;
                    }
                    if model_is_finite(&model) {
                        last_good = (model.clone(), adam.clone(), epoch);
                        if let Some(path) = &checkpoint_path {
                            let ck = Checkpoint {
                                epoch,
                                adam_t: adam.t,
                                lr_scale,
                                retries,
                                seed: cfg.seed,
                                fingerprint,
                                model: model.clone(),
                                m: adam.m.clone(),
                                v: adam.v.clone(),
                            };
                            save_checkpoint(&ck, path)?;
                        }
                    }
                }
            }
        }
    }

    fleet.shutdown();
    Ok(DistReport {
        report: TrainReport {
            model,
            start_epoch,
            rollbacks: retries,
            lr_scale,
        },
        workers: w,
        respawns: fleet.respawns,
        bytes_sent: fleet.bytes_sent,
        bytes_received: fleet.bytes_received,
        worker_busy_ns: fleet.worker_busy_ns,
        epochs_dispatched: fleet.epochs_dispatched,
    })
}
