//! Mode-sharded multi-process training with bitwise process-count parity.
//!
//! Single-process epoch speedup is saturated (see BENCH_train_kernels):
//! the deterministic chunk scheduler has hit its ceiling inside one
//! address space. This module goes past it the way distributed-memory
//! tensor-completion systems do (Singh et al., arXiv:1910.02371): shard
//! the COO entry-chunk grid across worker **processes** and exchange only
//! [`crate::sparse_grads::SparseGrads`]-style touched-row deltas per step.
//!
//! # Architecture
//!
//! * **Coordinator** ([`coordinator`], driven through
//!   [`crate::train::TcssTrainer::train_distributed`]) — owns the model,
//!   the Adam state, the whole-data Gram tail, the Hausdorff head, the
//!   divergence watchdog, and the checkpoints. It spawns N workers,
//!   assigns each a **contiguous block** of the global entry-chunk grid,
//!   broadcasts the full model each step, and merges the returned deltas.
//! * **Workers** ([`worker::run_worker`], the hidden `dist-worker` CLI
//!   subcommand / the `tcss-dist-worker` test binary) — stateless chunk
//!   evaluators. A worker holds the tensor (shipped once in Setup) and,
//!   per step, the broadcast model; it evaluates exactly the per-chunk
//!   kernels the in-process path runs and ships each chunk's delta back
//!   un-merged.
//! * **Transport** ([`wire`]) — Unix sockets with hand-rolled
//!   length-prefixed framing (no async runtime), every frame checksummed
//!   with [`crate::digest::fnv1a64`].
//!
//! # The process-count-parity contract
//!
//! The thread-count-parity contract of `tcss_linalg::parallel` extends to
//! worker processes because nothing about the float stream changes:
//!
//! 1. the **global chunk grid** (`chunk_count(nnz, ENTRIES_PER_CHUNK)`)
//!    depends only on the tensor, never on the worker count;
//! 2. each chunk's value is computed by the *same* kernel functions the
//!    in-process path calls ([`crate::loss::l2_entry_chunk`] /
//!    `negative_sampling_chunk`), pure functions of `(model, entries,
//!    global range)` — a worker's thread count only reorders *which cores*
//!    evaluate chunks, never their contents;
//! 3. workers own contiguous blocks in worker order, and the coordinator
//!    merges worker 0's chunks, then worker 1's, … so the merge visits
//!    chunks in ascending **global** chunk order — the exact add sequence
//!    of the single-process fold;
//! 4. floats travel as `f64::to_le_bytes` (lossless), and the coordinator
//!    replays each chunk's scatter adds element-for-element.
//!
//! Therefore 1, 2, and 4 workers (at any `TCSS_NUM_THREADS` per worker)
//! produce bit-identical models to the in-process trainer —
//! `tests/dist_parity.rs` proptests this end to end.
//!
//! # Failure model
//!
//! Workers are stateless, so recovery is replay: if a worker dies
//! (detected as an I/O error or EOF on its socket — there are no
//! application-level timeouts to tune), the coordinator respawns it,
//! re-sends Setup, rolls the run back to the last checkpoint (the on-disk
//! one when checkpointing is enabled, else the in-memory rollback
//! snapshot), and continues; `max_respawns` bounds the budget. Epoch
//! replay is bit-exact for the same reason resume is: epochs are pure
//! functions of `(model, adam, epoch)`. The kill-worker fault in
//! [`crate::fault::FaultPlan`] drives this path in `tests/dist_fault.rs`.

pub mod coordinator;
pub mod wire;
pub mod worker;

pub use coordinator::{DistConfig, DistReport};
pub use wire::{encode_frame, FrameDecoder, WireError};
pub use worker::run_worker;

use std::io::Read;

/// Typed failures of the distributed runtime.
#[derive(Debug)]
pub enum DistError {
    /// Spawning a worker process failed.
    Spawn {
        /// The worker program that failed to start.
        program: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Socket-level I/O failed (bind, accept, read, write).
    Io(std::io::Error),
    /// A frame or message failed to decode.
    Wire(WireError),
    /// A peer violated the coordinator/worker protocol.
    Protocol(String),
    /// A worker died and the respawn budget is exhausted.
    RespawnBudgetExhausted {
        /// Worker whose loss exhausted the budget.
        worker: usize,
        /// Epoch being dispatched when it was lost.
        epoch: usize,
        /// Respawns consumed (the budget plus the final straw).
        respawns: u32,
        /// How the loss surfaced.
        detail: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn { program, source } => {
                write!(f, "failed to spawn worker program {program:?}: {source}")
            }
            DistError::Io(e) => write!(f, "transport I/O error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::RespawnBudgetExhausted {
                worker,
                epoch,
                respawns,
                detail,
            } => write!(
                f,
                "worker {worker} lost at epoch {epoch} after {respawns} respawn(s) \
                 exhausted the budget: {detail}"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Read whole frames from a blocking stream through a push-based decoder.
/// A clean EOF between frames is `Ok(None)`; EOF mid-frame is a typed
/// [`WireError::TruncatedEof`].
pub(crate) fn read_frame(
    stream: &mut impl Read,
    dec: &mut FrameDecoder,
) -> Result<Option<Vec<u8>>, DistError> {
    let mut tmp = [0u8; 64 * 1024];
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(Some(frame));
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            dec.finish()?;
            return Ok(None);
        }
        dec.push(&tmp[..n]);
    }
}
