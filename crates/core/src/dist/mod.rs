//! Mode-sharded multi-process training with bitwise process-count parity.
//!
//! Single-process epoch speedup is saturated (see BENCH_train_kernels):
//! the deterministic chunk scheduler has hit its ceiling inside one
//! address space. This module goes past it the way distributed-memory
//! tensor-completion systems do (Singh et al., arXiv:1910.02371): shard
//! the COO entry-chunk grid across worker **processes** and exchange only
//! [`crate::sparse_grads::SparseGrads`]-style touched-row deltas per step.
//!
//! # Architecture
//!
//! * **Coordinator** ([`coordinator`], driven through
//!   [`crate::train::TcssTrainer::train_distributed`]) — owns the model,
//!   the Adam state, the whole-data Gram tail, the Hausdorff head, the
//!   divergence watchdog, and the checkpoints. It spawns N workers,
//!   assigns each a **contiguous block** of the global entry-chunk grid,
//!   broadcasts the full model each step, and merges the returned deltas.
//! * **Workers** ([`worker::run_worker`], the hidden `dist-worker` CLI
//!   subcommand / the `tcss-dist-worker` test binary) — stateless chunk
//!   evaluators. A worker holds the tensor (shipped once in Setup) and,
//!   per step, the broadcast model; it evaluates exactly the per-chunk
//!   kernels the in-process path runs and ships each chunk's delta back
//!   un-merged.
//! * **Transport** ([`wire`]) — Unix sockets with hand-rolled
//!   length-prefixed framing (no async runtime), every frame checksummed
//!   with [`crate::digest::fnv1a64`].
//!
//! # The process-count-parity contract
//!
//! The thread-count-parity contract of `tcss_linalg::parallel` extends to
//! worker processes because nothing about the float stream changes:
//!
//! 1. the **global chunk grid** (`chunk_count(nnz, ENTRIES_PER_CHUNK)`)
//!    depends only on the tensor, never on the worker count;
//! 2. each chunk's value is computed by the *same* kernel functions the
//!    in-process path calls ([`crate::loss::l2_entry_chunk`] /
//!    `negative_sampling_chunk`), pure functions of `(model, entries,
//!    global range)` — a worker's thread count only reorders *which cores*
//!    evaluate chunks, never their contents;
//! 3. workers own contiguous blocks in worker order, and the coordinator
//!    merges worker 0's chunks, then worker 1's, … so the merge visits
//!    chunks in ascending **global** chunk order — the exact add sequence
//!    of the single-process fold;
//! 4. floats travel as `f64::to_le_bytes` (lossless), and the coordinator
//!    replays each chunk's scatter adds element-for-element.
//!
//! Therefore 1, 2, and 4 workers (at any `TCSS_NUM_THREADS` per worker)
//! produce bit-identical models to the in-process trainer —
//! `tests/dist_parity.rs` proptests this end to end.
//!
//! # Tail sharding
//!
//! With [`DistConfig::tail_shard`] the coordinator's serial epoch tail
//! (merge, norm, Adam over the whole model) moves to the workers:
//! each owns a contiguous row range of every factor, keeps Adam state
//! resident, exchanges un-merged row deltas with its peers through a
//! coordinator relay, and applies the optimizer itself — the coordinator
//! drops to folds, the dense core `h`, and a gather-and-splice. The
//! parity contract extends because any decomposition that preserves each
//! gradient *element*'s ascending-chunk add order is bitwise identical;
//! see [`sharded`] and DESIGN.md §5j.
//!
//! # Failure model
//!
//! Workers are stateless, so recovery is replay: if a worker dies
//! (detected as an I/O error or EOF on its socket — there are no
//! application-level timeouts to tune), the coordinator respawns it,
//! re-sends Setup, rolls the run back to the last checkpoint (the on-disk
//! one when checkpointing is enabled, else the in-memory rollback
//! snapshot), and continues; `max_respawns` bounds the budget. Epoch
//! replay is bit-exact for the same reason resume is: epochs are pure
//! functions of `(model, adam, epoch)`. The kill-worker fault in
//! [`crate::fault::FaultPlan`] drives this path in `tests/dist_fault.rs`.

pub mod coordinator;
pub mod sharded;
pub mod wire;
pub mod worker;

pub use coordinator::{DistConfig, DistReport};
pub use wire::{encode_frame, FrameDecoder, WireError};
pub use worker::run_worker;

use std::io::Read;

/// Typed failures of the distributed runtime.
#[derive(Debug)]
pub enum DistError {
    /// Spawning a worker process failed.
    Spawn {
        /// The worker program that failed to start.
        program: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Socket-level I/O failed (bind, accept, read, write).
    Io(std::io::Error),
    /// A frame or message failed to decode.
    Wire(WireError),
    /// A peer violated the coordinator/worker protocol.
    Protocol(String),
    /// A worker died and the respawn budget is exhausted.
    RespawnBudgetExhausted {
        /// Worker whose loss exhausted the budget.
        worker: usize,
        /// Epoch being dispatched when it was lost.
        epoch: usize,
        /// Respawns consumed (the budget plus the final straw).
        respawns: u32,
        /// How the loss surfaced.
        detail: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Spawn { program, source } => {
                write!(f, "failed to spawn worker program {program:?}: {source}")
            }
            DistError::Io(e) => write!(f, "transport I/O error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            DistError::RespawnBudgetExhausted {
                worker,
                epoch,
                respawns,
                detail,
            } => write!(
                f,
                "worker {worker} lost at epoch {epoch} after {respawns} respawn(s) \
                 exhausted the budget: {detail}"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Monotonic on-CPU time of the calling process, in nanoseconds.
///
/// Workers report their per-step `busy_ns` with this clock, and the
/// critical-path accounting in `bench_distributed` subtracts the sum
/// from the wall clock to recover the coordinator-serial share. A wall
/// clock would charge involuntary preemption to the worker: on an
/// oversubscribed host `Σ busy` then saturates the wall and the
/// coordinator share clamps to zero, understating the serial tail.
///
/// On Linux/x86-64 this is `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)`
/// via a raw syscall (the workspace deliberately has no libc
/// dependency). Process scope matters: a multi-threaded worker evaluates
/// chunks on scoped pool threads, whose CPU a thread-scoped clock would
/// misattribute to the coordinator residual — and since those threads
/// only live inside the eval call, blocking waits still accrue ~zero.
/// The clock folds running threads' unexpired time slices into the
/// result, so millisecond spans measure exactly — unlike
/// `/proc/*/schedstat` or `utime`, which only advance on scheduler
/// ticks and can report near-zero for any span shorter than one.
/// Elsewhere it falls back to a process-wide wall clock.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn busy_now_ns() -> u64 {
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_PROCESS_CPUTIME_ID: i64 = 2;
    let mut ts = [0i64; 2]; // timespec { tv_sec, tv_nsec }
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_PROCESS_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _, // syscall clobbers rcx (return RIP)
            lateout("r11") _, // and r11 (saved RFLAGS)
            options(nostack),
        );
    }
    if ret == 0 {
        (ts[0] as u64) * 1_000_000_000 + ts[1] as u64
    } else {
        fallback_wall_ns()
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn busy_now_ns() -> u64 {
    fallback_wall_ns()
}

fn fallback_wall_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Read whole frames from a blocking stream through a push-based decoder.
/// A clean EOF between frames is `Ok(None)`; EOF mid-frame is a typed
/// [`WireError::TruncatedEof`].
pub(crate) fn read_frame(
    stream: &mut impl Read,
    dec: &mut FrameDecoder,
) -> Result<Option<Vec<u8>>, DistError> {
    let mut tmp = [0u8; 64 * 1024];
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(Some(frame));
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            dec.finish()?;
            return Ok(None);
        }
        dec.push(&tmp[..n]);
    }
}
