//! Embedding initialization (paper §IV-A).
//!
//! The spectral method unfolds the observed tensor along each mode, forms
//! the Gram matrix with its diagonal zeroed (the diagonal "bears too much
//! influence on the principal directions"), and takes the top-`r`
//! eigenvectors as the initial factors (Eq 4). The Gram matrices are never
//! materialized — [`tcss_sparse::ModeGramOp`] applies them matrix-free.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_linalg::eigen::OrthIterConfig;
use tcss_linalg::{top_r_eigenvectors, Matrix};
use tcss_sparse::{Mode, ModeGramOp, SparseTensor3};

/// Spectral initialization: `(U¹, U², U³)` with shapes `I×r`, `J×r`, `K×r`.
///
/// Each factor holds the top-`r` eigenvectors of `(A Aᵀ)|off-diag` for the
/// corresponding matricization. `r` must not exceed `min(I, J, K)` (the
/// paper notes the same constraint: `r ≤ K − 1` at month granularity caps
/// `r` at 10 in their experiments).
pub fn spectral_init(tensor: &SparseTensor3, r: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let cfg = OrthIterConfig {
        seed,
        ..Default::default()
    };
    let factors: Vec<Matrix> = Mode::ALL
        .iter()
        .map(|&mode| {
            let op = ModeGramOp::new(tensor, mode);
            let (_vals, vecs) =
                top_r_eigenvectors(&op, r, &cfg).expect("rank was validated against dims");
            vecs
        })
        .collect();
    let mut it = factors.into_iter();
    (
        it.next().expect("three factors"),
        it.next().expect("three factors"),
        it.next().expect("three factors"),
    )
}

/// Calibrate the factor-importance vector `h` by exact least squares.
///
/// Given factors, the whole-data loss (Eq 15) is *quadratic in h*:
/// `L(h) = hᵀ A h − 2 bᵀ h + const` with
/// `A = (w₊−w₋) Σ_pos z zᵀ + w₋ (G¹ ∘ G² ∘ G³)` and `b = w₊ Σ_pos z`,
/// where `z_e = U¹ᵢ ⊙ U²ⱼ ⊙ U³ₖ`. Solving `A h = b` completes the paper's
/// "careful initialization": the spectral factors are rough estimates, and
/// this puts `h` at the exact optimum for them before gradient descent.
pub fn solve_h(
    tensor: &SparseTensor3,
    u1: &Matrix,
    u2: &Matrix,
    u3: &Matrix,
    w_plus: f64,
    w_minus: f64,
) -> Vec<f64> {
    let r = u1.cols();
    let mut a = Matrix::zeros(r, r);
    let mut b = vec![0.0; r];
    let mut z = vec![0.0; r];
    for e in tensor.entries() {
        let (ui, uj, uk) = (u1.row(e.i), u2.row(e.j), u3.row(e.k));
        for t in 0..r {
            z[t] = ui[t] * uj[t] * uk[t];
        }
        for t1 in 0..r {
            b[t1] += w_plus * e.value * z[t1];
            for t2 in 0..r {
                *a.get_mut(t1, t2) += (w_plus - w_minus) * z[t1] * z[t2];
            }
        }
    }
    let (g1, g2, g3) = (u1.gram(), u2.gram(), u3.gram());
    for t1 in 0..r {
        for t2 in 0..r {
            *a.get_mut(t1, t2) += w_minus * g1.get(t1, t2) * g2.get(t1, t2) * g3.get(t1, t2);
        }
    }
    // Tiny ridge for numerical safety; fall back to all-ones on failure.
    for t in 0..r {
        *a.get_mut(t, t) += 1e-9;
    }
    tcss_linalg::solve_linear_system(&a, &b).unwrap_or_else(|_| vec![1.0; r])
}

/// Naive random initialization (the CP/Tucker default; Table II ablation).
/// Entries are uniform in `[-s, s]` with `s = 1/√r`, a common scale that
/// keeps initial predictions `O(1)`.
pub fn random_init(dims: (usize, usize, usize), r: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = 1.0 / (r as f64).sqrt();
    (
        Matrix::random_uniform(dims.0, r, s, &mut rng),
        Matrix::random_uniform(dims.1, r, s, &mut rng),
        Matrix::random_uniform(dims.2, r, s, &mut rng),
    )
}

/// One-hot-derived initialization (NCF-style; Table II ablation): index `x`
/// activates coordinate `x mod r` (the dense projection a learnable
/// embedding layer applies to a one-hot input collapses to an index lookup;
/// with random projection weights this is a sparse random init). Small
/// noise breaks the ties between rows sharing a coordinate.
pub fn onehot_init(dims: (usize, usize, usize), r: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut make = |n: usize| {
        Matrix::from_fn(n, r, |row, col| {
            let base = if row % r == col { 1.0 } else { 0.0 };
            base + rng.gen_range(-0.01..=0.01)
        })
    };
    let u1 = make(dims.0);
    let u2 = make(dims.1);
    let u3 = make(dims.2);
    (u1, u2, u3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_tensor() -> SparseTensor3 {
        // Two user groups × two POI groups with distinct time patterns:
        // group A visits in months {0..6}, group B in {6..12}.
        let mut entries = Vec::new();
        for i in 0..10usize {
            for j in 0..8usize {
                let group_match = (i < 5) == (j < 4);
                if !group_match {
                    continue;
                }
                for k in 0..12usize {
                    let in_season = if i < 5 { k < 6 } else { k >= 6 };
                    if in_season && (i + j + k) % 2 == 0 {
                        entries.push((i, j, k, 1.0));
                    }
                }
            }
        }
        SparseTensor3::from_entries((10, 8, 12), entries).unwrap()
    }

    #[test]
    fn solve_h_minimizes_rewritten_loss() {
        use crate::loss::rewritten_loss_and_grad;
        use crate::model::TcssModel;
        let t = seasonal_tensor();
        let (u1, u2, u3) = spectral_init(&t, 3, 1);
        let h = solve_h(&t, &u1, &u2, &u3, 0.9, 0.1);
        let mut model = TcssModel::new(u1, u2, u3);
        let (loss_ones, _) = rewritten_loss_and_grad(&model, t.entries(), 0.9, 0.1);
        model.h = h;
        let (loss_solved, grads) = rewritten_loss_and_grad(&model, t.entries(), 0.9, 0.1);
        assert!(
            loss_solved <= loss_ones + 1e-9,
            "solved h ({loss_solved}) must not lose to h = 1 ({loss_ones})"
        );
        // At the exact optimum the h-gradient vanishes.
        let gh_norm: f64 = grads.h.iter().map(|g| g * g).sum::<f64>().sqrt();
        assert!(gh_norm < 1e-6, "h gradient at optimum: {gh_norm}");
        // And perturbing h in any direction increases the loss.
        for t_idx in 0..3 {
            let mut perturbed = model.clone();
            perturbed.h[t_idx] += 0.05;
            let (lp, _) = rewritten_loss_and_grad(&perturbed, t.entries(), 0.9, 0.1);
            assert!(lp >= loss_solved - 1e-12, "perturbation decreased loss");
        }
    }

    #[test]
    fn spectral_shapes() {
        let t = seasonal_tensor();
        let (u1, u2, u3) = spectral_init(&t, 3, 1);
        assert_eq!(u1.shape(), (10, 3));
        assert_eq!(u2.shape(), (8, 3));
        assert_eq!(u3.shape(), (12, 3));
    }

    #[test]
    fn spectral_factors_are_orthonormal() {
        let t = seasonal_tensor();
        let (u1, u2, u3) = spectral_init(&t, 3, 1);
        for u in [&u1, &u2, &u3] {
            let g = u.gram();
            assert!(
                g.approx_eq(&Matrix::identity(3), 1e-6),
                "factor not orthonormal:\n{g}"
            );
        }
    }

    #[test]
    fn spectral_separates_user_groups() {
        // The dominant eigenvector of the user Gram matrix should separate
        // the two planted user groups (their co-visit patterns differ).
        let t = seasonal_tensor();
        let (u1, _, _) = spectral_init(&t, 2, 1);
        // Group-mean embeddings must be distinguishable.
        let mean = |range: std::ops::Range<usize>, col: usize| -> f64 {
            let n = range.len() as f64;
            range.map(|i| u1.get(i, col)).sum::<f64>() / n
        };
        let sep: f64 = (0..2).map(|c| (mean(0..5, c) - mean(5..10, c)).abs()).sum();
        assert!(sep > 0.1, "groups not separated: {sep}");
    }

    #[test]
    fn spectral_is_deterministic() {
        let t = seasonal_tensor();
        let (a1, _, _) = spectral_init(&t, 2, 9);
        let (b1, _, _) = spectral_init(&t, 2, 9);
        assert!(a1.approx_eq(&b1, 0.0));
    }

    #[test]
    fn random_init_scale() {
        let (u1, u2, u3) = random_init((5, 6, 7), 4, 3);
        let bound = 0.5; // 1/√4
        for u in [&u1, &u2, &u3] {
            assert!(u.max_abs() <= bound + 1e-12);
        }
        assert_eq!(u1.shape(), (5, 4));
        assert_eq!(u2.shape(), (6, 4));
        assert_eq!(u3.shape(), (7, 4));
    }

    #[test]
    fn onehot_init_activates_modular_coordinate() {
        let (u1, _, _) = onehot_init((6, 4, 4), 3, 5);
        for i in 0..6 {
            for c in 0..3 {
                let v = u1.get(i, c);
                if i % 3 == c {
                    assert!(v > 0.9, "row {i} col {c}: {v}");
                } else {
                    assert!(v.abs() < 0.05, "row {i} col {c}: {v}");
                }
            }
        }
    }
}
