//! Versioned training checkpoints with atomic persistence.
//!
//! A checkpoint captures everything [`crate::train::TcssTrainer::train_with_checkpoints`]
//! needs to continue a run **bit-for-bit identically** to one that was
//! never interrupted: the model factors, the full Adam state (`m`, `v`,
//! `t`), the watchdog's learning-rate scale and retry counter, the epoch
//! cursor, the RNG base seed (per-epoch streams are re-derived as
//! `seed + epoch`, so the seed plus the epoch cursor fully determines
//! every future random draw), and a fingerprint of the training-relevant
//! configuration.
//!
//! The on-disk format follows `model_io`'s self-describing text layout —
//! floats at 17 significant digits, which round-trips `f64` losslessly:
//!
//! ```text
//! tcss-checkpoint v1 I J K r
//! epoch: <next epoch to run>
//! adam-t: <step count>
//! lr-scale: <watchdog LR multiplier>
//! retries: <watchdog rollbacks so far>
//! seed: <RNG base seed>
//! config: <16-hex-digit fingerprint>
//! h: <r floats>            (then u1/u2/u3 rows as in model files)
//! m-h: …  m-u1 …           (Adam first moment, same shape as the model)
//! v-h: …  v-u1 …           (Adam second moment)
//! checksum: <16-hex-digit FNV-1a over every preceding byte>
//! ```
//!
//! Writes are atomic: the payload goes to a sibling `*.tmp`, is fsynced,
//! and is renamed over the target (the directory is fsynced too), so a
//! crash mid-write can never leave a half-written checkpoint under the
//! canonical name. Loads verify the checksum over the raw bytes *before*
//! parsing, so any truncation or bit flip is reported as corruption —
//! never loaded as a silently wrong state.

use crate::config::{HausdorffVariant, InitMethod, LossStrategy, TcssConfig};
use crate::digest::fnv1a64;
use crate::loss::Grads;
use crate::model::TcssModel;
use crate::model_io::ModelIoError;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use tcss_linalg::Matrix;

/// File name of the rolling checkpoint inside `TcssConfig::checkpoint_dir`.
pub const CHECKPOINT_FILE: &str = "checkpoint.tcssck";

/// A complete snapshot of an in-flight training run.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Next epoch to execute (all epochs `< epoch` are already applied).
    pub epoch: usize,
    /// Adam's bias-correction step counter `t`.
    pub adam_t: u64,
    /// Watchdog learning-rate multiplier (1.0 until a rollback happens).
    pub lr_scale: f64,
    /// Watchdog rollbacks consumed so far.
    pub retries: u32,
    /// RNG base seed; epoch `e`'s sampling stream is seeded `seed + e`.
    pub seed: u64,
    /// Fingerprint of the training-relevant config fields.
    pub fingerprint: u64,
    /// Model parameters.
    pub model: TcssModel,
    /// Adam first moment, model-shaped.
    pub m: Grads,
    /// Adam second moment, model-shaped.
    pub v: Grads,
}

// ---------------------------------------------------------------------
// Integrity primitives (shared with model_io; the digest itself is the
// canonical [`crate::digest::fnv1a64`])
// ---------------------------------------------------------------------

/// Append a `checksum: <hex>` trailer covering everything written so far.
pub(crate) fn append_checksum(out: &mut String) {
    let digest = fnv1a64(out.as_bytes());
    let _ = writeln!(out, "checksum: {digest:016x}");
}

/// Verify the `checksum:` trailer and return the payload it covers.
///
/// Corruption is reported as [`ModelIoError::Parse`] with byte-offset
/// context so an operator can see *where* the file went bad.
pub(crate) fn verify_checksum(text: &str) -> Result<&str, ModelIoError> {
    // Strict framing: a checksummed file always ends "checksum: <hex>\n".
    // Requiring the final newline means *every* proper-prefix truncation
    // is detectable, including one that only eats the last byte.
    let trimmed = text.strip_suffix('\n').ok_or_else(|| {
        ModelIoError::Parse(format!(
            "missing final newline at byte {} (file truncated?)",
            text.len()
        ))
    })?;
    let start = match trimmed.rfind('\n') {
        Some(pos) => pos + 1,
        None => 0,
    };
    let last_line = &trimmed[start..];
    let stored_hex = last_line.strip_prefix("checksum: ").ok_or_else(|| {
        ModelIoError::Parse(format!(
            "missing checksum trailer: expected a final 'checksum: <hex>' \
             line at byte {start}, found {last_line:?} (file truncated?)"
        ))
    })?;
    let stored = u64::from_str_radix(stored_hex.trim(), 16).map_err(|_| {
        ModelIoError::Parse(format!(
            "unreadable checksum {stored_hex:?} at byte {start}"
        ))
    })?;
    let payload = &text[..start];
    let computed = fnv1a64(payload.as_bytes());
    if computed != stored {
        return Err(ModelIoError::Parse(format!(
            "checksum mismatch over payload bytes 0..{start}: stored \
             {stored:016x}, computed {computed:016x} — the file is corrupt"
        )));
    }
    Ok(payload)
}

/// Write `contents` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. A crash at any
/// point leaves either the old file or the new file — never a mix.
pub(crate) fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            // Persist the rename itself. Directory fsync is a no-op on
            // some filesystems; opening it read-only is portable enough.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------

/// Hash the config fields that determine the *trajectory* of training.
///
/// Deliberately excluded: `epochs` (resuming may extend a run),
/// `num_threads` and `workers` (pure speed knobs under the deterministic-
/// reduction and process-count-parity contracts — single-process and
/// distributed runs resume each other's checkpoints), and the
/// checkpoint/watchdog policy fields (they decide when
/// snapshots happen and how failures are handled, not what the numbers
/// are). Everything else participates bit-exactly via `f64::to_bits`.
pub fn config_fingerprint(cfg: &TcssConfig) -> u64 {
    let mut s = String::new();
    let _ = write!(
        s,
        "rank={} w+={:016x} w-={:016x} lambda={:016x} alpha={:016x} \
         eps={:016x} lr={:016x} wd={:016x} init={} loss={} hd={} cand={:?} \
         sigma={:016x} seed={} every={}",
        cfg.rank,
        cfg.w_plus.to_bits(),
        cfg.w_minus.to_bits(),
        cfg.lambda.to_bits(),
        cfg.alpha.to_bits(),
        cfg.epsilon.to_bits(),
        cfg.learning_rate.to_bits(),
        cfg.weight_decay.to_bits(),
        match cfg.init {
            InitMethod::Spectral => "spectral",
            InitMethod::Random => "random",
            InitMethod::OneHot => "onehot",
        },
        match cfg.loss {
            LossStrategy::WholeDataRewritten => "rewritten",
            LossStrategy::WholeDataNaive => "naive",
            LossStrategy::NegativeSampling => "negsamp",
        },
        match cfg.hausdorff {
            HausdorffVariant::Social => "social",
            HausdorffVariant::SelfHausdorff => "self",
            HausdorffVariant::ZeroOut => "zeroout",
            HausdorffVariant::None => "none",
        },
        cfg.hausdorff_candidates,
        cfg.zero_out_sigma.to_bits(),
        cfg.seed,
        cfg.hausdorff_every,
    );
    fnv1a64(s.as_bytes())
}

// ---------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------

fn write_matrix(out: &mut String, tag: &str, m: &Matrix) {
    for i in 0..m.rows() {
        let _ = write!(out, "{tag} {i}:");
        for v in m.row(i) {
            // 17 significant digits: lossless f64 round-trip.
            let _ = write!(out, " {v:.17e}");
        }
        out.push('\n');
    }
}

fn write_vector(out: &mut String, tag: &str, v: &[f64]) {
    let _ = write!(out, "{tag}:");
    for x in v {
        let _ = write!(out, " {x:.17e}");
    }
    out.push('\n');
}

fn write_grads_shaped(out: &mut String, prefix: &str, g: &Grads) {
    write_vector(out, &format!("{prefix}-h"), &g.h);
    write_matrix(out, &format!("{prefix}-u1"), &g.u1);
    write_matrix(out, &format!("{prefix}-u2"), &g.u2);
    write_matrix(out, &format!("{prefix}-u3"), &g.u3);
}

/// Serialize and atomically persist a checkpoint.
pub fn save_checkpoint(ck: &Checkpoint, path: &Path) -> Result<(), ModelIoError> {
    let (i, j, k) = ck.model.dims();
    let r = ck.model.rank();
    let mut out = format!("tcss-checkpoint v1 {i} {j} {k} {r}\n");
    let _ = writeln!(out, "epoch: {}", ck.epoch);
    let _ = writeln!(out, "adam-t: {}", ck.adam_t);
    let _ = writeln!(out, "lr-scale: {:.17e}", ck.lr_scale);
    let _ = writeln!(out, "retries: {}", ck.retries);
    let _ = writeln!(out, "seed: {}", ck.seed);
    let _ = writeln!(out, "config: {:016x}", ck.fingerprint);
    write_vector(&mut out, "h", &ck.model.h);
    write_matrix(&mut out, "u1", &ck.model.u1);
    write_matrix(&mut out, "u2", &ck.model.u2);
    write_matrix(&mut out, "u3", &ck.model.u3);
    write_grads_shaped(&mut out, "m", &ck.m);
    write_grads_shaped(&mut out, "v", &ck.v);
    append_checksum(&mut out);
    atomic_write(path, &out)?;
    Ok(())
}

fn parse_floats(rest: &str, expect: usize, what: &str) -> Result<Vec<f64>, ModelIoError> {
    let vals: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|_| ModelIoError::Parse(format!("bad float in {what}")))?;
    if vals.len() != expect {
        return Err(ModelIoError::Parse(format!(
            "{what}: expected {expect} values, got {}",
            vals.len()
        )));
    }
    Ok(vals)
}

struct LineReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> LineReader<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str, ModelIoError> {
        self.lines
            .next()
            .ok_or_else(|| ModelIoError::Parse(format!("missing {what}")))
    }

    fn tagged(&mut self, tag: &str, expect: usize) -> Result<Vec<f64>, ModelIoError> {
        let line = self.next(tag)?;
        let prefix = format!("{tag}:");
        let rest = line
            .strip_prefix(&prefix)
            .ok_or_else(|| ModelIoError::Parse(format!("expected {prefix:?}, got {line:?}")))?;
        parse_floats(rest, expect, tag)
    }

    fn tagged_u64(&mut self, tag: &str) -> Result<u64, ModelIoError> {
        let line = self.next(tag)?;
        let prefix = format!("{tag}: ");
        let rest = line
            .strip_prefix(&prefix)
            .ok_or_else(|| ModelIoError::Parse(format!("expected {prefix:?}, got {line:?}")))?;
        rest.trim()
            .parse()
            .map_err(|_| ModelIoError::Parse(format!("bad integer in {tag}: {rest:?}")))
    }

    fn matrix(&mut self, tag: &str, rows: usize, cols: usize) -> Result<Matrix, ModelIoError> {
        let mut m = Matrix::zeros(rows, cols);
        for row in 0..rows {
            let line = self.next(&format!("{tag} row {row}"))?;
            let prefix = format!("{tag} {row}:");
            let rest = line
                .strip_prefix(&prefix)
                .ok_or_else(|| ModelIoError::Parse(format!("expected {prefix:?}, got {line:?}")))?;
            let vals = parse_floats(rest, cols, tag)?;
            m.row_mut(row).copy_from_slice(&vals);
        }
        Ok(m)
    }

    fn grads_shaped(
        &mut self,
        prefix: &str,
        dims: (usize, usize, usize),
        r: usize,
    ) -> Result<Grads, ModelIoError> {
        let h = self.tagged(&format!("{prefix}-h"), r)?;
        let u1 = self.matrix(&format!("{prefix}-u1"), dims.0, r)?;
        let u2 = self.matrix(&format!("{prefix}-u2"), dims.1, r)?;
        let u3 = self.matrix(&format!("{prefix}-u3"), dims.2, r)?;
        Ok(Grads { u1, u2, u3, h })
    }
}

/// Load and checksum-verify a checkpoint written by [`save_checkpoint`].
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, ModelIoError> {
    let text = std::fs::read_to_string(path)?;
    let payload = verify_checksum(&text)?;
    let mut rd = LineReader {
        lines: payload.lines(),
    };
    let header = rd.next("header")?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "tcss-checkpoint" || fields[1] != "v1" {
        return Err(ModelIoError::Parse(format!("bad header {header:?}")));
    }
    let dims: Vec<usize> = fields[2..]
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ModelIoError::Parse("bad dimensions in header".into()))?;
    let (i, j, k, r) = (dims[0], dims[1], dims[2], dims[3]);
    if r == 0 || r > i.min(j).min(k) {
        return Err(ModelIoError::Parse(format!(
            "rank {r} inconsistent with dims {i}×{j}×{k}"
        )));
    }

    let epoch = rd.tagged_u64("epoch")? as usize;
    let adam_t = rd.tagged_u64("adam-t")?;
    let lr_scale = rd.tagged("lr-scale", 1)?[0];
    let retries = rd.tagged_u64("retries")? as u32;
    let seed = rd.tagged_u64("seed")?;
    let fp_line = rd.next("config fingerprint")?;
    let fp_hex = fp_line
        .strip_prefix("config: ")
        .ok_or_else(|| ModelIoError::Parse(format!("expected 'config: ', got {fp_line:?}")))?;
    let fingerprint = u64::from_str_radix(fp_hex.trim(), 16)
        .map_err(|_| ModelIoError::Parse(format!("bad config fingerprint {fp_hex:?}")))?;

    let h = rd.tagged("h", r)?;
    let u1 = rd.matrix("u1", i, r)?;
    let u2 = rd.matrix("u2", j, r)?;
    let u3 = rd.matrix("u3", k, r)?;
    let m = rd.grads_shaped("m", (i, j, k), r)?;
    let v = rd.grads_shaped("v", (i, j, k), r)?;
    if let Some(extra) = rd.lines.find(|l| !l.trim().is_empty()) {
        return Err(ModelIoError::Parse(format!(
            "unexpected trailing content: {extra:?}"
        )));
    }
    if !lr_scale.is_finite() || lr_scale <= 0.0 || lr_scale > 1.0 {
        return Err(ModelIoError::Parse(format!(
            "lr-scale {lr_scale} outside (0, 1]"
        )));
    }

    let mut model = TcssModel::try_new(u1, u2, u3).map_err(ModelIoError::Parse)?;
    model.h = h;
    Ok(Checkpoint {
        epoch,
        adam_t,
        lr_scale,
        retries,
        seed,
        fingerprint,
        model,
        m,
        v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcss_checkpoint_io");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample_checkpoint() -> Checkpoint {
        let (u1, u2, u3) = random_init((5, 7, 4), 3, 42);
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![1.5, -0.25, 1e-17];
        let mut m = Grads::zeros(&model);
        let mut v = Grads::zeros(&model);
        // Populate with values spanning magnitudes (Adam's v is tiny).
        for (idx, x) in m.u1.as_mut_slice().iter_mut().enumerate() {
            *x = (idx as f64 - 3.0) * 1e-3;
        }
        for (idx, x) in v.u2.as_mut_slice().iter_mut().enumerate() {
            *x = (idx as f64) * 1e-12;
        }
        m.h[0] = -7.25e-5;
        v.h[2] = 3.0e-18;
        Checkpoint {
            epoch: 17,
            adam_t: 17,
            lr_scale: 0.25,
            retries: 2,
            seed: 99,
            fingerprint: config_fingerprint(&TcssConfig::default()),
            model,
            m,
            v,
        }
    }

    fn bits(ck: &Checkpoint) -> Vec<u64> {
        ck.model
            .u1
            .as_slice()
            .iter()
            .chain(ck.model.u2.as_slice())
            .chain(ck.model.u3.as_slice())
            .chain(&ck.model.h)
            .chain(ck.m.u1.as_slice())
            .chain(ck.m.u2.as_slice())
            .chain(ck.m.u3.as_slice())
            .chain(&ck.m.h)
            .chain(ck.v.u1.as_slice())
            .chain(ck.v.u2.as_slice())
            .chain(ck.v.u3.as_slice())
            .chain(&ck.v.h)
            .map(|x| x.to_bits())
            .collect()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample_checkpoint();
        let path = tmp("roundtrip.tcssck");
        save_checkpoint(&ck, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.epoch, ck.epoch);
        assert_eq!(loaded.adam_t, ck.adam_t);
        assert_eq!(loaded.lr_scale.to_bits(), ck.lr_scale.to_bits());
        assert_eq!(loaded.retries, ck.retries);
        assert_eq!(loaded.seed, ck.seed);
        assert_eq!(loaded.fingerprint, ck.fingerprint);
        assert_eq!(bits(&loaded), bits(&ck));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let ck = sample_checkpoint();
        let path = tmp("atomic.tcssck");
        save_checkpoint(&ck, &path).unwrap();
        save_checkpoint(&ck, &path).unwrap(); // overwrite is fine
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        assert!(
            !std::path::PathBuf::from(os).exists(),
            "temp file must be renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let ck = sample_checkpoint();
        let path = tmp("truncated.tcssck");
        save_checkpoint(&ck, &path).unwrap();
        let text = std::fs::read(&path).unwrap();
        for keep in [0, 1, text.len() / 3, text.len() - 1] {
            std::fs::write(&path, &text[..keep]).unwrap();
            assert!(
                load_checkpoint(&path).is_err(),
                "truncation to {keep} bytes must be detected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_detected() {
        let ck = sample_checkpoint();
        let path = tmp("flipped.tcssck");
        save_checkpoint(&ck, &path).unwrap();
        let text = std::fs::read(&path).unwrap();
        for offset in [0, 10, text.len() / 2, text.len() - 2] {
            let mut bad = text.clone();
            bad[offset] ^= 0x04;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                load_checkpoint(&path).is_err(),
                "bit flip at byte {offset} must be detected"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_error_reports_byte_offset() {
        let ck = sample_checkpoint();
        let path = tmp("offsets.tcssck");
        save_checkpoint(&ck, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint(&path).unwrap_err().to_string();
        assert!(err.contains("byte"), "error should give offsets: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_ignores_runtime_knobs_only() {
        let base = TcssConfig::default();
        let fp = config_fingerprint(&base);
        // Runtime policy knobs do not change the fingerprint…
        let mut same = base.clone();
        same.epochs = 999;
        same.num_threads = Some(4);
        same.workers = Some(4);
        same.checkpoint_every = 1;
        same.max_retries = 9;
        assert_eq!(config_fingerprint(&same), fp);
        // …but every trajectory-relevant field does.
        let variants = [
            TcssConfig {
                rank: 9,
                ..base.clone()
            },
            TcssConfig {
                learning_rate: 0.01,
                ..base.clone()
            },
            TcssConfig {
                seed: 8,
                ..base.clone()
            },
            TcssConfig {
                lambda: 1.0,
                ..base.clone()
            },
            TcssConfig {
                hausdorff_every: 1,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(config_fingerprint(&v), fp, "{v:?}");
        }
    }
}
