//! Canonical FNV-1a digest used by every integrity check in the workspace.
//!
//! One implementation, three consumers: checkpoint files
//! ([`crate::checkpoint`]), compact serving snapshots
//! (`tcss_serve::snapshot`), and the per-frame checksums of the
//! distributed-training transport ([`crate::dist::wire`]). Not
//! cryptographic — it guards against truncation and accidental corruption,
//! which is exactly the failure model of a killed process, a bad disk or a
//! torn socket write, and any single-byte change provably alters the
//! digest (each round `h ← (h ⊕ b)·p` is a bijection of `h` for fixed
//! `b`).
//!
//! (`tcss_serve`'s `snapshot_format.rs` test suite keeps a deliberately
//! independent restatement of the function, so a regression here cannot
//! silently re-verify itself.)

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// 64-bit FNV-1a over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_continue(FNV_OFFSET, bytes)
}

/// Continue an FNV-1a digest from a prior state (streaming form: hashing
/// `a` then continuing over `b` equals hashing `a ++ b` in one call).
pub fn fnv1a64_continue(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..=data.len() {
            let partial = fnv1a64(&data[..split]);
            assert_eq!(
                fnv1a64_continue(partial, &data[split..]),
                fnv1a64(data),
                "split at {split}"
            );
        }
    }

    #[test]
    fn single_byte_change_alters_digest() {
        let base = fnv1a64(b"checkpoint payload");
        assert_ne!(fnv1a64(b"checkpoint paylyad"), base);
        assert_ne!(fnv1a64(b"checkpoint payloa"), base);
    }
}
