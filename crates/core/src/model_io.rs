//! Save / load trained TCSS models.
//!
//! A simple self-describing text format (one header line, then one line per
//! factor row) keeps trained models inspectable with standard tools and
//! independent of serialization-library versions:
//!
//! ```text
//! tcss-model v2 I J K r
//! h: <r floats>
//! u1 <row>: <r floats>      (I rows)
//! u2 <row>: <r floats>      (J rows)
//! u3 <row>: <r floats>      (K rows)
//! checksum: <16 hex digits> (FNV-1a over every preceding byte)
//! ```
//!
//! `v2` adds two robustness guarantees. Writes are **atomic** (temp file +
//! fsync + rename, via [`crate::checkpoint::atomic_write`]), so a crash
//! mid-save can never leave a half-written model under the target name.
//! Loads verify the **checksum before parsing**, so truncation and bit
//! flips are reported as [`ModelIoError::Parse`] corruption with byte
//! offsets — never loaded as a silently wrong model. Legacy `v1` files
//! (no checksum) still load, but any trailing garbage is rejected.

use crate::checkpoint::{append_checksum, atomic_write, verify_checksum};
use crate::model::TcssModel;
use std::fmt::Write as _;
use std::path::Path;
use tcss_linalg::Matrix;

/// Errors from model persistence.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Structurally invalid file.
    Parse(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Fs(e) => write!(f, "io error: {e}"),
            ModelIoError::Parse(msg) => write!(f, "model file malformed: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Fs(e)
    }
}

fn write_matrix(out: &mut String, tag: &str, m: &Matrix) {
    for i in 0..m.rows() {
        let _ = write!(out, "{tag} {i}:");
        for v in m.row(i) {
            // 17 significant digits: lossless f64 round-trip.
            let _ = write!(out, " {v:.17e}");
        }
        out.push('\n');
    }
}

/// Save a trained model to `path`, atomically and with an integrity
/// checksum (format `v2`).
pub fn save_model(model: &TcssModel, path: &Path) -> Result<(), ModelIoError> {
    let (i, j, k) = model.dims();
    let r = model.rank();
    let mut out = format!("tcss-model v2 {i} {j} {k} {r}\n");
    out.push_str("h:");
    for v in &model.h {
        let _ = write!(out, " {v:.17e}");
    }
    out.push('\n');
    write_matrix(&mut out, "u1", &model.u1);
    write_matrix(&mut out, "u2", &model.u2);
    write_matrix(&mut out, "u3", &model.u3);
    append_checksum(&mut out);
    atomic_write(path, &out)?;
    Ok(())
}

fn parse_floats(rest: &str, expect: usize, what: &str) -> Result<Vec<f64>, ModelIoError> {
    let vals: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|_| ModelIoError::Parse(format!("bad float in {what}")))?;
    if vals.len() != expect {
        return Err(ModelIoError::Parse(format!(
            "{what}: expected {expect} values, got {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Load a model previously written by [`save_model`].
///
/// `v2` files are checksum-verified before parsing; `v1` files (written
/// before the integrity trailer existed) are parsed leniently but must
/// contain nothing beyond the three factor blocks.
pub fn load_model(path: &Path) -> Result<TcssModel, ModelIoError> {
    let text = std::fs::read_to_string(path)?;
    let header = text
        .lines()
        .next()
        .ok_or_else(|| ModelIoError::Parse("empty file".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "tcss-model" {
        return Err(ModelIoError::Parse(format!("bad header {header:?}")));
    }
    let payload: &str = match fields[1] {
        "v2" => verify_checksum(&text)?,
        "v1" => &text,
        v => {
            return Err(ModelIoError::Parse(format!(
                "unsupported model format version {v:?}"
            )))
        }
    };
    let mut lines = payload.lines();
    lines.next(); // header, already parsed
    let dims: Vec<usize> = fields[2..]
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ModelIoError::Parse("bad dimensions in header".into()))?;
    let (i_dim, j_dim, k_dim, r) = (dims[0], dims[1], dims[2], dims[3]);

    let h_line = lines
        .next()
        .ok_or_else(|| ModelIoError::Parse("missing h line".into()))?;
    let h = parse_floats(
        h_line
            .strip_prefix("h:")
            .ok_or_else(|| ModelIoError::Parse("expected 'h:' line".into()))?,
        r,
        "h",
    )?;

    let mut read_matrix = |tag: &str, rows: usize| -> Result<Matrix, ModelIoError> {
        let mut m = Matrix::zeros(rows, r);
        for row in 0..rows {
            let line = lines
                .next()
                .ok_or_else(|| ModelIoError::Parse(format!("missing {tag} row {row}")))?;
            let prefix = format!("{tag} {row}:");
            let rest = line
                .strip_prefix(&prefix)
                .ok_or_else(|| ModelIoError::Parse(format!("expected {prefix:?}")))?;
            let vals = parse_floats(rest, r, tag)?;
            m.row_mut(row).copy_from_slice(&vals);
        }
        Ok(m)
    };
    let u1 = read_matrix("u1", i_dim)?;
    let u2 = read_matrix("u2", j_dim)?;
    let u3 = read_matrix("u3", k_dim)?;
    if let Some(extra) = lines.find(|l| !l.trim().is_empty()) {
        // Strictness matters for corruption detection: a v2 file whose
        // header byte got flipped to v1 would otherwise skip checksum
        // verification, but its trailing checksum line lands here.
        return Err(ModelIoError::Parse(format!(
            "unexpected trailing content: {extra:?}"
        )));
    }
    let mut model = TcssModel::try_new(u1, u2, u3).map_err(ModelIoError::Parse)?;
    model.h = h;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcss_model_io");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (u1, u2, u3) = random_init((5, 7, 3), 3, 42);
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![1.5, -0.25, 1e-17];
        let path = tmp("roundtrip.tcss");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.dims(), model.dims());
        assert_eq!(loaded.h, model.h);
        assert!(loaded.u1.approx_eq(&model.u1, 0.0));
        assert!(loaded.u2.approx_eq(&model.u2, 0.0));
        assert!(loaded.u3.approx_eq(&model.u3, 0.0));
        // Predictions identical.
        assert_eq!(loaded.predict(4, 6, 2), model.predict(4, 6, 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (u1, u2, u3) = random_init((3, 3, 3), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("truncated.tcss");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, cut).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_rejected() {
        let path = tmp("badheader.tcss");
        std::fs::write(&path, "not-a-model v9 1 1 1 1\n").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_float_is_rejected() {
        let (u1, u2, u3) = random_init((2, 2, 2), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("corrupt.tcss");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace("e0", "eX");
        std::fs::write(&path, text).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_mismatch_reports_byte_offset() {
        let (u1, u2, u3) = random_init((2, 2, 2), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("checksum_offset.tcss");
        save_model(&model, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte well inside a float.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_model(&path).unwrap_err().to_string();
        assert!(
            err.contains("byte") && err.contains("checksum"),
            "wanted byte-offset checksum context, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_file_without_checksum_still_loads() {
        let (u1, u2, u3) = random_init((3, 4, 2), 2, 5);
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![0.5, 2.0];
        let path = tmp("legacy_v1.tcss");
        save_model(&model, &path).unwrap();
        // Strip the checksum trailer and downgrade the header — exactly
        // what a pre-v2 writer produced.
        let text = std::fs::read_to_string(&path).unwrap();
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("checksum:"))
            .map(|l| format!("{}\n", l.replace("tcss-model v2", "tcss-model v1")))
            .collect();
        std::fs::write(&path, legacy).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.h, model.h);
        assert!(loaded.u1.approx_eq(&model.u1, 0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_with_trailing_garbage_is_rejected() {
        let (u1, u2, u3) = random_init((2, 2, 2), 2, 3);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("v1_trailing.tcss");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("tcss-model v2", "tcss-model v1");
        // The v2 checksum line is still there — a v1 parser must reject it
        // rather than silently ignore unknown trailing content.
        std::fs::write(&path, text).unwrap();
        let err = load_model(&path).unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file() {
        let (u1, u2, u3) = random_init((2, 2, 2), 2, 9);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("atomic_model.tcss");
        save_model(&model, &path).unwrap();
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        assert!(!std::path::PathBuf::from(os).exists());
        std::fs::remove_file(&path).ok();
    }
}
