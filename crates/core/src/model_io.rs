//! Save / load trained TCSS models.
//!
//! A simple self-describing text format (one header line, then one line per
//! factor row) keeps trained models inspectable with standard tools and
//! independent of serialization-library versions:
//!
//! ```text
//! tcss-model v1 I J K r
//! h: <r floats>
//! u1 <row>: <r floats>      (I rows)
//! u2 <row>: <r floats>      (J rows)
//! u3 <row>: <r floats>      (K rows)
//! ```

use crate::model::TcssModel;
use std::fmt::Write as _;
use std::path::Path;
use tcss_linalg::Matrix;

/// Errors from model persistence.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// Structurally invalid file.
    Parse(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Fs(e) => write!(f, "io error: {e}"),
            ModelIoError::Parse(msg) => write!(f, "model file malformed: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Fs(e)
    }
}

fn write_matrix(out: &mut String, tag: &str, m: &Matrix) {
    for i in 0..m.rows() {
        write!(out, "{tag} {i}:").expect("writing to String cannot fail");
        for v in m.row(i) {
            // 17 significant digits: lossless f64 round-trip.
            write!(out, " {v:.17e}").expect("writing to String cannot fail");
        }
        out.push('\n');
    }
}

/// Save a trained model to `path`.
pub fn save_model(model: &TcssModel, path: &Path) -> Result<(), ModelIoError> {
    let (i, j, k) = model.dims();
    let r = model.rank();
    let mut out = format!("tcss-model v1 {i} {j} {k} {r}\n");
    out.push_str("h:");
    for v in &model.h {
        write!(out, " {v:.17e}").expect("writing to String cannot fail");
    }
    out.push('\n');
    write_matrix(&mut out, "u1", &model.u1);
    write_matrix(&mut out, "u2", &model.u2);
    write_matrix(&mut out, "u3", &model.u3);
    std::fs::write(path, out)?;
    Ok(())
}

fn parse_floats(rest: &str, expect: usize, what: &str) -> Result<Vec<f64>, ModelIoError> {
    let vals: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|_| ModelIoError::Parse(format!("bad float in {what}")))?;
    if vals.len() != expect {
        return Err(ModelIoError::Parse(format!(
            "{what}: expected {expect} values, got {}",
            vals.len()
        )));
    }
    Ok(vals)
}

/// Load a model previously written by [`save_model`].
pub fn load_model(path: &Path) -> Result<TcssModel, ModelIoError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| ModelIoError::Parse("empty file".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "tcss-model" || fields[1] != "v1" {
        return Err(ModelIoError::Parse(format!("bad header {header:?}")));
    }
    let dims: Vec<usize> = fields[2..]
        .iter()
        .map(|s| s.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ModelIoError::Parse("bad dimensions in header".into()))?;
    let (i_dim, j_dim, k_dim, r) = (dims[0], dims[1], dims[2], dims[3]);

    let h_line = lines
        .next()
        .ok_or_else(|| ModelIoError::Parse("missing h line".into()))?;
    let h = parse_floats(
        h_line
            .strip_prefix("h:")
            .ok_or_else(|| ModelIoError::Parse("expected 'h:' line".into()))?,
        r,
        "h",
    )?;

    let mut read_matrix = |tag: &str, rows: usize| -> Result<Matrix, ModelIoError> {
        let mut m = Matrix::zeros(rows, r);
        for row in 0..rows {
            let line = lines
                .next()
                .ok_or_else(|| ModelIoError::Parse(format!("missing {tag} row {row}")))?;
            let prefix = format!("{tag} {row}:");
            let rest = line
                .strip_prefix(&prefix)
                .ok_or_else(|| ModelIoError::Parse(format!("expected {prefix:?}")))?;
            let vals = parse_floats(rest, r, tag)?;
            m.row_mut(row).copy_from_slice(&vals);
        }
        Ok(m)
    };
    let u1 = read_matrix("u1", i_dim)?;
    let u2 = read_matrix("u2", j_dim)?;
    let u3 = read_matrix("u3", k_dim)?;
    let mut model = TcssModel::new(u1, u2, u3);
    model.h = h;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tcss_model_io");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (u1, u2, u3) = random_init((5, 7, 3), 3, 42);
        let mut model = TcssModel::new(u1, u2, u3);
        model.h = vec![1.5, -0.25, 1e-17];
        let path = tmp("roundtrip.tcss");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.dims(), model.dims());
        assert_eq!(loaded.h, model.h);
        assert!(loaded.u1.approx_eq(&model.u1, 0.0));
        assert!(loaded.u2.approx_eq(&model.u2, 0.0));
        assert!(loaded.u3.approx_eq(&model.u3, 0.0));
        // Predictions identical.
        assert_eq!(loaded.predict(4, 6, 2), model.predict(4, 6, 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (u1, u2, u3) = random_init((3, 3, 3), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("truncated.tcss");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        std::fs::write(&path, cut).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_header_is_rejected() {
        let path = tmp("badheader.tcss");
        std::fs::write(&path, "not-a-model v9 1 1 1 1\n").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_float_is_rejected() {
        let (u1, u2, u3) = random_init((2, 2, 2), 2, 1);
        let model = TcssModel::new(u1, u2, u3);
        let path = tmp("corrupt.tcss");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace("e0", "eX");
        std::fs::write(&path, text).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
