//! The TCSS factorization model (paper Eq 6).
//!
//! `X̂_{ijk} = hᵀ (U¹ᵢ ⊙ U²ⱼ ⊙ U³ₖ) = Σ_t h_t U¹_{it} U²_{jt} U³_{kt}`
//!
//! With `h = 1` this is exactly rank-`r` CP (the paper's Remark in §IV-B);
//! the learnable `h` weights each latent factor.

use tcss_linalg::{kernels, Matrix};

/// Model parameters: three embedding matrices and the factor-importance
/// vector `h`.
#[derive(Debug, Clone)]
pub struct TcssModel {
    /// User embeddings, `I × r`.
    pub u1: Matrix,
    /// POI embeddings, `J × r`.
    pub u2: Matrix,
    /// Time-unit embeddings, `K × r`.
    pub u3: Matrix,
    /// Factor importance weights, length `r`.
    pub h: Vec<f64>,
}

impl TcssModel {
    /// Assemble a model from pre-initialized factors; `h` starts at all
    /// ones, making the initial model exactly the CP estimate of the
    /// spectral factors.
    ///
    /// Panics on mismatched factor ranks; use [`TcssModel::try_new`] where
    /// the factors come from an untrusted source (files, checkpoints).
    pub fn new(u1: Matrix, u2: Matrix, u3: Matrix) -> Self {
        Self::try_new(u1, u2, u3).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`TcssModel::new`]: dimension validation as a `Result`
    /// instead of a panic.
    pub fn try_new(u1: Matrix, u2: Matrix, u3: Matrix) -> Result<Self, String> {
        if u1.cols() != u2.cols() || u2.cols() != u3.cols() {
            return Err(format!(
                "factor ranks must agree: u1 has {}, u2 has {}, u3 has {}",
                u1.cols(),
                u2.cols(),
                u3.cols()
            ));
        }
        let r = u1.cols();
        Ok(TcssModel {
            u1,
            u2,
            u3,
            h: vec![1.0; r],
        })
    }

    /// `(I, J, K)` dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.u1.rows(), self.u2.rows(), self.u3.rows())
    }

    /// Embedding length `r`.
    pub fn rank(&self) -> usize {
        self.h.len()
    }

    /// Predicted score `X̂_{ijk}` (Eq 6).
    ///
    /// Evaluated by the fused lane kernel [`kernels::dot4`]; its canonical
    /// lane-summation order is the model's scoring order, shared by every
    /// path that scores entries (production chunk loops *and* the dense
    /// parity references), so dense↔sparse and cross-thread bitwise parity
    /// are unaffected.
    #[inline]
    pub fn predict(&self, i: usize, j: usize, k: usize) -> f64 {
        kernels::dot4(&self.h, self.u1.row(i), self.u2.row(j), self.u3.row(k))
    }

    /// The per-request weight vector `w = h ⊙ U¹ᵢ ⊙ U³ₖ` (length `r`),
    /// written into `out` (cleared first, so pooled buffers can be passed
    /// straight in).
    ///
    /// Scoring any POI `j` is then `kernels::dot(&w, u2.row(j))` — this is
    /// the factorization [`TcssModel::scores_for`] exploits per request and
    /// the serving layer caches per `(user, time)` key: the `r` multiplies
    /// here are shared by all `J` POI dots, and by every batch row that
    /// reuses the cached `w`.
    #[inline]
    pub fn weight_vector_into(&self, user: usize, time: usize, out: &mut Vec<f64>) {
        let r = self.h.len();
        let ui = self.u1.row(user);
        let uk = self.u3.row(time);
        out.clear();
        out.extend((0..r).map(|t| self.h[t] * ui[t] * uk[t]));
    }

    /// Scores for every POI at `(user, time)`: the ranking vector used by
    /// the evaluation protocol and the recommendation API.
    pub fn scores_for(&self, user: usize, time: usize) -> Vec<f64> {
        // Precompute h ⊙ U¹ᵢ ⊙ U³ₖ once, then one dot per POI.
        let mut w = Vec::new();
        self.weight_vector_into(user, time, &mut w);
        (0..self.u2.rows())
            .map(|j| kernels::dot(&w, self.u2.row(j)))
            .collect()
    }

    /// The full `J × K` predicted slice for one user (used by the social
    /// Hausdorff head to form `p_{ij}` over all time units).
    pub fn user_slice(&self, user: usize) -> Matrix {
        let (_, j_dim, k_dim) = self.dims();
        let mut scratch = SliceScratch::default();
        let mut out = Vec::new();
        self.user_slice_into(user, &mut scratch, &mut out);
        let mut m = Matrix::zeros(j_dim, k_dim);
        m.as_mut_slice().copy_from_slice(&out);
        m
    }

    /// Allocation-free form of [`TcssModel::user_slice`]: writes the raw
    /// `J × K` scores row-major into `out`, using pooled [`SliceScratch`]
    /// buffers. All buffers are cleared and refilled, so pooled scratch can
    /// be passed straight in.
    ///
    /// This is the `J·K·r`-flop hot loop of the Hausdorff head, evaluated
    /// as `r` rank-one updates per output row: `U³` is transposed once per
    /// call (`K·r` writes amortized over `J·K·r` flops) so the inner `k`
    /// scan is contiguous, then each row accumulates `w_t · U³ᵗ` for
    /// ascending `t` through the lane kernels ([`kernels::update_row_quad`]
    /// in quads of four factors, [`kernels::axpy`] for the `r mod 4` tail).
    /// Every output element sums its `r` products in the same ascending-`t`
    /// order, with the same `(h·u¹)·u²·u³` association, as the scalar
    /// triple loop this replaced — the result is **bit-for-bit** identical
    /// to `user_slice` and to the pre-kernel implementation.
    pub fn user_slice_into(&self, user: usize, scratch: &mut SliceScratch, out: &mut Vec<f64>) {
        let (_, j_dim, k_dim) = self.dims();
        let r = self.h.len();
        let ui = self.u1.row(user);
        scratch.hw.clear();
        scratch.hw.extend((0..r).map(|t| self.h[t] * ui[t]));
        scratch.u3t.clear();
        scratch.u3t.resize(r * k_dim, 0.0);
        for k in 0..k_dim {
            let uk = self.u3.row(k);
            for (t, &v) in uk.iter().enumerate() {
                scratch.u3t[t * k_dim + k] = v;
            }
        }
        scratch.wj.clear();
        scratch.wj.resize(r, 0.0);
        out.clear();
        out.resize(j_dim * k_dim, 0.0);
        let quads = r - r % 4;
        for j in 0..j_dim {
            let uj = self.u2.row(j);
            for (w, (&hwt, &ujt)) in scratch.wj.iter_mut().zip(scratch.hw.iter().zip(uj.iter())) {
                *w = hwt * ujt;
            }
            let out_row = &mut out[j * k_dim..(j + 1) * k_dim];
            let mut t = 0;
            while t < quads {
                kernels::update_row_quad(
                    out_row,
                    [
                        scratch.wj[t],
                        scratch.wj[t + 1],
                        scratch.wj[t + 2],
                        scratch.wj[t + 3],
                    ],
                    &scratch.u3t[t * k_dim..(t + 1) * k_dim],
                    &scratch.u3t[(t + 1) * k_dim..(t + 2) * k_dim],
                    &scratch.u3t[(t + 2) * k_dim..(t + 3) * k_dim],
                    &scratch.u3t[(t + 3) * k_dim..(t + 4) * k_dim],
                );
                t += 4;
            }
            while t < r {
                kernels::axpy(
                    scratch.wj[t],
                    &scratch.u3t[t * k_dim..(t + 1) * k_dim],
                    out_row,
                );
                t += 1;
            }
        }
    }

    /// Per-POI visit probability `p_{ij} = 1 − Π_k (1 − clamp(X̂_{ijk}))`
    /// for one user (paper Eq 10's probability coupling). Scores are
    /// clamped into `[0, 1−δ]` so the product stays a valid probability —
    /// the model's raw output is unconstrained, but the paper semantically
    /// treats `X̂` as `P(X = 1)`.
    pub fn visit_probabilities(&self, user: usize) -> Vec<f64> {
        // Raw slice scores via the allocation-free path: one flat buffer,
        // no intermediate `Matrix` copy.
        let (_, j_dim, k_dim) = self.dims();
        let mut scratch = SliceScratch::default();
        let mut slice = Vec::new();
        self.user_slice_into(user, &mut scratch, &mut slice);
        (0..j_dim)
            .map(|j| {
                let mut not_visit = 1.0;
                for &s in &slice[j * k_dim..(j + 1) * k_dim] {
                    not_visit *= 1.0 - clamp_prob(s);
                }
                1.0 - not_visit
            })
            .collect()
    }

    /// Top-`n` POI recommendations for `(user, time)` as `(poi, score)`
    /// pairs in ranking order — descending score, ties broken by ascending
    /// POI index ([`crate::topn::rank_order`]).
    ///
    /// Selection is `O(J)` partial ([`crate::topn::top_n`]) rather than a
    /// full sort; [`TcssModel::recommend_full_sort`] keeps the full-sort
    /// reference reachable for the parity tests.
    pub fn recommend(&self, user: usize, time: usize, n: usize) -> Vec<(usize, f64)> {
        crate::topn::top_n(&self.scores_for(user, time), n)
    }

    /// Reference implementation of [`TcssModel::recommend`] by full stable
    /// sort (the historical behavior: a stable descending sort leaves ties
    /// in ascending POI order, exactly the [`crate::topn::rank_order`]
    /// contract). Kept for parity testing; prefer `recommend`.
    pub fn recommend_full_sort(&self, user: usize, time: usize, n: usize) -> Vec<(usize, f64)> {
        crate::topn::top_n_full_sort(&self.scores_for(user, time), n)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        let (i, j, k) = self.dims();
        (i + j + k + 1) * self.rank()
    }
}

/// Reusable scratch buffers for [`TcssModel::user_slice_into`].
///
/// Lives in pooled per-worker scratch (the Hausdorff head's `UserScratch`)
/// so the slice evaluation allocates nothing in steady state. Contents are
/// an implementation detail of the slice kernel: `hw` holds `h ⊙ U¹ᵢ`,
/// `wj` the per-row factor weights `h ⊙ U¹ᵢ ⊙ U²ⱼ`, and `u3t` the `r × K`
/// transpose of `U³` that makes the inner time scan contiguous.
#[derive(Debug, Default, Clone)]
pub struct SliceScratch {
    hw: Vec<f64>,
    wj: Vec<f64>,
    u3t: Vec<f64>,
}

impl SliceScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clamp a raw score into `[0, 1−δ]` for probability semantics.
#[inline]
pub fn clamp_prob(x: f64) -> f64 {
    x.clamp(0.0, 1.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TcssModel {
        // I=2, J=3, K=2, r=2.
        let u1 = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]).unwrap();
        let u2 = Matrix::from_rows(&[&[1.0, 1.0], &[0.5, 0.0], &[0.0, 2.0]]).unwrap();
        let u3 = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]).unwrap();
        TcssModel::new(u1, u2, u3)
    }

    #[test]
    fn predict_matches_hand_computation() {
        let m = tiny_model();
        // X̂_{0,0,0} = 1·1·1·1 + 1·0.5·1·0 = 1.
        assert!((m.predict(0, 0, 0) - 1.0).abs() < 1e-12);
        // X̂_{0,2,1} = 1·1·0·0.5 + 1·0.5·2·0.5 = 0.5.
        assert!((m.predict(0, 2, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn h_all_ones_is_cp() {
        let m = tiny_model();
        // With h = 1 the model equals the plain CP triple product.
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..2 {
                    let cp: f64 = (0..2)
                        .map(|t| m.u1.get(i, t) * m.u2.get(j, t) * m.u3.get(k, t))
                        .sum();
                    assert!((m.predict(i, j, k) - cp).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn h_scales_factors() {
        let mut m = tiny_model();
        let base = m.predict(0, 0, 0);
        m.h = vec![2.0, 2.0];
        assert!((m.predict(0, 0, 0) - 2.0 * base).abs() < 1e-12);
    }

    #[test]
    fn scores_for_matches_pointwise_predict() {
        let m = tiny_model();
        let scores = m.scores_for(0, 1);
        for (j, &s) in scores.iter().enumerate() {
            assert!((s - m.predict(0, j, 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn user_slice_matches_predict() {
        let m = tiny_model();
        let slice = m.user_slice(1);
        for j in 0..3 {
            for k in 0..2 {
                assert!((slice.get(j, k) - m.predict(1, j, k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn visit_probabilities_in_unit_interval() {
        let m = tiny_model();
        for i in 0..2 {
            for p in m.visit_probabilities(i) {
                assert!((0.0..=1.0).contains(&p), "p = {p}");
            }
        }
    }

    #[test]
    fn visit_probability_formula() {
        // Model scores for user 0, poi 0 are X̂(k=0)=1, X̂(k=1)=0.75:
        // clamped to (1−δ) and 0.75 → p ≈ 1 − (δ)(0.25) ≈ 1.
        let m = tiny_model();
        let p = m.visit_probabilities(0);
        assert!(p[0] > 0.999);
    }

    #[test]
    fn recommend_is_sorted_and_truncated() {
        let m = tiny_model();
        let rec = m.recommend(0, 0, 2);
        assert_eq!(rec.len(), 2);
        assert!(rec[0].1 >= rec[1].1);
    }

    #[test]
    fn mismatched_ranks_rejected() {
        let u1 = Matrix::zeros(2, 2);
        let u2 = Matrix::zeros(3, 3);
        let u3 = Matrix::zeros(2, 2);
        let err = TcssModel::try_new(u1, u2, u3).unwrap_err();
        assert!(err.contains("ranks must agree"), "{err}");
    }
}
