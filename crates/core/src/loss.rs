//! The least-squares loss head `L₂` (paper §IV-D).
//!
//! Three implementations:
//!
//! * [`rewritten_loss_and_grad`] — the paper's Eq 15: whole-data weighted
//!   squared error with the unlabeled-entry term rearranged through the
//!   factor Gram matrices, `O(nnz·r + (I+J+K)·r²)` per evaluation. This is
//!   the production path.
//! * [`naive_whole_data_loss`] — Eq 14 evaluated literally over all
//!   `I·J·K` cells; used by the Table IV timing experiment and by the
//!   equivalence tests (Remark 1 of the paper).
//! * [`negative_sampling_loss_and_grad`] — the classic alternative TCSS
//!   argues against; Table II/IV ablation.
//!
//! The production entry loops accumulate **sparse chunk-local deltas**
//! ([`crate::sparse_grads::SparseGrads`]) through pooled workspaces
//! ([`crate::workspace::TrainWorkspace`]): per-epoch memory traffic is
//! `O(nnz · r)`, not `O(chunks · (I+J+K) · r)`, and steady-state epochs
//! allocate nothing. The pre-sparse dense-chunk implementations are
//! retained verbatim in [`reference`] as the bitwise parity baseline and
//! the "before" side of the `bench_kernels` benchmark.
//!
//! All gradients are hand-derived and finite-difference checked in tests.

use crate::model::TcssModel;
use crate::sparse_grads::{backprop_entry_sparse, GradScratch, SparseGrads};
use crate::workspace::TrainWorkspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_linalg::{kernels, Matrix};
use tcss_sparse::{SparseTensor3, TensorEntry};

/// Tensor entries per parallel chunk in the entry-loop losses. Small enough
/// to load-balance the synthetic datasets, large enough that the per-chunk
/// sparse-delta bookkeeping is noise next to the `O(chunk · r)` backprop
/// work.
pub(crate) const ENTRIES_PER_CHUNK: usize = 1024;

/// Gradient buffers matching a [`TcssModel`]'s parameters.
#[derive(Debug, Clone)]
pub struct Grads {
    /// Gradient w.r.t. the user factors.
    pub u1: Matrix,
    /// Gradient w.r.t. the POI factors.
    pub u2: Matrix,
    /// Gradient w.r.t. the time factors.
    pub u3: Matrix,
    /// Gradient w.r.t. `h`.
    pub h: Vec<f64>,
}

impl Grads {
    /// Zero gradients sized for `model`.
    pub fn zeros(model: &TcssModel) -> Self {
        Grads {
            u1: Matrix::zeros(model.u1.rows(), model.u1.cols()),
            u2: Matrix::zeros(model.u2.rows(), model.u2.cols()),
            u3: Matrix::zeros(model.u3.rows(), model.u3.cols()),
            h: vec![0.0; model.h.len()],
        }
    }

    /// Reset every buffer to exact `+0.0` in place (bitwise identical to a
    /// fresh [`Grads::zeros`], without the allocation).
    pub fn set_zero(&mut self) {
        self.u1.as_mut_slice().fill(0.0);
        self.u2.as_mut_slice().fill(0.0);
        self.u3.as_mut_slice().fill(0.0);
        self.h.fill(0.0);
    }

    /// `self += s · other`.
    pub fn add_scaled(&mut self, s: f64, other: &Grads) {
        self.u1.axpy_mut(s, &other.u1).expect("same model shape");
        self.u2.axpy_mut(s, &other.u2).expect("same model shape");
        self.u3.axpy_mut(s, &other.u3).expect("same model shape");
        kernels::axpy(s, &other.h, &mut self.h);
    }

    /// Global L2 norm over all buffers.
    ///
    /// The summation order is **row-decomposable by construction**: each
    /// row's squared norm is one [`kernels::dot`] (the canonical lane order
    /// over the rank-sized row), and the per-row values fold sequentially —
    /// `u1` rows ascending, then `u2`, then `u3`, then one `dot(h, h)`
    /// term. A contiguous row range therefore contributes a contiguous run
    /// of fold terms, which is what lets tail-sharded distributed training
    /// ([`crate::dist`]) compute per-row dots on the owning workers and
    /// fold them on the coordinator into the exact in-process bits.
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for m in [&self.u1, &self.u2, &self.u3] {
            for r in 0..m.rows() {
                let row = m.row(r);
                acc += kernels::dot(row, row);
            }
        }
        acc += kernels::dot(&self.h, &self.h);
        acc.sqrt()
    }

    /// Fold one factor's per-row squared norms (`dots[i] = ‖row i‖²`,
    /// produced with [`kernels::dot`] on each row) into a running
    /// [`Grads::norm`] accumulator — the coordinator-side half of the
    /// row-decomposable norm contract above.
    pub(crate) fn norm_fold_rows(acc: &mut f64, dots: &[f64]) {
        for &d in dots {
            *acc += d;
        }
    }
}

/// Accumulate the gradient of a per-entry score derivative `c = ∂L/∂X̂_{ijk}`
/// into the factor gradients.
///
/// The four rank-wide loops are [`kernels::fused_mul3_axpy`] calls —
/// elementwise with left-to-right product association, **bit-for-bit**
/// identical to the scalar loops they replaced, but free of per-element
/// bounds checks (this is the innermost loop of every training epoch).
#[inline]
pub(crate) fn backprop_entry(
    model: &TcssModel,
    grads: &mut Grads,
    i: usize,
    j: usize,
    k: usize,
    c: f64,
) {
    let ui = model.u1.row(i);
    let uj = model.u2.row(j);
    let uk = model.u3.row(k);
    kernels::fused_mul3_axpy(c, &model.h, uj, uk, grads.u1.row_mut(i));
    kernels::fused_mul3_axpy(c, &model.h, ui, uk, grads.u2.row_mut(j));
    kernels::fused_mul3_axpy(c, &model.h, ui, uj, grads.u3.row_mut(k));
    kernels::fused_mul3_axpy(c, ui, uj, uk, &mut grads.h);
}

/// ---- Whole-data term: w₋ Σ_{r₁r₂} h_{r₁} h_{r₂} G¹ G² G³ ----
///
/// Shared tail of the rewritten loss: accumulates the Gram-matrix term of
/// Eq 15 into `loss` (in place, preserving the accumulation order the
/// bitwise contracts depend on) and its gradient into `grads`.
pub(crate) fn whole_data_term(model: &TcssModel, w_minus: f64, loss: &mut f64, grads: &mut Grads) {
    whole_data_term_sink(model, w_minus, &mut |t| *loss += t, grads);
}

/// [`whole_data_term`] with the loss contributions routed through a sink
/// instead of added in place. The sink receives exactly the terms the
/// in-place version adds, in the same order — so a caller that *records*
/// them and replays `loss += term` later (the distributed coordinator
/// computes the tail concurrently with worker evaluation, before the
/// chunk-loss fold it must add onto) reproduces the in-process loss
/// accumulator bit-for-bit.
pub(crate) fn whole_data_term_sink(
    model: &TcssModel,
    w_minus: f64,
    loss_term: &mut dyn FnMut(f64),
    grads: &mut Grads,
) {
    let [d1, d2, d3] = whole_data_gram_mats(model, w_minus, loss_term, &mut grads.h);
    // dB/dU¹ = 2 U¹ D¹ (D¹ symmetric); analogous for U² and U³.
    let du1 = model.u1.matmul(&d1).expect("shapes agree").scaled(2.0);
    grads.u1.axpy_mut(1.0, &du1).expect("shapes agree");
    let du2 = model.u2.matmul(&d2).expect("shapes agree").scaled(2.0);
    grads.u2.axpy_mut(1.0, &du2).expect("shapes agree");
    let du3 = model.u3.matmul(&d3).expect("shapes agree").scaled(2.0);
    grads.u3.axpy_mut(1.0, &du3).expect("shapes agree");
}

/// The `r × r` core of the whole-data term: the three coefficient
/// matrices `D^f` with factor gradient `∂B/∂U^f = 2 U^f D^f`, plus the
/// loss terms (through the sink, in the [`whole_data_term_sink`] order)
/// and the `h` gradient (added onto `h_grad` in place).
///
/// Split out from [`whole_data_term_sink`] so the tail-sharded
/// coordinator can broadcast just the D matrices and let each worker
/// rebuild its owned rows of `2·U^f·D^f` with
/// [`Matrix::row_product_into`] — bit-for-bit what the in-process
/// `matmul` + `scaled(2.0)` path lands on, at `r × r` wire cost instead
/// of dense rows. The loops below are the exact sequence the fused
/// version ran (D construction interleaved with the loss sink, then the
/// `h` gradient); only the factor matmuls moved out to the caller, and
/// those read nothing the loops write.
pub(crate) fn whole_data_gram_mats(
    model: &TcssModel,
    w_minus: f64,
    loss_term: &mut dyn FnMut(f64),
    h_grad: &mut [f64],
) -> [Matrix; 3] {
    let r = model.h.len();
    let g1 = model.u1.gram();
    let g2 = model.u2.gram();
    let g3 = model.u3.gram();
    let mut d1 = Matrix::zeros(r, r); // w₋ · h_{r₁} h_{r₂} G² G³ (for U¹ grad)
    for r1 in 0..r {
        for r2 in 0..r {
            let w = w_minus * model.h[r1] * model.h[r2];
            let p123 = g1.get(r1, r2) * g2.get(r1, r2) * g3.get(r1, r2);
            loss_term(w * p123);
            d1.set(r1, r2, w * g2.get(r1, r2) * g3.get(r1, r2));
        }
    }
    let mut d2 = Matrix::zeros(r, r);
    let mut d3 = Matrix::zeros(r, r);
    for r1 in 0..r {
        for r2 in 0..r {
            let w = w_minus * model.h[r1] * model.h[r2];
            d2.set(r1, r2, w * g1.get(r1, r2) * g3.get(r1, r2));
            d3.set(r1, r2, w * g1.get(r1, r2) * g2.get(r1, r2));
        }
    }
    // dB/dh_{r₁} = 2 w₋ Σ_{r₂} h_{r₂} (G¹G²G³)_{r₁r₂}.
    for (r1, hg) in h_grad.iter_mut().take(r).enumerate() {
        let mut acc = 0.0;
        for r2 in 0..r {
            acc += model.h[r2] * g1.get(r1, r2) * g2.get(r1, r2) * g3.get(r1, r2);
        }
        *hg += 2.0 * w_minus * acc;
    }
    [d1, d2, d3]
}

/// The paper's rewritten whole-data loss (Eq 15) and its analytic gradient.
///
/// Convenience wrapper over [`rewritten_loss_and_grad_ws`] with a one-shot
/// workspace; training loops hold a [`TrainWorkspace`] and call the `_ws`
/// form so scratch buffers amortize across epochs.
///
/// Returns `(loss, grads)`. Note the rewritten loss omits the constant
/// `Σ_{Ω₊} w₊ X²` (it does not affect optimization); add
/// `w_plus · positives.len()` to compare with [`naive_whole_data_loss`].
pub fn rewritten_loss_and_grad(
    model: &TcssModel,
    positives: &[TensorEntry],
    w_plus: f64,
    w_minus: f64,
) -> (f64, Grads) {
    let ws = TrainWorkspace::new();
    let mut grads = Grads::zeros(model);
    let loss = rewritten_loss_and_grad_ws(model, positives, w_plus, w_minus, &ws, &mut grads);
    (loss, grads)
}

/// [`rewritten_loss_and_grad`] over pooled workspaces, accumulating into
/// the caller's gradient buffer (which the merge starts from — no
/// model-sized fold-identity allocation).
///
/// The positive-entry term `Σ (w₊−w₋) X̂² − 2 w₊ X X̂` runs over fixed
/// entry chunks; each chunk accumulates a sparse delta of only the rows it
/// touches ([`SparseGrads`]) and the deltas scatter into `grads` in chunk
/// order — bit-for-bit identical to the dense-chunk merge (see
/// [`crate::sparse_grads`] for the contract) and independent of the thread
/// count. Returns the loss; `grads` receives `∂L₂/∂θ` added on top of
/// whatever it already holds.
pub fn rewritten_loss_and_grad_ws(
    model: &TcssModel,
    positives: &[TensorEntry],
    w_plus: f64,
    w_minus: f64,
    ws: &TrainWorkspace,
    grads: &mut Grads,
) -> f64 {
    let mut loss = rewritten_entry_loss_ws(model, positives, w_plus, w_minus, ws, grads);
    whole_data_term(model, w_minus, &mut loss, grads);
    loss
}

/// The entry-chunk half of [`rewritten_loss_and_grad_ws`]: the positive
/// term's loss and gradient *without* the Gram tail. The training loops
/// call this and then accumulate [`whole_data_term`] into a separate tail
/// buffer (see `TcssTrainer::epoch_grads`), so the per-element add order is
/// identical whether the tail is computed in-process or shipped from a
/// distributed coordinator.
pub(crate) fn rewritten_entry_loss_ws(
    model: &TcssModel,
    positives: &[TensorEntry],
    w_plus: f64,
    w_minus: f64,
    ws: &TrainWorkspace,
    grads: &mut Grads,
) -> f64 {
    let partials = tcss_linalg::map_chunks_with(
        positives.len(),
        ENTRIES_PER_CHUNK,
        || {
            let mut scratch = ws.scratch.acquire(|| GradScratch::for_model(model));
            scratch.ensure(model);
            scratch
        },
        |scratch, range| {
            let mut delta = ws.deltas.take(SparseGrads::new);
            let loss = l2_entry_chunk(
                model, positives, range, w_plus, w_minus, scratch, &mut delta,
            );
            (loss, delta)
        },
    );
    let mut loss = 0.0;
    for (l, delta) in partials {
        loss += l;
        delta.scatter_into(grads);
        ws.deltas.put(delta);
    }
    loss
}

/// One entry chunk of the rewritten-loss positive term: the pure function
/// of `(model, entries, global range)` behind the deterministic-reduction
/// contract. Shared verbatim by the in-process parallel path above and by
/// distributed-training worker processes ([`crate::dist`]) — one body, so
/// the two can never drift a bit apart.
///
/// `range` must be a chunk of the **global** entry grid (multiples of
/// [`ENTRIES_PER_CHUNK`]); `delta` is reset via [`SparseGrads::begin`] and
/// detached from `scratch` before returning.
pub(crate) fn l2_entry_chunk(
    model: &TcssModel,
    positives: &[TensorEntry],
    range: std::ops::Range<usize>,
    w_plus: f64,
    w_minus: f64,
    scratch: &mut GradScratch,
    delta: &mut SparseGrads,
) -> f64 {
    delta.begin(model);
    let mut loss = 0.0;
    for e in &positives[range] {
        let s = model.predict(e.i, e.j, e.k);
        loss += (w_plus - w_minus) * s * s - 2.0 * w_plus * e.value * s;
        let c = 2.0 * (w_plus - w_minus) * s - 2.0 * w_plus * e.value;
        backprop_entry_sparse(model, delta, scratch, e.i, e.j, e.k, c);
    }
    delta.detach(scratch);
    loss
}

/// Eq 14 evaluated literally: `Σ_{ijk} w_{ijk} (X_{ijk} − X̂_{ijk})²` over
/// all `I·J·K` cells. `O(I·J·K·r)` — Table IV's "original loss" row.
pub fn naive_whole_data_loss(
    model: &TcssModel,
    tensor: &SparseTensor3,
    w_plus: f64,
    w_minus: f64,
) -> f64 {
    let (i_dim, j_dim, k_dim) = tensor.dims();
    let mut loss = 0.0;
    for i in 0..i_dim {
        for j in 0..j_dim {
            for k in 0..k_dim {
                let x = tensor.get(i, j, k);
                let s = model.predict(i, j, k);
                let w = if x != 0.0 { w_plus } else { w_minus };
                loss += w * (x - s) * (x - s);
            }
        }
    }
    loss
}

/// Classic negative sampling: squared error over the positives plus an
/// equal number of uniformly sampled unobserved entries (following the NCF
/// recipe the paper's ablation uses). Returns `(loss, grads)`.
///
/// The entry loop is parallelized over fixed chunks, and each chunk draws
/// its negatives from an RNG seeded by `(seed, chunk index)` — the sampled
/// negatives are therefore a function of the seed and the chunk grid alone,
/// never of the thread count, keeping the whole evaluation deterministic.
pub fn negative_sampling_loss_and_grad(
    model: &TcssModel,
    tensor: &SparseTensor3,
    w_plus: f64,
    w_minus: f64,
    seed: u64,
) -> (f64, Grads) {
    let ws = TrainWorkspace::new();
    let mut grads = Grads::zeros(model);
    let loss =
        negative_sampling_loss_and_grad_ws(model, tensor, w_plus, w_minus, seed, &ws, &mut grads);
    (loss, grads)
}

/// [`negative_sampling_loss_and_grad`] over pooled workspaces, accumulating
/// into the caller's gradient buffer. Sparse chunk deltas, same merge
/// contract as [`rewritten_loss_and_grad_ws`]; the per-chunk RNG seeding is
/// unchanged, so the sampled negatives (and therefore the floats) match the
/// dense reference bit-for-bit.
pub fn negative_sampling_loss_and_grad_ws(
    model: &TcssModel,
    tensor: &SparseTensor3,
    w_plus: f64,
    w_minus: f64,
    seed: u64,
    ws: &TrainWorkspace,
    grads: &mut Grads,
) -> f64 {
    let entries = tensor.entries();
    let partials = tcss_linalg::map_chunks_with(
        entries.len(),
        ENTRIES_PER_CHUNK,
        || {
            let mut scratch = ws.scratch.acquire(|| GradScratch::for_model(model));
            scratch.ensure(model);
            scratch
        },
        |scratch, range| {
            let mut delta = ws.deltas.take(SparseGrads::new);
            let loss = negative_sampling_chunk(
                model, tensor, range, w_plus, w_minus, seed, scratch, &mut delta,
            );
            (loss, delta)
        },
    );
    let mut loss = 0.0;
    for (l, delta) in partials {
        loss += l;
        delta.scatter_into(grads);
        ws.deltas.put(delta);
    }
    loss
}

/// One entry chunk of the negative-sampling loss; the counterpart of
/// [`l2_entry_chunk`] shared with [`crate::dist`] workers. The per-chunk
/// RNG stream is keyed to the **global** chunk index (recovered from
/// `range.start`), so a worker evaluating chunk `c` draws exactly the
/// negatives the single-process run would have — the process-count-parity
/// contract for sampled losses rests on this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn negative_sampling_chunk(
    model: &TcssModel,
    tensor: &SparseTensor3,
    range: std::ops::Range<usize>,
    w_plus: f64,
    w_minus: f64,
    seed: u64,
    scratch: &mut GradScratch,
    delta: &mut SparseGrads,
) -> f64 {
    let (i_dim, j_dim, k_dim) = tensor.dims();
    let entries = tensor.entries();
    // SplitMix64-style mix of (seed, chunk) into an independent
    // per-chunk stream.
    let chunk = (range.start / ENTRIES_PER_CHUNK) as u64;
    let mut rng =
        StdRng::seed_from_u64(seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17));
    delta.begin(model);
    let mut loss = 0.0;
    for e in &entries[range] {
        let s = model.predict(e.i, e.j, e.k);
        loss += w_plus * (e.value - s) * (e.value - s);
        backprop_entry_sparse(
            model,
            delta,
            scratch,
            e.i,
            e.j,
            e.k,
            2.0 * w_plus * (s - e.value),
        );
        // One sampled negative per positive.
        let mut attempts = 0;
        loop {
            let (ni, nj, nk) = (
                rng.gen_range(0..i_dim),
                rng.gen_range(0..j_dim),
                rng.gen_range(0..k_dim),
            );
            if !tensor.contains(ni, nj, nk) || attempts > 32 {
                let sn = model.predict(ni, nj, nk);
                loss += w_minus * sn * sn;
                backprop_entry_sparse(model, delta, scratch, ni, nj, nk, 2.0 * w_minus * sn);
                break;
            }
            attempts += 1;
        }
    }
    delta.detach(scratch);
    loss
}

/// Pre-sparse dense-chunk implementations, retained verbatim.
///
/// These are the PR-1 versions of the entry-loop losses: every parallel
/// chunk folds into a full model-sized [`Grads`] buffer. They exist as
///
/// * the **bitwise parity baseline** — `tests/sparse_parity.rs` asserts the
///   sparse production path reproduces these floats exactly, and
/// * the **"before" side** of the `bench_kernels` before/after comparison.
///
/// Do not use them in training loops; they allocate `O(chunks)` model
/// copies per evaluation.
pub mod reference {
    use super::*;

    /// Dense-chunk [`rewritten_loss_and_grad`] (pre-sparse implementation).
    pub fn rewritten_loss_and_grad_dense(
        model: &TcssModel,
        positives: &[TensorEntry],
        w_plus: f64,
        w_minus: f64,
    ) -> (f64, Grads) {
        let (mut loss, mut grads) = tcss_linalg::fold_chunks(
            positives.len(),
            ENTRIES_PER_CHUNK,
            (0.0, Grads::zeros(model)),
            |range| {
                let mut local = Grads::zeros(model);
                let mut loss = 0.0;
                for e in &positives[range] {
                    let s = model.predict(e.i, e.j, e.k);
                    loss += (w_plus - w_minus) * s * s - 2.0 * w_plus * e.value * s;
                    let c = 2.0 * (w_plus - w_minus) * s - 2.0 * w_plus * e.value;
                    backprop_entry(model, &mut local, e.i, e.j, e.k, c);
                }
                (loss, local)
            },
            |(mut loss, mut grads), (l, g)| {
                loss += l;
                grads.add_scaled(1.0, &g);
                (loss, grads)
            },
        );
        whole_data_term(model, w_minus, &mut loss, &mut grads);
        (loss, grads)
    }

    /// Dense-chunk [`negative_sampling_loss_and_grad`] (pre-sparse
    /// implementation).
    pub fn negative_sampling_loss_and_grad_dense(
        model: &TcssModel,
        tensor: &SparseTensor3,
        w_plus: f64,
        w_minus: f64,
        seed: u64,
    ) -> (f64, Grads) {
        let (i_dim, j_dim, k_dim) = tensor.dims();
        let entries = tensor.entries();
        tcss_linalg::fold_chunks(
            entries.len(),
            ENTRIES_PER_CHUNK,
            (0.0, Grads::zeros(model)),
            |range| {
                let chunk = (range.start / ENTRIES_PER_CHUNK) as u64;
                let mut rng = StdRng::seed_from_u64(
                    seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
                );
                let mut local = Grads::zeros(model);
                let mut loss = 0.0;
                for e in &entries[range] {
                    let s = model.predict(e.i, e.j, e.k);
                    loss += w_plus * (e.value - s) * (e.value - s);
                    backprop_entry(
                        model,
                        &mut local,
                        e.i,
                        e.j,
                        e.k,
                        2.0 * w_plus * (s - e.value),
                    );
                    let mut attempts = 0;
                    loop {
                        let (ni, nj, nk) = (
                            rng.gen_range(0..i_dim),
                            rng.gen_range(0..j_dim),
                            rng.gen_range(0..k_dim),
                        );
                        if !tensor.contains(ni, nj, nk) || attempts > 32 {
                            let sn = model.predict(ni, nj, nk);
                            loss += w_minus * sn * sn;
                            backprop_entry(model, &mut local, ni, nj, nk, 2.0 * w_minus * sn);
                            break;
                        }
                        attempts += 1;
                    }
                }
                (loss, local)
            },
            |(mut loss, mut grads), (l, g)| {
                loss += l;
                grads.add_scaled(1.0, &g);
                (loss, grads)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;

    fn toy() -> (TcssModel, SparseTensor3) {
        let dims = (4, 5, 3);
        let entries = vec![
            (0, 0, 0, 1.0),
            (0, 1, 2, 1.0),
            (1, 0, 1, 1.0),
            (2, 3, 0, 1.0),
            (3, 4, 2, 1.0),
            (1, 2, 1, 1.0),
        ];
        let t = SparseTensor3::from_entries(dims, entries).unwrap();
        let (u1, u2, u3) = random_init(dims, 3, 11);
        (TcssModel::new(u1, u2, u3), t)
    }

    /// Eq 15 + constant == Eq 14 (Remark 1 of the paper).
    #[test]
    fn rewritten_equals_naive_up_to_constant() {
        let (model, t) = toy();
        let (rewritten, _) = rewritten_loss_and_grad(&model, t.entries(), 0.99, 0.01);
        let naive = naive_whole_data_loss(&model, &t, 0.99, 0.01);
        let constant = 0.99 * t.nnz() as f64; // Σ_{Ω₊} w₊ X² with X = 1
        assert!(
            (rewritten + constant - naive).abs() < 1e-9,
            "rewritten {rewritten} + {constant} != naive {naive}"
        );
    }

    /// Finite-difference check of the rewritten-loss gradient over every
    /// parameter class.
    #[test]
    fn rewritten_gradient_finite_difference() {
        let (mut model, t) = toy();
        let (_, grads) = rewritten_loss_and_grad(&model, t.entries(), 0.9, 0.1);
        let h = 1e-6;
        let eval = |m: &TcssModel| rewritten_loss_and_grad(m, t.entries(), 0.9, 0.1).0;
        // U1 coordinates.
        for (i, tt) in [(0usize, 0usize), (2, 1), (3, 2)] {
            let orig = model.u1.get(i, tt);
            model.u1.set(i, tt, orig + h);
            let fp = eval(&model);
            model.u1.set(i, tt, orig - h);
            let fm = eval(&model);
            model.u1.set(i, tt, orig);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - grads.u1.get(i, tt)).abs() < 1e-5,
                "U1[{i},{tt}]: numeric {num} vs analytic {}",
                grads.u1.get(i, tt)
            );
        }
        // U2, U3 spot checks.
        for (j, tt) in [(0usize, 0usize), (4, 2)] {
            let orig = model.u2.get(j, tt);
            model.u2.set(j, tt, orig + h);
            let fp = eval(&model);
            model.u2.set(j, tt, orig - h);
            let fm = eval(&model);
            model.u2.set(j, tt, orig);
            let num = (fp - fm) / (2.0 * h);
            assert!((num - grads.u2.get(j, tt)).abs() < 1e-5);
        }
        for (k, tt) in [(0usize, 1usize), (2, 0)] {
            let orig = model.u3.get(k, tt);
            model.u3.set(k, tt, orig + h);
            let fp = eval(&model);
            model.u3.set(k, tt, orig - h);
            let fm = eval(&model);
            model.u3.set(k, tt, orig);
            let num = (fp - fm) / (2.0 * h);
            assert!((num - grads.u3.get(k, tt)).abs() < 1e-5);
        }
        // h coordinates.
        for tt in 0..3 {
            let orig = model.h[tt];
            model.h[tt] = orig + h;
            let fp = eval(&model);
            model.h[tt] = orig - h;
            let fm = eval(&model);
            model.h[tt] = orig;
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - grads.h[tt]).abs() < 1e-5,
                "h[{tt}]: numeric {num} vs analytic {}",
                grads.h[tt]
            );
        }
    }

    #[test]
    fn negative_sampling_gradient_finite_difference() {
        let (mut model, t) = toy();
        let seed = 99;
        let (_, grads) = negative_sampling_loss_and_grad(&model, &t, 0.9, 0.1, seed);
        let h = 1e-6;
        // Same seed ⇒ same sampled negatives ⇒ differentiable w.r.t params.
        let eval = |m: &TcssModel| negative_sampling_loss_and_grad(m, &t, 0.9, 0.1, seed).0;
        let orig = model.u1.get(1, 1);
        model.u1.set(1, 1, orig + h);
        let fp = eval(&model);
        model.u1.set(1, 1, orig - h);
        let fm = eval(&model);
        model.u1.set(1, 1, orig);
        let num = (fp - fm) / (2.0 * h);
        assert!(
            (num - grads.u1.get(1, 1)).abs() < 1e-5,
            "numeric {num} vs analytic {}",
            grads.u1.get(1, 1)
        );
    }

    #[test]
    fn descent_direction_reduces_loss() {
        let (mut model, t) = toy();
        let (l0, grads) = rewritten_loss_and_grad(&model, t.entries(), 0.99, 0.01);
        let step = 1e-3 / grads.norm().max(1.0);
        model.u1.axpy_mut(-step, &grads.u1).unwrap();
        model.u2.axpy_mut(-step, &grads.u2).unwrap();
        model.u3.axpy_mut(-step, &grads.u3).unwrap();
        for (hv, g) in model.h.iter_mut().zip(grads.h.iter()) {
            *hv -= step * g;
        }
        let (l1, _) = rewritten_loss_and_grad(&model, t.entries(), 0.99, 0.01);
        assert!(l1 < l0, "step along −∇ must reduce loss: {l0} → {l1}");
    }

    #[test]
    fn grads_add_scaled_and_norm() {
        let (model, t) = toy();
        let (_, g) = rewritten_loss_and_grad(&model, t.entries(), 0.9, 0.1);
        let mut acc = Grads::zeros(&model);
        acc.add_scaled(2.0, &g);
        assert!((acc.norm() - 2.0 * g.norm()).abs() < 1e-9);
    }

    #[test]
    fn perfect_model_has_small_positive_gradient() {
        // A model that predicts exactly 1 on the positive and 0 elsewhere
        // would zero the positive term's gradient; verify the positive-term
        // coefficient formula at s = 1: c = 2(w₊−w₋) − 2w₊ = −2w₋.
        let dims = (1, 1, 1);
        let t = SparseTensor3::from_entries(dims, vec![(0, 0, 0, 1.0)]).unwrap();
        let u = Matrix::filled(1, 1, 1.0);
        let model = TcssModel::new(u.clone(), u.clone(), u);
        let (_, grads) = rewritten_loss_and_grad(&model, t.entries(), 0.99, 0.01);
        // Gram term adds 2·w₋·h·G²G³ = 2·0.01; positive term −2w₋ = −0.02.
        // Net ≈ 0: the whole-data loss wants s slightly below 1.
        assert!(grads.h[0].abs() < 0.05, "grad {}", grads.h[0]);
    }
}
