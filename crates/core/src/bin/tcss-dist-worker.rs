//! Standalone distributed-training worker.
//!
//! Spawned by the coordinator (`TcssTrainer::train_distributed`) with
//! `--socket <path> --worker <id>`; everything else arrives over the
//! socket. The `tcss` CLI embeds the same entry point as its hidden
//! `dist-worker` subcommand — this binary exists so the core crate's
//! integration tests (and the bench harness) can run real multi-process
//! training without depending on the workspace-root CLI.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<PathBuf> = None;
    let mut worker: Option<u32> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next().map(PathBuf::from),
            "--worker" => worker = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("tcss-dist-worker: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(socket), Some(worker)) = (socket, worker) else {
        eprintln!("usage: tcss-dist-worker --socket <path> --worker <id>");
        return ExitCode::from(2);
    };
    match tcss_core::dist::run_worker(&socket, worker) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tcss-dist-worker {worker}: {e}");
            ExitCode::FAILURE
        }
    }
}
