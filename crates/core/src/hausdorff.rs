//! The social Hausdorff loss head `L₁` (paper §IV-C, Eqs 9–13) with
//! hand-derived, backpropagatable gradients.
//!
//! For each user `vᵢ`:
//!
//! * `N(vᵢ)` — POIs checked by friends (or by the user themself in the
//!   Self-Hausdorff ablation), fixed from the *training* tensor;
//! * `p_{ij} = 1 − Π_k (1 − clamp(X̂_{ijk}))` — the model-coupled visit
//!   probability (clamping keeps the product a probability; the gradient is
//!   zero where the clamp saturates — a standard subgradient choice);
//! * Term 1: `(1/(A+ε)) Σ_{j∈S} p_{ij} e_j min_{j'∈N} d(j,j')`;
//! * Term 2: `(1/|N|) Σ_{j'∈N} e_{j'} M_α over j∈S of
//!   [p_{ij} d(j,j') + (1−p_{ij}) d_max]` with the generalized mean
//!   `M_α` (α = −1 by default) standing in for min(·).
//!
//! The gradients flow `∂L₁/∂p → ∂p/∂X̂ → ∂X̂/∂(U¹,U²,U³,h)`; the last hop is
//! shared with the `L₂` head ([`crate::loss::backprop_entry`]).

use crate::config::HausdorffVariant;
use crate::loss::{backprop_entry, Grads};
use crate::model::{clamp_prob, SliceScratch, TcssModel};
use crate::sparse_grads::{backprop_entry_sparse, GradScratch, SparseGrads};
use crate::workspace::TrainWorkspace;
use tcss_data::{CheckIn, Dataset};
use tcss_geo::{entropy_weights, DistanceMatrix, WeightedHausdorffParams};
use tcss_linalg::kernels;

/// Per-user scratch buffers for the Hausdorff head: clamped slice values,
/// visit probabilities, `dL/dp`, generalized-mean terms, prefix/suffix
/// products, the candidate set, and the candidate-indexed gather buffers
/// that let the per-`j'` distance scans run over contiguous memory.
/// Checked out of the trainer's [`TrainWorkspace`] pool once per worker
/// per parallel region — before this existed, every user of every epoch
/// allocated all of these vectors.
///
/// Buffers carry no information between users: each is either fully
/// overwritten before it is read or explicitly reset per call.
#[derive(Debug, Default)]
pub struct UserScratch {
    /// Scratch for [`TcssModel::user_slice_into`] (the `J·K·r` hot loop).
    slice: SliceScratch,
    /// Raw (unclamped) slice scores `X̂_{ijk}`, `j_dim · k_dim`.
    raw: Vec<f64>,
    /// Clamped slice values `x_{jk}`, `j_dim · k_dim`.
    x: Vec<f64>,
    /// Visit probabilities `p_{ij}`, `j_dim`.
    p: Vec<f64>,
    /// `dL/dp`, `j_dim`, zeroed per user.
    dp: Vec<f64>,
    /// Generalized-mean terms `f_j`, `|S|`.
    f: Vec<f64>,
    /// `f_j^α` cache, `|S|` (reused by the gradient as `f^{α−1} = f^α / f`,
    /// halving the `powf` count of the distance scans).
    fpow: Vec<f64>,
    /// Candidate-gathered probabilities `p_{ij}` for `j ∈ S`, `|S|`.
    pc: Vec<f64>,
    /// Candidate-gathered `e_j · minD_j`, `|S|`.
    ewm: Vec<f64>,
    /// Candidate-gathered distance column `d(j, j')` for `j ∈ S`, `|S|`.
    dcol: Vec<f64>,
    /// Prefix products of `(1 − x)`, `k_dim + 1`.
    prefix: Vec<f64>,
    /// Suffix products of `(1 − x)`, `k_dim + 1`.
    suffix: Vec<f64>,
    /// Candidate set `S(vᵢ)`.
    cand: Vec<usize>,
}

impl UserScratch {
    /// Empty scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        UserScratch::default()
    }
}

/// Where [`SocialHausdorffHead::user_loss_grad`] sends its gradient: the
/// shared dense buffer (sequential / reference paths), a chunk-local sparse
/// delta (production parallel path), or nowhere (forward-only evaluation).
/// Both destinations run the identical per-entry arithmetic
/// ([`backprop_entry`] / [`backprop_entry_sparse`]), which is what the
/// bitwise dense↔sparse parity rests on.
enum GradTarget<'a> {
    /// Forward pass only.
    None,
    /// Accumulate `scale · ∂L₁/∂θ` into a dense buffer.
    Dense(&'a mut Grads, f64),
    /// Accumulate `scale · ∂L₁/∂θ` into a chunk's sparse delta.
    Sparse(&'a mut SparseGrads, &'a mut GradScratch, f64),
}

impl GradTarget<'_> {
    fn wants_grad(&self) -> bool {
        !matches!(self, GradTarget::None)
    }

    fn scale(&self) -> f64 {
        match self {
            GradTarget::None => 0.0,
            GradTarget::Dense(_, s) | GradTarget::Sparse(_, _, s) => *s,
        }
    }

    #[inline]
    fn backprop(&mut self, model: &TcssModel, i: usize, j: usize, k: usize, c: f64) {
        match self {
            GradTarget::None => {}
            GradTarget::Dense(grads, _) => backprop_entry(model, grads, i, j, k, c),
            GradTarget::Sparse(delta, scratch, _) => {
                backprop_entry_sparse(model, delta, scratch, i, j, k, c)
            }
        }
    }
}

/// Precomputed per-user social-spatial context plus the head parameters.
pub struct SocialHausdorffHead {
    /// `N(vᵢ)`: target POI sets per user.
    friend_pois: Vec<Vec<usize>>,
    /// `minD[i][j] = min_{j'∈N(vᵢ)} d(j, j')`; empty when `N(vᵢ)` is empty.
    min_dist: Vec<Vec<f64>>,
    /// Location-entropy weights `e_j = exp(−E_j)` from the training data.
    e_weights: Vec<f64>,
    /// Pairwise POI distances.
    dist: DistanceMatrix,
    /// Smooth-min and normalization parameters.
    params: WeightedHausdorffParams,
    /// Optional candidate-set cap (top-`p` POIs by visit probability).
    candidates: Option<usize>,
}

impl SocialHausdorffHead {
    /// Build the head from the dataset and its training check-ins.
    ///
    /// `variant` selects the paper's social targets or the Self-Hausdorff
    /// ablation; the `ZeroOut`/`None` variants have no head and must not be
    /// constructed (the trainer skips construction for them).
    pub fn new(
        data: &Dataset,
        train: &[CheckIn],
        variant: HausdorffVariant,
        params: WeightedHausdorffParams,
        candidates: Option<usize>,
    ) -> Self {
        assert!(
            matches!(
                variant,
                HausdorffVariant::Social | HausdorffVariant::SelfHausdorff
            ),
            "only the Social and SelfHausdorff variants carry a loss head"
        );
        let n_users = data.n_users;
        let n_pois = data.n_pois();
        // Visited POI sets from the training data only.
        let mut visited: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); n_users];
        for c in train {
            visited[c.user].insert(c.poi);
        }
        let friend_pois: Vec<Vec<usize>> = (0..n_users)
            .map(|u| match variant {
                HausdorffVariant::SelfHausdorff => visited[u].iter().copied().collect(),
                _ => {
                    let mut set = std::collections::BTreeSet::new();
                    for &f in data.social.neighbors(u) {
                        set.extend(visited[f].iter().copied());
                    }
                    set.into_iter().collect()
                }
            })
            .collect();
        // Distances are normalized by d_max so the head's magnitude (and
        // hence λ's meaning) is independent of the dataset's geographic
        // extent; this is a pure rescaling of L₁.
        let dist = data.distance_matrix().normalized();
        let min_dist: Vec<Vec<f64>> = friend_pois
            .iter()
            .map(|n_set| {
                if n_set.is_empty() {
                    Vec::new()
                } else {
                    (0..n_pois)
                        .map(|j| dist.min_to_set(j, n_set).expect("nonempty"))
                        .collect()
                }
            })
            .collect();
        let entropy = data.location_entropy_from(train);
        SocialHausdorffHead {
            friend_pois,
            min_dist,
            e_weights: entropy_weights(&entropy),
            dist,
            params,
            candidates,
        }
    }

    /// Entropy weights in use (exposed for tests and diagnostics).
    pub fn entropy_weights(&self) -> &[f64] {
        &self.e_weights
    }

    /// Target set `N(vᵢ)` (exposed for tests and diagnostics).
    pub fn target_set(&self, user: usize) -> &[usize] {
        &self.friend_pois[user]
    }

    /// The candidate set `S(vᵢ)` for a user given visit probabilities.
    ///
    /// Paper Eq 7: `S(vᵢ) = {j | ∃k : X̂_{ijk} > 0}`, i.e. POIs with a
    /// strictly positive visit probability — not the whole POI catalogue.
    /// This matters: including the `p ≈ 0` bulk dilutes the generalized
    /// mean (its `1/|S|` factor) until the head's gradient vanishes.
    /// An optional cap keeps only the top-`p` candidates, selected in
    /// `O(n)` by [`slice::select_nth_unstable_by`]; ties on equal
    /// probability break by ascending POI index, which reproduces the
    /// previous stable sort-descending + truncate set (and the final
    /// ascending sort reproduces its order) exactly.
    fn candidate_set(&self, p: &[f64], idx: &mut Vec<usize>) {
        idx.clear();
        idx.extend((0..p.len()).filter(|&j| p[j] > 0.0));
        if let Some(cap) = self.candidates {
            if idx.len() > cap {
                idx.select_nth_unstable_by(cap, |&a, &b| {
                    p[b].partial_cmp(&p[a])
                        .expect("probabilities finite")
                        .then(a.cmp(&b))
                });
                idx.truncate(cap);
                idx.sort_unstable();
            }
        }
    }

    /// Forward value of `L₁` (sum over users of Eq 12).
    pub fn loss(&self, model: &TcssModel) -> f64 {
        let (n_users, _, _) = model.dims();
        let mut us = UserScratch::new();
        (0..n_users)
            .map(|i| self.user_loss_grad(model, i, &mut us, GradTarget::None))
            .sum()
    }

    /// Users per parallel chunk. One user's gradient touches every POI in
    /// the candidate set, so even a handful of users is enough work to
    /// amortize a per-chunk `Grads` buffer.
    const USERS_PER_CHUNK: usize = 8;

    /// `L₁` and its gradient, scaled by `scale` (= λ), accumulated into
    /// `grads`. Returns the unscaled loss value.
    ///
    /// Convenience wrapper over [`Self::loss_and_grad_ws`] with a one-shot
    /// workspace; the trainer holds a [`TrainWorkspace`] and calls the `_ws`
    /// form so scratch buffers amortize across epochs.
    pub fn loss_and_grad(&self, model: &TcssModel, grads: &mut Grads, scale: f64) -> f64 {
        self.loss_and_grad_ws(model, grads, scale, &TrainWorkspace::new())
    }

    /// [`Self::loss_and_grad`] over pooled workspaces.
    ///
    /// The per-user terms of Eq 13 are independent, so they are computed in
    /// parallel through [`tcss_linalg::map_chunks_with`]: users are cut
    /// into fixed chunks, each chunk accumulates a sparse delta of the rows
    /// it touches ([`SparseGrads`]), and the deltas scatter into `grads` in
    /// chunk order. Under the deterministic-reduction contract and the
    /// sparse-delta merge contract ([`crate::sparse_grads`]) the result is
    /// bit-for-bit identical to the dense reference at every thread count
    /// (the parity suites pin this).
    pub fn loss_and_grad_ws(
        &self,
        model: &TcssModel,
        grads: &mut Grads,
        scale: f64,
        ws: &TrainWorkspace,
    ) -> f64 {
        let (n_users, _, _) = model.dims();
        let partials = tcss_linalg::map_chunks_with(
            n_users,
            Self::USERS_PER_CHUNK,
            || {
                let mut scratch = ws.scratch.acquire(|| GradScratch::for_model(model));
                scratch.ensure(model);
                let users = ws.users.acquire(UserScratch::new);
                (scratch, users)
            },
            |(scratch, users), range| {
                let mut delta = ws.deltas.take(SparseGrads::new);
                delta.begin(model);
                let mut total = 0.0;
                for i in range {
                    total += self.user_loss_grad(
                        model,
                        i,
                        users,
                        GradTarget::Sparse(&mut delta, scratch, scale),
                    );
                }
                delta.detach(scratch);
                (total, delta)
            },
        );
        let mut total = 0.0;
        for (t, delta) in partials {
            total += t;
            delta.scatter_into(grads);
            ws.deltas.put(delta);
        }
        total
    }

    /// Dense-chunk parallel implementation (pre-sparse, retained as the
    /// bitwise parity baseline and the "before" side of `bench_kernels`):
    /// each chunk folds into a full model-sized [`Grads`] buffer, merged in
    /// chunk order.
    pub fn loss_and_grad_dense(&self, model: &TcssModel, grads: &mut Grads, scale: f64) -> f64 {
        let (n_users, _, _) = model.dims();
        let partials = tcss_linalg::map_chunks_with(
            n_users,
            Self::USERS_PER_CHUNK,
            UserScratch::new,
            |us, range| {
                let mut local = Grads::zeros(model);
                let mut total = 0.0;
                for i in range {
                    total +=
                        self.user_loss_grad(model, i, us, GradTarget::Dense(&mut local, scale));
                }
                (total, local)
            },
        );
        let mut total = 0.0;
        for (t, g) in &partials {
            total += t;
            grads.add_scaled(1.0, g);
        }
        total
    }

    /// Sequential reference implementation of [`Self::loss_and_grad`]
    /// (kept for the parallel-equivalence test).
    pub fn loss_and_grad_sequential(
        &self,
        model: &TcssModel,
        grads: &mut Grads,
        scale: f64,
    ) -> f64 {
        let (n_users, _, _) = model.dims();
        let mut us = UserScratch::new();
        let mut total = 0.0;
        for i in 0..n_users {
            total += self.user_loss_grad(model, i, &mut us, GradTarget::Dense(grads, scale));
        }
        total
    }

    /// Loss (and optional gradient accumulation) for one user. All scratch
    /// vectors come from `us`; every buffer is fully overwritten (or
    /// explicitly reset) before it is read, so a pooled scratch cannot leak
    /// state between users.
    fn user_loss_grad(
        &self,
        model: &TcssModel,
        user: usize,
        us: &mut UserScratch,
        mut target: GradTarget,
    ) -> f64 {
        let n_set = &self.friend_pois[user];
        if n_set.is_empty() {
            return 0.0;
        }
        let min_d = &self.min_dist[user];
        let d_max = self.dist.max_distance();
        let alpha = self.params.alpha;
        let eps = self.params.epsilon;
        let floor = self.params.floor;

        // Raw slice and clamped probabilities.
        let (_, j_dim, k_dim) = model.dims();
        let UserScratch {
            slice,
            raw,
            x,
            p,
            dp,
            f,
            fpow,
            pc,
            ewm,
            dcol,
            prefix,
            suffix,
            cand,
        } = us;
        model.user_slice_into(user, slice, raw);
        x.resize(j_dim * k_dim, 0.0);
        p.resize(j_dim, 0.0);
        for j in 0..j_dim {
            let mut not_visit = 1.0;
            for k in 0..k_dim {
                let c = clamp_prob(raw[j * k_dim + k]);
                x[j * k_dim + k] = c;
                not_visit *= 1.0 - c;
            }
            p[j] = 1.0 - not_visit;
        }
        self.candidate_set(p, cand);
        let s_set: &[usize] = cand;
        if s_set.is_empty() {
            // No POI has positive predicted probability (Eq 7's S(vᵢ) is
            // empty) — nothing to regularize for this user.
            return 0.0;
        }

        // Gather the candidate-indexed quantities once so the per-`j'`
        // scans below run over contiguous buffers instead of scattered
        // `p[j]` / `dist.get` lookups.
        let s = s_set.len();
        pc.resize(s, 0.0);
        ewm.resize(s, 0.0);
        for (idx, &j) in s_set.iter().enumerate() {
            pc[idx] = p[j];
            ewm[idx] = self.e_weights[j] * min_d[j];
        }

        // ---- Term 1 ----
        // Lane-kernel reductions (canonical order of `tcss_linalg::kernels`;
        // deterministic, shared by every path that evaluates this head).
        let a_norm = kernels::sum(pc);
        let s1 = kernels::dot(pc, ewm);
        let term1 = s1 / (a_norm + eps);

        // ---- Term 2 ----
        let n_len = n_set.len() as f64;
        let s_len = s as f64;
        let mut term2 = 0.0;
        // dL/dp accumulated over both terms.
        dp.clear();
        dp.resize(j_dim, 0.0);
        for (idx, &j) in s_set.iter().enumerate() {
            // Term-1 derivative: (e_j·minD_j − term1)/(A+ε).
            dp[j] += (ewm[idx] - term1) / (a_norm + eps);
        }
        f.resize(s, 0.0);
        fpow.resize(s, 0.0);
        dcol.resize(s, 0.0);
        for &jp in n_set {
            for (idx, &j) in s_set.iter().enumerate() {
                dcol[idx] = self.dist.get(j, jp);
            }
            for idx in 0..s {
                let fj = (pc[idx] * dcol[idx] + (1.0 - pc[idx]) * d_max).max(floor);
                f[idx] = fj;
                fpow[idx] = fj.powf(alpha);
            }
            let mean_pow = kernels::sum(fpow) / s_len;
            let m = mean_pow.powf(1.0 / alpha);
            term2 += self.e_weights[jp] * m;
            if target.wants_grad() {
                // dM/df_j = (1/|S|) · m̄^{(1−α)/α} · f_j^{α−1}; the cached
                // `f^α` gives `f^{α−1}` as `f^α / f`, saving a `powf` per
                // (j, j') pair. df_j/dp_j = d(j,j') − d_max (zero where the
                // floor clamps, i.e. where `f` sits exactly on the floor).
                let m_bar_pow = mean_pow.powf((1.0 - alpha) / alpha);
                for (idx, &j) in s_set.iter().enumerate() {
                    if f[idx] <= floor {
                        continue;
                    }
                    let dm_df = m_bar_pow * (fpow[idx] / f[idx]) / s_len;
                    dp[j] += self.e_weights[jp] / n_len * dm_df * (dcol[idx] - d_max);
                }
            }
        }
        term2 /= n_len;

        // ---- Backprop dL/dp → dL/dX̂ → factors ----
        if target.wants_grad() {
            let scale = target.scale();
            prefix.resize(k_dim + 1, 0.0);
            suffix.resize(k_dim + 1, 0.0);
            prefix[0] = 1.0;
            suffix[k_dim] = 1.0;
            for &j in s_set {
                if dp[j] == 0.0 {
                    continue;
                }
                // dp/dx_k = Π_{k'≠k} (1 − x_{k'}) via prefix/suffix products.
                let xs = &x[j * k_dim..(j + 1) * k_dim];
                for k in 0..k_dim {
                    prefix[k + 1] = prefix[k] * (1.0 - xs[k]);
                }
                for k in (0..k_dim).rev() {
                    suffix[k] = suffix[k + 1] * (1.0 - xs[k]);
                }
                for k in 0..k_dim {
                    let raw = raw[j * k_dim + k];
                    let dp_dx = prefix[k] * suffix[k + 1];
                    let c = scale * dp[j] * dp_dx;
                    // Projected-gradient treatment of the clamp: block the
                    // gradient only when it points *out of* [0, 1). A hard
                    // zero-on-saturation rule would permanently silence the
                    // never-visited POIs (raw score ≲ 0) that the social
                    // head exists to lift. (Update direction is −c.)
                    let blocked = (raw <= 0.0 && c > 0.0) || (raw >= 1.0 - 1e-9 && c < 0.0);
                    if !blocked && c != 0.0 {
                        target.backprop(model, user, j, k, c);
                    }
                }
            }
        }

        term1 + term2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_init;
    use tcss_data::{Category, Poi};
    use tcss_geo::GeoPoint;
    use tcss_graph::SocialGraph;

    /// Tiny dataset: 3 users in a line of 5 POIs; users 0 and 1 are friends.
    fn toy_data() -> (Dataset, Vec<CheckIn>) {
        let pois: Vec<Poi> = (0..5)
            .map(|j| Poi {
                location: GeoPoint::new(0.0, j as f64 * 0.5),
                category: Category::Food,
            })
            .collect();
        let mk = |user, poi, month| CheckIn {
            user,
            poi,
            month,
            week: (month as u16 * 4) as u8,
            hour: 12,
        };
        let checkins = vec![
            mk(0, 0, 0),
            mk(0, 1, 3),
            mk(1, 1, 2),
            mk(1, 2, 6),
            mk(2, 4, 9),
        ];
        let data = Dataset {
            name: "toy".into(),
            n_users: 3,
            pois,
            checkins: checkins.clone(),
            social: SocialGraph::from_edges(3, vec![(0, 1)]),
        };
        (data, checkins)
    }

    fn toy_model(data: &Dataset) -> TcssModel {
        let dims = (data.n_users, data.n_pois(), 12);
        let (u1, u2, u3) = random_init(dims, 3, 21);
        TcssModel::new(u1, u2, u3)
    }

    /// A model whose scores all lie strictly inside (0, 1): every factor
    /// entry is positive and small, so the clamp never saturates and the
    /// analytic gradient equals the true derivative (the projected-gradient
    /// rule only differs *at* the clamp boundary).
    fn interior_model(data: &Dataset) -> TcssModel {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let dims = (data.n_users, data.n_pois(), 12);
        let mut mk = |n: usize| tcss_linalg::Matrix::from_fn(n, 3, |_, _| rng.gen_range(0.2..0.6));
        let u1 = mk(dims.0);
        let u2 = mk(dims.1);
        let u3 = mk(dims.2);
        TcssModel::new(u1, u2, u3)
    }

    #[test]
    fn friend_sets_follow_variant() {
        let (data, train) = toy_data();
        let social = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        // User 0's friends = {1}; friend POIs = {1, 2}.
        assert_eq!(social.target_set(0), &[1, 2]);
        // User 2 has no friends → empty target set.
        assert!(social.target_set(2).is_empty());
        let selfh = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::SelfHausdorff,
            Default::default(),
            None,
        );
        assert_eq!(selfh.target_set(0), &[0, 1]);
        assert_eq!(selfh.target_set(2), &[4]);
    }

    #[test]
    #[should_panic(expected = "Social and SelfHausdorff")]
    fn zero_out_variant_rejected() {
        let (data, train) = toy_data();
        SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::ZeroOut,
            Default::default(),
            None,
        );
    }

    /// The head's forward value must agree with the reference forward
    /// implementation in `tcss-geo`.
    #[test]
    fn forward_matches_geo_reference() {
        let (data, train) = toy_data();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        let model = toy_model(&data);
        let got = head.loss(&model);
        // Reference: per user, call tcss_geo::weighted_hausdorff with the
        // same probabilities, candidate set (= all POIs) and weights, on
        // the same normalized distance matrix.
        let dist = data.distance_matrix().normalized();
        let mut expect = 0.0;
        for i in 0..data.n_users {
            let n_set = head.target_set(i);
            if n_set.is_empty() {
                continue;
            }
            let p = model.visit_probabilities(i);
            // Eq 7: S(vᵢ) = POIs with positive visit probability.
            let s_set: Vec<usize> = (0..data.n_pois()).filter(|&j| p[j] > 0.0).collect();
            let p_sub: Vec<f64> = s_set.iter().map(|&j| p[j]).collect();
            expect += tcss_geo::weighted_hausdorff(
                &s_set,
                &p_sub,
                n_set,
                &dist,
                head.entropy_weights(),
                &Default::default(),
            );
        }
        assert!(
            (got - expect).abs() < 1e-9,
            "head {got} vs reference {expect}"
        );
    }

    /// Finite-difference check of the full analytic gradient through
    /// probabilities, clamping, the generalized mean and the factors.
    #[test]
    fn gradient_finite_difference() {
        let (data, train) = toy_data();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        let mut model = interior_model(&data);
        let mut grads = Grads::zeros(&model);
        head.loss_and_grad(&model, &mut grads, 1.0);
        let h = 1e-6;
        let mut checked = 0;
        // Spot-check a spread of coordinates in every factor.
        for (mat_id, coords) in [
            (0usize, vec![(0usize, 0usize), (1, 2), (2, 1)]),
            (1, vec![(0, 0), (3, 1), (4, 2)]),
            (2, vec![(0, 0), (6, 1), (11, 2)]),
        ] {
            for (row, col) in coords {
                let get = |m: &TcssModel| match mat_id {
                    0 => m.u1.get(row, col),
                    1 => m.u2.get(row, col),
                    _ => m.u3.get(row, col),
                };
                let set = |m: &mut TcssModel, v: f64| match mat_id {
                    0 => m.u1.set(row, col, v),
                    1 => m.u2.set(row, col, v),
                    _ => m.u3.set(row, col, v),
                };
                let orig = get(&model);
                set(&mut model, orig + h);
                let fp = head.loss(&model);
                set(&mut model, orig - h);
                let fm = head.loss(&model);
                set(&mut model, orig);
                let num = (fp - fm) / (2.0 * h);
                let analytic = match mat_id {
                    0 => grads.u1.get(row, col),
                    1 => grads.u2.get(row, col),
                    _ => grads.u3.get(row, col),
                };
                // Clamp boundaries make a few coordinates non-smooth; only
                // enforce agreement where the numeric derivative is stable.
                if (fp - fm).abs() > 1e-12 || analytic.abs() > 1e-9 {
                    assert!(
                        (num - analytic).abs() < 1e-4 * num.abs().max(analytic.abs()).max(1.0),
                        "mat {mat_id} ({row},{col}): numeric {num} vs analytic {analytic}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked >= 5, "too few smooth coordinates checked");
    }

    #[test]
    fn scale_parameter_scales_gradient() {
        let (data, train) = toy_data();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        let model = toy_model(&data);
        let mut g1 = Grads::zeros(&model);
        head.loss_and_grad(&model, &mut g1, 1.0);
        let mut g2 = Grads::zeros(&model);
        head.loss_and_grad(&model, &mut g2, 0.5);
        assert!((g2.norm() - 0.5 * g1.norm()).abs() < 1e-9);
    }

    #[test]
    fn candidate_cap_limits_set() {
        let (data, train) = toy_data();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            Some(2),
        );
        let model = toy_model(&data);
        // With a cap the loss is still finite and non-negative.
        let l = head.loss(&model);
        assert!(l.is_finite() && l >= 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Enough users to trigger the parallel path.
        use tcss_data::SynthPreset;
        let data = SynthPreset::Gmu5k.generate();
        let train: Vec<CheckIn> = data.checkins.iter().take(2000).copied().collect();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        let tensor = data.tensor_from(&train, tcss_data::Granularity::Month);
        let (u1, u2, u3) = random_init(tensor.dims(), 4, 9);
        let model = TcssModel::new(u1, u2, u3);
        let mut g_par = Grads::zeros(&model);
        let l_par = head.loss_and_grad(&model, &mut g_par, 0.5);
        let mut g_seq = Grads::zeros(&model);
        let l_seq = head.loss_and_grad_sequential(&model, &mut g_seq, 0.5);
        assert!((l_par - l_seq).abs() < 1e-9, "{l_par} vs {l_seq}");
        assert!(
            g_par.u1.approx_eq(&g_seq.u1, 1e-9)
                && g_par.u2.approx_eq(&g_seq.u2, 1e-9)
                && g_par.u3.approx_eq(&g_seq.u3, 1e-9),
            "parallel gradients diverge from sequential"
        );
    }

    #[test]
    fn users_without_targets_contribute_zero() {
        let (data, train) = toy_data();
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            None,
        );
        let model = toy_model(&data);
        let mut grads = Grads::zeros(&model);
        head.loss_and_grad(&model, &mut grads, 1.0);
        // User 2 (no friends) must receive zero gradient in U¹.
        assert!(grads.u1.row(2).iter().all(|&g| g == 0.0));
    }
}
