//! # tcss-core
//!
//! The paper's core contribution: **TCSS** — Tensor Completion with
//! Social-Spatial regularization (Hui, Yan, Chen, Ku; ICDE 2022).
//!
//! TCSS recovers a binary user × POI × time check-in tensor from its
//! observed entries, using LBSN side information. The pieces, each mapped to
//! a module here:
//!
//! | Paper section | Module |
//! |---|---|
//! | Eq 4 — spectral embedding initialization | [`init`] |
//! | Eq 6 — factorization model `X̂ = hᵀ(U¹ᵢ ⊙ U²ⱼ ⊙ U³ₖ)` | [`model`] |
//! | Eq 9–13 — social Hausdorff loss head `L₁` | [`hausdorff`] |
//! | Eq 14/15 — whole-data least-squares head `L₂`, rewritten | [`loss`] |
//! | Eq 20 — joint training `L = λL₁ + L₂` with Adam | [`train`] |
//! | Table II — ablation variants | [`config`] (variant enums) |
//!
//! Beyond the paper, [`train`] hosts a fault-tolerant runtime
//! (checkpoint/resume + divergence watchdog, backed by [`checkpoint`])
//! and [`fault`] a deterministic fault-injection harness that proves its
//! recovery paths in `tests/fault_injection.rs`.
//!
//! ## Quick start
//!
//! ```no_run
//! use tcss_core::{TcssConfig, TcssTrainer};
//! use tcss_data::{train_test_split, Granularity, SynthPreset};
//!
//! let data = SynthPreset::Gowalla.generate();
//! let split = tcss_data::train_test_split(&data.checkins, data.n_users, 0.8, 42);
//! let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, TcssConfig::default());
//! let model = trainer.train(|_epoch, _loss| {});
//! let scores = model.scores_for(0, 5); // user 0, time unit 5, all POIs
//! # let _ = scores;
//! ```

pub mod checkpoint;
pub mod config;
pub mod digest;
pub mod dist;
pub mod fault;
pub mod hausdorff;
pub mod init;
pub mod loss;
pub mod model;
pub mod model_io;
pub mod sparse_grads;
pub mod topn;
pub mod train;
pub mod workspace;

pub use checkpoint::{
    config_fingerprint, load_checkpoint, save_checkpoint, Checkpoint, CHECKPOINT_FILE,
};
pub use config::{HausdorffVariant, InitMethod, LossStrategy, TcssConfig};
pub use dist::{DistConfig, DistError, DistReport};
pub use fault::FaultPlan;
pub use hausdorff::{SocialHausdorffHead, UserScratch};
pub use init::{onehot_init, random_init, solve_h, spectral_init};
pub use loss::{
    naive_whole_data_loss, negative_sampling_loss_and_grad, negative_sampling_loss_and_grad_ws,
    rewritten_loss_and_grad, rewritten_loss_and_grad_ws, Grads,
};
pub use model::{SliceScratch, TcssModel};
pub use model_io::{load_model, save_model, ModelIoError};
pub use sparse_grads::{GradScratch, SparseGrads};
pub use topn::{rank_order, top_n, top_n_full_sort};
pub use train::{TcssTrainer, TrainContext, TrainError, TrainReport};
pub use workspace::TrainWorkspace;
